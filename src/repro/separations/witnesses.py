"""The separation facts of Figure 2 / Figure 13, assembled into a table.

Each row records a relation between two classes of the locally polynomial
hierarchy (or its complement hierarchy), how the paper proves it, and -- where
this repository contains an executable witness -- a callable producing the
witnessing evidence.  The benchmark ``bench_fig02_hierarchy`` prints this
table together with the results of running the executable witnesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass(frozen=True)
class HierarchyFact:
    """One inclusion/separation statement of Figure 2 / Figure 13."""

    statement: str
    paper_reference: str
    kind: str  # "inclusion", "strict", "incomparable", "equality(bounded degree)"
    witness_property: Optional[str] = None
    executable: Optional[Callable[[], Dict[str, object]]] = None


def _lp_vs_nlp_witness() -> Dict[str, object]:
    from repro.machines import builtin
    from repro.separations.lp_vs_nlp import lp_vs_nlp_separation_report

    # Any concrete candidate decider is fooled; we use the (sound but
    # incomplete) algorithm that checks 2-colorability of the local view only.
    def local_guess(view):
        return "1"

    from repro.machines.local_algorithm import NeighborhoodGatherAlgorithm

    candidate = NeighborhoodGatherAlgorithm(1, local_guess, name="candidate-2col-decider")
    return lp_vs_nlp_separation_report(candidate, identifier_radius=2)


def _colp_vs_nlp_witness() -> Dict[str, object]:
    from repro.separations.colp_vs_nlp import pumping_breaks_verifier

    return pumping_breaks_verifier(modulus=4, identifier_period=3)


def _three_colorable_witness() -> Dict[str, object]:
    from repro.graphs import generators
    from repro.hierarchy.arbiters import three_colorability_spec
    from repro.properties.coloring import three_colorable
    from repro.sweep import instances_for_spec, run_instances

    spec = three_colorability_spec()
    triangle = generators.cycle_graph(3)
    k4 = generators.complete_graph(4)
    # Both NLP games run through the sweep executor (shared engine caches,
    # and a persistent-store hit when a verdict store is configured).
    sweep = run_instances(
        instances_for_spec(spec, [("triangle", triangle), ("K4", k4)]),
        scenario_name="figure2-3colorable",
    )
    triangle_wins, k4_wins = sweep.verdicts
    return {
        "triangle_in_NLP_game": triangle_wins,
        "triangle_3colorable": three_colorable(triangle),
        "K4_in_NLP_game": k4_wins,
        "K4_3colorable": three_colorable(k4),
    }


def hierarchy_facts() -> List[HierarchyFact]:
    """The statements depicted in Figure 2 / Figure 13."""
    return [
        HierarchyFact(
            statement="LP ⊆ Sigma^lp_1 = NLP and LP ⊆ Pi^lp_1 (definitional inclusions)",
            paper_reference="Section 4",
            kind="inclusion",
        ),
        HierarchyFact(
            statement="LP ⊊ NLP (2-colorability is verifiable but not decidable)",
            paper_reference="Proposition 24",
            kind="strict",
            witness_property="2-colorable",
            executable=_lp_vs_nlp_witness,
        ),
        HierarchyFact(
            statement="coLP and NLP are incomparable (not-all-selected ∉ NLP)",
            paper_reference="Proposition 26",
            kind="incomparable",
            witness_property="not-all-selected",
            executable=_colp_vs_nlp_witness,
        ),
        HierarchyFact(
            statement="LP ≠ coLP (LP is not closed under complementation)",
            paper_reference="Corollary 27",
            kind="strict",
            witness_property="not-all-selected",
        ),
        HierarchyFact(
            statement="3-colorable ∈ NLP \\ LP (NLP-completeness plus LP ⊊ NLP)",
            paper_reference="Theorem 23, Corollary 25",
            kind="strict",
            witness_property="3-colorable",
            executable=_three_colorable_witness,
        ),
        HierarchyFact(
            statement="non-3-colorable ∉ NLP (coNLP-hardness plus coLP ⋚ NLP)",
            paper_reference="Corollary 28",
            kind="strict",
            witness_property="non-3-colorable",
        ),
        HierarchyFact(
            statement="hamiltonian, non-hamiltonian, non-eulerian ∉ NLP",
            paper_reference="Corollary 29",
            kind="strict",
            witness_property="hamiltonian",
        ),
        HierarchyFact(
            statement="All levels Sigma^lp_l ending in an existential block are distinct",
            paper_reference="Theorem 36 (via pictures and tiling systems)",
            kind="strict",
            witness_property="picture languages",
        ),
        HierarchyFact(
            statement="On graphs of bounded structural degree the dashed inclusions become equalities",
            paper_reference="Proposition 38",
            kind="equality(bounded degree)",
        ),
    ]


def separation_table() -> List[Dict[str, object]]:
    """Evaluate every executable witness and return one row per fact."""
    rows: List[Dict[str, object]] = []
    for fact in hierarchy_facts():
        row: Dict[str, object] = {
            "statement": fact.statement,
            "reference": fact.paper_reference,
            "kind": fact.kind,
            "witness_property": fact.witness_property or "-",
        }
        if fact.executable is not None:
            row["evidence"] = fact.executable()
        rows.append(row)
    return rows
