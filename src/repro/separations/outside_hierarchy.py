"""Properties outside the locally polynomial hierarchy (Section 9.3).

Section 9.3 identifies natural graph properties -- among them ``prime``
(the number of nodes is a prime) and ``automorphic`` (the graph has a
nontrivial automorphism) -- that lie outside *every* level of the locally
polynomial hierarchy.  The arguments combine the pumping lemma for regular
languages with the Buechi-Elgot-Trakhtenbrot theorem: on long cycles with
periodic identifiers, a constant-round arbiter only sees a bounded window of
the cycle, so its verdict survives cutting-and-regluing the cycle, while a
cardinality property such as primality does not.

This module makes both halves of that argument executable:

* :func:`dfa_pumping_contradiction` refutes, for any concrete DFA, the claim
  that it recognizes a non-regular unary cardinality language (primality,
  powers of two, perfect squares);
* :func:`cycle_pumping_report` runs the graph-side version of the argument
  against any concrete constant-radius verifier: it accepts a cycle whose
  length has the property, pumps it between two indistinguishable nodes, and
  reports that the verifier still accepts although the property is gone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.graphs.generators import cycle_graph
from repro.graphs.identifiers import cyclic_identifier_assignment
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.machines.interface import NodeMachine
from repro.machines.simulator import execute
from repro.pictures.automata import DFA, pumped_words, pumping_decomposition
from repro.separations.colp_vs_nlp import pump_cycle
from repro.separations.views import nodes_with_equal_views

__all__ = [
    "is_prime",
    "is_power_of_two",
    "is_perfect_square",
    "unary_word",
    "dfa_pumping_contradiction",
    "CyclePumpingReport",
    "cycle_pumping_report",
    "prime_cardinality_fooling",
    "power_of_two_cardinality_fooling",
]


# ----------------------------------------------------------------------
# Cardinality predicates (the unary languages of Section 9.3)
# ----------------------------------------------------------------------
def is_prime(value: int) -> bool:
    """Whether *value* is a prime number."""
    if value < 2:
        return False
    divisor = 2
    while divisor * divisor <= value:
        if value % divisor == 0:
            return False
        divisor += 1
    return True


def is_power_of_two(value: int) -> bool:
    """Whether *value* is a power of two (1, 2, 4, 8, ...)."""
    return value >= 1 and value & (value - 1) == 0


def is_perfect_square(value: int) -> bool:
    """Whether *value* is a perfect square."""
    if value < 0:
        return False
    root = int(value**0.5)
    return root * root == value or (root + 1) * (root + 1) == value


def unary_word(length: int) -> str:
    """The unary encoding ``1^length`` of a cardinality."""
    if length < 1:
        raise ValueError("unary words must have positive length")
    return "1" * length


# ----------------------------------------------------------------------
# Word-level half: the pumping lemma against concrete DFAs
# ----------------------------------------------------------------------
def dfa_pumping_contradiction(
    dfa: DFA,
    predicate: Callable[[int], bool],
    max_length: Optional[int] = None,
) -> Optional[Dict[str, object]]:
    """A concrete witness that *dfa* does not recognize ``{1^n | predicate(n)}``.

    The search proceeds in two stages.  First, a direct disagreement on some
    unary word up to *max_length* is reported if one exists.  Otherwise the
    DFA agrees with the predicate on all short words; we then take a long
    accepted word, extract its pumping decomposition, and pump until the
    membership predicate flips while the DFA (provably, by the pumping lemma)
    keeps accepting.  Returns ``None`` only if no witness was found within the
    search bounds, which for the non-regular predicates of Section 9.3 does
    not happen once *max_length* exceeds a couple of multiples of the state
    count.
    """
    bound = max_length if max_length is not None else 4 * len(dfa.states) + 16

    for length in range(1, bound + 1):
        word = unary_word(length)
        if dfa.accepts(word) != predicate(length):
            return {
                "kind": "direct disagreement",
                "length": length,
                "dfa_accepts": dfa.accepts(word),
                "predicate_holds": predicate(length),
            }

    # The DFA agrees with the predicate on all lengths up to the bound; pump a
    # long accepted word until the predicate fails.
    for length in range(len(dfa.states), bound + 1):
        if not predicate(length):
            continue
        word = unary_word(length)
        if not dfa.accepts(word):
            continue
        decomposition = pumping_decomposition(dfa, word)
        if decomposition is None:
            continue
        _, factor, _ = decomposition
        for repetitions in range(2, 2 * bound):
            pumped = pumped_words(decomposition, [repetitions])[0]
            if not predicate(len(pumped)):
                return {
                    "kind": "pumping contradiction",
                    "base_length": length,
                    "pumped_length": len(pumped),
                    "factor_length": len(factor),
                    "dfa_accepts_pumped": dfa.accepts(pumped),
                    "predicate_holds_pumped": predicate(len(pumped)),
                }
    return None


# ----------------------------------------------------------------------
# Graph-level half: pumping cycles against constant-radius verifiers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CyclePumpingReport:
    """Outcome of the cycle-pumping argument against a concrete verifier.

    Attributes
    ----------
    cycle_length:
        Length of the original cycle (chosen to satisfy the property).
    property_holds_originally:
        Whether the cardinality property holds on the original cycle.
    verifier_accepts_originally:
        Whether the verifier accepts the original certified cycle.
    pumped_length:
        Length of the pumped cycle (``None`` if no suitable pair was found).
    property_holds_pumped:
        Whether the property still holds after pumping.
    verifier_accepts_pumped:
        Whether the verifier still accepts after pumping.
    fooled:
        The headline fact: the verifier accepts a pumped cycle on which the
        property fails (or rejects one on which it holds).
    """

    cycle_length: int
    property_holds_originally: bool
    verifier_accepts_originally: bool
    pumped_length: Optional[int]
    property_holds_pumped: Optional[bool]
    verifier_accepts_pumped: Optional[bool]
    fooled: bool


def cycle_pumping_report(
    verifier: NodeMachine,
    cardinality_predicate: Callable[[int], bool],
    cycle_length: int,
    certificates_for: Optional[Callable[[LabeledGraph], Mapping[Node, str]]] = None,
    identifier_period: int = 3,
    view_radius: int = 1,
) -> CyclePumpingReport:
    """Run the Section 9.3 cycle-pumping argument against *verifier*.

    The cycle of the given length (which should satisfy the cardinality
    predicate) is labeled uniformly with ``1``, given periodic locally unique
    identifiers, and certified by *certificates_for* (defaults to empty
    certificates).  If the verifier accepts, two nodes with identical certified
    views are glued together; by construction every node of the pumped cycle
    still sees an identical neighborhood, so the verifier's verdict cannot
    change, while the cardinality drops.
    """
    labels = ["1"] * cycle_length
    cycle = cycle_graph(cycle_length, labels=labels)
    ids = cyclic_identifier_assignment(cycle, identifier_period)
    certificates: Dict[Node, str] = (
        dict(certificates_for(cycle)) if certificates_for is not None else {u: "" for u in cycle.nodes}
    )

    original_accepts = execute(verifier, cycle, ids, [certificates]).accepts()
    original_property = cardinality_predicate(cycle_length)

    pairs = nodes_with_equal_views(cycle, ids, view_radius, [certificates])
    order = list(cycle.nodes)
    position = {u: index for index, u in enumerate(order)}

    chosen: Optional[Tuple[Node, Node]] = None
    pumped_length: Optional[int] = None
    for a, b in sorted(pairs, key=lambda pair: (position[pair[0]], position[pair[1]])):
        pa, pb = sorted((position[a], position[b]))
        separation = pb - pa
        if separation < 2 * view_radius + 1:
            continue
        if cycle_length - separation < 3:
            continue
        candidate_length = cycle_length - separation
        if cardinality_predicate(candidate_length) == original_property:
            continue
        chosen = (order[pa], order[pb])
        pumped_length = candidate_length
        break

    if chosen is None:
        return CyclePumpingReport(
            cycle_length=cycle_length,
            property_holds_originally=original_property,
            verifier_accepts_originally=original_accepts,
            pumped_length=None,
            property_holds_pumped=None,
            verifier_accepts_pumped=None,
            fooled=False,
        )

    avoid = chosen[0]
    # Keep the segment between the two cut nodes that goes the "long way
    # around" relative to the segment being removed: pump_cycle keeps the side
    # avoiding `avoid`, so pass a node strictly inside the removed segment.
    pa, pb = sorted((position[chosen[0]], position[chosen[1]]))
    inside_removed = order[(pa + 1) % cycle_length]
    pumped = pump_cycle(cycle, ids, certificates, chosen[0], chosen[1], avoid=inside_removed)
    pumped_accepts = execute(verifier, pumped.graph, pumped.ids, [pumped.certificates]).accepts()
    pumped_property = cardinality_predicate(pumped.graph.cardinality())

    return CyclePumpingReport(
        cycle_length=cycle_length,
        property_holds_originally=original_property,
        verifier_accepts_originally=original_accepts,
        pumped_length=pumped.graph.cardinality(),
        property_holds_pumped=pumped_property,
        verifier_accepts_pumped=pumped_accepts,
        fooled=original_accepts and pumped_accepts and original_property and not pumped_property,
    )


def prime_cardinality_fooling(
    verifier: NodeMachine,
    prime_length: int = 23,
    identifier_period: int = 3,
    view_radius: int = 1,
) -> CyclePumpingReport:
    """The cycle-pumping argument instantiated for the ``prime`` property."""
    if not is_prime(prime_length):
        raise ValueError(f"{prime_length} is not prime")
    return cycle_pumping_report(
        verifier,
        is_prime,
        prime_length,
        identifier_period=identifier_period,
        view_radius=view_radius,
    )


def power_of_two_cardinality_fooling(
    verifier: NodeMachine,
    exponent: int = 5,
    identifier_period: int = 3,
    view_radius: int = 1,
) -> CyclePumpingReport:
    """The cycle-pumping argument instantiated for power-of-two cardinality."""
    if exponent < 3:
        raise ValueError("the exponent must be at least 3 so the cycle is long enough")
    return cycle_pumping_report(
        verifier,
        is_power_of_two,
        2**exponent,
        identifier_period=identifier_period,
        view_radius=view_radius,
    )
