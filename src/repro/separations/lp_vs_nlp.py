"""LP ⊊ NLP: the fooling-pair construction of Proposition 24.

2-colorability is verifiable with single-bit certificates (the color), but no
locally polynomial machine can *decide* it.  The witness: take an odd cycle
``G`` (not 2-colorable) longer than ``2 r_id`` and glue two copies of it into
the even cycle ``G'`` (2-colorable), assigning the two copies of each node the
*same* identifier.  The resulting identifier assignment of ``G'`` is still
``r_id``-locally unique, and every node of ``G'`` has exactly the same
radius-``r`` view as its original in ``G`` -- for every radius ``r`` up to
roughly half the cycle length.  Hence any constant-round machine accepts ``G``
iff it accepts ``G'`` and therefore decides 2-colorability incorrectly on one
of the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.graphs.identifiers import IdentifierAssignment, is_locally_unique
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.machines.interface import NodeMachine
from repro.machines.simulator import execute
from repro.properties.coloring import two_colorable
from repro.separations.views import certified_view_signature


@dataclass(frozen=True)
class FoolingPair:
    """The two graphs of Proposition 24 with their identifier assignments."""

    odd_cycle: LabeledGraph
    doubled_cycle: LabeledGraph
    odd_ids: Dict[Node, str]
    doubled_ids: Dict[Node, str]
    correspondence: Dict[Node, Node]
    identifier_radius: int


def fooling_pair(identifier_radius: int, length: int | None = None) -> FoolingPair:
    """Construct the fooling pair for a given identifier radius.

    ``length`` (the odd cycle length) defaults to the smallest odd number
    greater than ``2 * identifier_radius`` and at least 5, exactly as in the
    paper's proof.
    """
    if identifier_radius < 1:
        raise ValueError("the identifier radius must be positive")
    if length is None:
        length = max(5, 2 * identifier_radius + 1)
        if length % 2 == 0:
            length += 1
    if length % 2 == 0 or length <= 2 * identifier_radius:
        raise ValueError("the cycle length must be odd and exceed 2 * identifier_radius")

    odd_nodes = [f"u{i}" for i in range(length)]
    odd_edges = [(odd_nodes[i], odd_nodes[(i + 1) % length]) for i in range(length)]
    odd_cycle = LabeledGraph(odd_nodes, odd_edges)

    # G': two copies u_i and u'_i glued into a single cycle of length 2 * length,
    # traversed as u_0, u_1, ..., u_{length-1}, u'_0, u'_1, ..., u'_{length-1}.
    primed = [f"u{i}_prime" for i in range(length)]
    doubled_nodes = odd_nodes + primed
    doubled_edges = [
        (doubled_nodes[i], doubled_nodes[(i + 1) % (2 * length)]) for i in range(2 * length)
    ]
    doubled_cycle = LabeledGraph(doubled_nodes, doubled_edges)

    width = max(1, (length - 1).bit_length())
    odd_ids = {odd_nodes[i]: format(i, "b").zfill(width) for i in range(length)}
    doubled_ids: Dict[Node, str] = {}
    for i in range(length):
        doubled_ids[odd_nodes[i]] = odd_ids[odd_nodes[i]]
        doubled_ids[primed[i]] = odd_ids[odd_nodes[i]]

    correspondence = {odd_nodes[i]: odd_nodes[i] for i in range(length)}
    correspondence.update({primed[i]: odd_nodes[i] for i in range(length)})

    return FoolingPair(
        odd_cycle=odd_cycle,
        doubled_cycle=doubled_cycle,
        odd_ids=odd_ids,
        doubled_ids=doubled_ids,
        correspondence=correspondence,
        identifier_radius=identifier_radius,
    )


def views_coincide(pair: FoolingPair, radius: int) -> bool:
    """Whether every node of ``G'`` has the same radius-``r`` view as its original in ``G``.

    This holds whenever ``2 * radius < length`` (the view does not wrap around
    the odd cycle); it is the premise of the fooling argument.
    """
    for node_doubled, node_odd in pair.correspondence.items():
        signature_doubled = certified_view_signature(
            pair.doubled_cycle, pair.doubled_ids, node_doubled, radius
        )
        signature_odd = certified_view_signature(pair.odd_cycle, pair.odd_ids, node_odd, radius)
        # Compare everything except the center's node identity.
        if signature_doubled[1:] != signature_odd[1:]:
            return False
        if pair.doubled_ids[node_doubled] != pair.odd_ids[node_odd]:
            return False
    return True


def decider_is_fooled(machine: NodeMachine, pair: FoolingPair) -> bool:
    """Whether the machine gives the same answer on both graphs of the pair.

    For any machine whose round count keeps its views inside half the cycle,
    this *must* return ``True`` -- which is the contradiction, since only the
    doubled cycle is 2-colorable.
    """
    accepts_odd = execute(machine, pair.odd_cycle, pair.odd_ids).accepts()
    accepts_doubled = execute(machine, pair.doubled_cycle, pair.doubled_ids).accepts()
    return accepts_odd == accepts_doubled


def lp_vs_nlp_separation_report(machine: NodeMachine, identifier_radius: int = 2) -> Dict[str, object]:
    """Assemble the full Proposition 24 argument against a candidate decider.

    Returns a report stating whether the identifier assignments are admissible,
    whether the two graphs really differ on 2-colorability, and whether the
    candidate machine was fooled (gave the same verdict on both).
    """
    pair = fooling_pair(identifier_radius)
    report = {
        "odd_cycle_length": pair.odd_cycle.cardinality(),
        "doubled_cycle_length": pair.doubled_cycle.cardinality(),
        "ids_locally_unique_odd": is_locally_unique(pair.odd_cycle, pair.odd_ids, identifier_radius),
        "ids_locally_unique_doubled": is_locally_unique(
            pair.doubled_cycle, pair.doubled_ids, identifier_radius
        ),
        "odd_cycle_2colorable": two_colorable(pair.odd_cycle),
        "doubled_cycle_2colorable": two_colorable(pair.doubled_cycle),
        "machine_fooled": decider_is_fooled(machine, pair),
    }
    report["separation_established"] = (
        report["ids_locally_unique_odd"]
        and report["ids_locally_unique_doubled"]
        and not report["odd_cycle_2colorable"]
        and report["doubled_cycle_2colorable"]
        and report["machine_fooled"]
    )
    return report
