"""coLP vs NLP: the pumping argument of Proposition 26, made executable.

``not-all-selected`` is coLP-complete but lies outside NLP.  The paper's
argument: suppose an NLP verifier existed; run it on a long cycle with a
single unselected node and an accepting certificate assignment; by the
pigeonhole principle two nodes have identical certified views; cut the cycle
between them (keeping the side *without* the unselected node) and glue the
ends -- the verifier still accepts, although every node of the pumped cycle is
selected.  Contradiction.

To make this concrete we implement the natural candidate verifier a designer
would try -- certificates are "distance to the nearest unselected node" capped
modulo a constant (any fixed certificate-length bound forces such a cap on
long cycles) -- and show that the pumping construction defeats it: the pumped
all-selected cycle is still accepted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.graphs.identifiers import cyclic_identifier_assignment
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.machines.builtin import predicate_decider
from repro.machines.local_algorithm import LocalView, NeighborhoodGatherAlgorithm
from repro.machines.simulator import execute
from repro.properties.selection import all_selected, not_all_selected
from repro.separations.views import nodes_with_equal_views


# ----------------------------------------------------------------------
# The candidate verifier and its honest certificates
# ----------------------------------------------------------------------
def distance_counter_verifier(modulus: int) -> NeighborhoodGatherAlgorithm:
    """An NLP-style verifier for ``not-all-selected`` with modulo-``modulus`` counters.

    Eve's certificate at a node is meant to be the distance to the nearest
    unselected node, reduced modulo *modulus* (a fixed modulus is forced by
    any fixed bound on certificate length).  Each node checks:

    * unselected nodes accept with counter 0;
    * selected nodes accept iff their counter is nonzero and some neighbor
      carries counter one less (modulo *modulus*), or their counter is 0 and
      some neighbor carries counter ``modulus - 1``.

    The verifier is *complete* (honest certificates are accepted on every
    yes-instance) but, as the pumping construction shows, not sound.
    """
    if modulus < 2:
        raise ValueError("the modulus must be at least 2")
    width = max(1, (modulus - 1).bit_length())

    def decode(certificate: str) -> Optional[int]:
        if len(certificate) != width or not set(certificate) <= {"0", "1"}:
            return None
        value = int(certificate, 2)
        return value if value < modulus else None

    def predicate(view: LocalView) -> bool:
        certs = view.center_certificates()
        counter = decode(certs[0]) if certs else None
        if counter is None:
            return False
        if view.center_label() != "1":
            return counter == 0
        expected = (counter - 1) % modulus
        for neighbor in view.neighbors_of(view.center):
            neighbor_certs = view.certificates_of(neighbor)
            neighbor_counter = decode(neighbor_certs[0]) if neighbor_certs else None
            if neighbor_counter == expected:
                return True
        return False

    return predicate_decider(1, predicate, name=f"not-all-selected/mod{modulus}")


def counter_certificates(
    graph: LabeledGraph, modulus: int
) -> Dict[Node, str]:
    """The honest certificates: distance to the nearest unselected node, mod *modulus*."""
    width = max(1, (modulus - 1).bit_length())
    unselected = [u for u in graph.nodes if graph.label(u) != "1"]
    if not unselected:
        raise ValueError("the graph has no unselected node; honest certificates do not exist")
    certificates: Dict[Node, str] = {}
    for u in graph.nodes:
        distance = min(graph.distances_from(u)[z] for z in unselected)
        certificates[u] = format(distance % modulus, "b").zfill(width)
    return certificates


# ----------------------------------------------------------------------
# The pumping construction
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PumpedCycle:
    """The result of cutting and regluing a certified cycle."""

    graph: LabeledGraph
    ids: Dict[Node, str]
    certificates: Dict[Node, str]
    glue_node: Node
    removed_nodes: Tuple[Node, ...]


def pump_cycle(
    cycle: LabeledGraph,
    ids: Mapping[Node, str],
    certificates: Mapping[Node, str],
    cut_a: Node,
    cut_b: Node,
    avoid: Node,
) -> PumpedCycle:
    """Cut the cycle at two indistinguishable nodes and keep the side avoiding *avoid*.

    The nodes of *cycle* must be listed in cyclic order (as produced by
    :func:`repro.graphs.generators.cycle_graph`).  The two cut nodes are
    identified with each other; the returned cycle inherits labels,
    identifiers and certificates from the kept segment.
    """
    order = list(cycle.nodes)
    position = {u: i for i, u in enumerate(order)}
    n = len(order)
    i, j = sorted((position[cut_a], position[cut_b]))
    z = position[avoid]

    # The forward segment order[i..j] and the complementary segment both run
    # between the two cut nodes; keep the one not containing `avoid`.
    if i < z < j:
        kept_positions = list(range(j, n)) + list(range(0, i + 1))
    else:
        kept_positions = list(range(i, j + 1))
    kept = [order[p] for p in kept_positions]
    # Identify the two endpoints: drop the last node and close the cycle.
    glue = kept[0]
    interior = kept[:-1]
    removed = tuple(u for u in order if u not in interior)

    if len(interior) < 3:
        raise ValueError("the kept segment is too short to form a cycle")

    edges = [(interior[k], interior[(k + 1) % len(interior)]) for k in range(len(interior))]
    labels = {u: cycle.label(u) for u in interior}
    new_graph = LabeledGraph(interior, edges, labels)
    new_ids = {u: ids[u] for u in interior}
    new_certs = {u: certificates[u] for u in interior}
    return PumpedCycle(
        graph=new_graph,
        ids=new_ids,
        certificates=new_certs,
        glue_node=glue,
        removed_nodes=removed,
    )


def pumping_breaks_verifier(
    modulus: int = 4,
    identifier_period: int = 3,
    cycle_length: Optional[int] = None,
    view_radius: int = 1,
) -> Dict[str, object]:
    """Run the full Proposition 26 pipeline against the counter verifier.

    Returns a report containing, in particular, ``verifier_complete`` (the
    honest certificate is accepted on the yes-instance), ``pumped_all_selected``
    (the pumped cycle has no unselected node) and ``pumped_still_accepted``
    (the verifier accepts it anyway) -- the last two together are the
    soundness failure predicted by the paper.
    """
    from repro.graphs.generators import cycle_graph

    if cycle_length is None:
        # Long enough that two nodes far from the unselected node share both
        # their identifier pattern and their counter value.
        cycle_length = 3 * identifier_period * modulus

    labels = ["1"] * cycle_length
    labels[0] = "0"
    cycle = cycle_graph(cycle_length, labels=labels)
    ids = cyclic_identifier_assignment(cycle, identifier_period)
    certificates = counter_certificates(cycle, modulus)
    verifier = distance_counter_verifier(modulus)

    accepted = execute(verifier, cycle, ids, [certificates]).accepts()

    # Find two indistinguishable certified nodes far away from the unselected node.
    pairs = nodes_with_equal_views(cycle, ids, view_radius, [certificates])
    order = list(cycle.nodes)
    position = {u: k for k, u in enumerate(order)}
    chosen: Optional[Tuple[Node, Node]] = None
    for a, b in pairs:
        pa, pb = sorted((position[a], position[b]))
        # Both nodes must lie strictly inside the half not containing node 0,
        # with some slack so the glued views stay unchanged.
        if 2 * view_radius + 1 <= pa and pb <= cycle_length - 2 and pb - pa >= 2 * view_radius + 1:
            chosen = (order[pa], order[pb])
            break
    report: Dict[str, object] = {
        "cycle_length": cycle_length,
        "verifier_complete": accepted,
        "indistinguishable_pairs": len(pairs),
        "pair_found": chosen is not None,
    }
    if chosen is None:
        return report

    pumped = pump_cycle(cycle, ids, certificates, chosen[0], chosen[1], avoid=order[0])
    pumped_accepted = execute(verifier, pumped.graph, pumped.ids, [pumped.certificates]).accepts()
    report.update(
        {
            "pumped_length": pumped.graph.cardinality(),
            "pumped_all_selected": all_selected(pumped.graph),
            "pumped_still_accepted": pumped_accepted,
            "soundness_broken": all_selected(pumped.graph) and pumped_accepted,
        }
    )
    return report
