"""Executable separation witnesses for the locally polynomial hierarchy (Section 9.1).

The paper's ground-level separations are proved by explicit constructions:

* **LP ⊊ NLP** (Proposition 24): 2-colorability is verifiable but not
  decidable.  The witness is a *fooling pair*: an odd cycle ``G`` and the even
  cycle ``G'`` obtained by gluing two copies of ``G`` together, with identifier
  assignments under which corresponding nodes have identical views -- so any
  constant-round decider answers the same on both, yet only ``G'`` is
  2-colorable.
* **coLP ⋚ NLP** (Proposition 26): ``not-all-selected`` is in coLP but not in
  NLP.  The witness is a *pumping argument*: any accepted certificate
  assignment on a long cycle with a single unselected node contains two nodes
  with indistinguishable certified views; cutting the cycle between them (on
  the side containing the unselected node) yields an all-selected cycle the
  verifier still accepts.

Both constructions are implemented here and exercised against concrete
machines, together with the view-indistinguishability utilities they rely on.
"""

from repro.separations.views import certified_view_signature, nodes_with_equal_views
from repro.separations.lp_vs_nlp import (
    fooling_pair,
    decider_is_fooled,
    lp_vs_nlp_separation_report,
)
from repro.separations.colp_vs_nlp import (
    distance_counter_verifier,
    counter_certificates,
    pump_cycle,
    pumping_breaks_verifier,
)
from repro.separations.witnesses import hierarchy_facts, separation_table

__all__ = [
    "certified_view_signature",
    "nodes_with_equal_views",
    "fooling_pair",
    "decider_is_fooled",
    "lp_vs_nlp_separation_report",
    "distance_counter_verifier",
    "counter_certificates",
    "pump_cycle",
    "pumping_breaks_verifier",
    "hierarchy_facts",
    "separation_table",
]
