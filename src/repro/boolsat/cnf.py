"""Conjunctive normal form and the Tseytin transformation.

The reduction from ``sat-graph`` to ``3-sat-graph`` in the proof of
Theorem 23 replaces each node's formula by an equisatisfiable 3-CNF formula
whose auxiliary variables are namespaced by the node's identifier; the Tseytin
transformation implemented here is exactly that step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.boolsat.formulas import And, BooleanFormula, Const, Not, Or, Var

Literal = Tuple[str, bool]
"""A literal is a pair ``(variable_name, polarity)``; ``True`` means positive."""

Clause = FrozenSet[Literal]


def literal(name: str, polarity: bool = True) -> Literal:
    """Construct a literal."""
    return (name, polarity)


def negate_literal(lit: Literal) -> Literal:
    """The complementary literal."""
    return (lit[0], not lit[1])


@dataclass(frozen=True)
class CNF:
    """A CNF formula as a tuple of clauses (each a frozenset of literals)."""

    clauses: Tuple[Clause, ...]

    def variables(self) -> Set[str]:
        """All variable names occurring in the CNF."""
        return {name for clause in self.clauses for (name, _) in clause}

    def evaluate(self, valuation: Mapping[str, bool]) -> bool:
        """Whether *valuation* satisfies every clause."""
        for clause in self.clauses:
            if not any(bool(valuation[name]) == polarity for name, polarity in clause):
                return False
        return True

    def to_formula(self) -> BooleanFormula:
        """Convert back to a :class:`BooleanFormula` AST."""
        if not self.clauses:
            return Const(True)
        clause_formulas: List[BooleanFormula] = []
        for clause in self.clauses:
            if not clause:
                clause_formulas.append(Const(False))
                continue
            lits: List[BooleanFormula] = []
            for name, polarity in sorted(clause):
                lits.append(Var(name) if polarity else Not(Var(name)))
            acc = lits[0]
            for item in lits[1:]:
                acc = Or(acc, item)
            clause_formulas.append(acc)
        acc = clause_formulas[0]
        for item in clause_formulas[1:]:
            acc = And(acc, item)
        return acc

    def max_clause_width(self) -> int:
        """The size of the largest clause (0 for the empty CNF)."""
        return max((len(clause) for clause in self.clauses), default=0)

    def __len__(self) -> int:
        return len(self.clauses)


def cnf(clauses: Iterable[Iterable[Literal]]) -> CNF:
    """Build a :class:`CNF` from an iterable of clauses of literals."""
    return CNF(tuple(frozenset(clause) for clause in clauses))


def is_three_cnf(value: CNF | BooleanFormula) -> bool:
    """Whether the given CNF (or formula known to be CNF-shaped) is a 3-CNF."""
    if isinstance(value, CNF):
        return value.max_clause_width() <= 3
    return _formula_is_three_cnf(value)


def _formula_is_three_cnf(formula: BooleanFormula) -> bool:
    for clause in _split_conjuncts(formula):
        literals = _split_disjuncts(clause)
        if len(literals) > 3:
            return False
        for lit in literals:
            if isinstance(lit, Var):
                continue
            if isinstance(lit, Not) and isinstance(lit.operand, Var):
                continue
            if isinstance(lit, Const):
                continue
            return False
    return True


def _split_conjuncts(formula: BooleanFormula) -> List[BooleanFormula]:
    if isinstance(formula, And):
        return _split_conjuncts(formula.left) + _split_conjuncts(formula.right)
    return [formula]


def _split_disjuncts(formula: BooleanFormula) -> List[BooleanFormula]:
    if isinstance(formula, Or):
        return _split_disjuncts(formula.left) + _split_disjuncts(formula.right)
    return [formula]


def formula_to_cnf_clauses(formula: BooleanFormula) -> CNF:
    """Interpret a formula that is syntactically in CNF as a :class:`CNF`.

    Raises ``ValueError`` if the formula is not a conjunction of clauses of
    literals.
    """
    clauses: List[Clause] = []
    for conjunct in _split_conjuncts(formula):
        lits: Set[Literal] = set()
        trivially_true = False
        for part in _split_disjuncts(conjunct):
            if isinstance(part, Var):
                lits.add((part.name, True))
            elif isinstance(part, Not) and isinstance(part.operand, Var):
                lits.add((part.operand.name, False))
            elif isinstance(part, Const):
                if part.value:
                    trivially_true = True
                # A false constant simply contributes nothing to the clause.
            else:
                raise ValueError(f"formula is not in CNF: offending part {part}")
        if not trivially_true:
            clauses.append(frozenset(lits))
    return CNF(tuple(clauses))


def to_cnf_tseytin(formula: BooleanFormula, prefix: str = "aux") -> CNF:
    """Equisatisfiable 3-CNF via the Tseytin transformation.

    Every satisfying valuation of *formula* extends to a satisfying valuation
    of the result, and every satisfying valuation of the result restricts to a
    satisfying valuation of *formula*.  Auxiliary variables are named
    ``{prefix}_{counter}`` so that distinct nodes of a Boolean graph can use
    disjoint auxiliary namespaces (as required in the proof of Theorem 23).
    """
    clauses: List[Clause] = []
    counter = [0]

    def fresh() -> str:
        counter[0] += 1
        return f"{prefix}_{counter[0]}"

    def encode(node: BooleanFormula) -> Literal:
        if isinstance(node, Var):
            return (node.name, True)
        if isinstance(node, Const):
            name = fresh()
            # Force the auxiliary variable to the constant's value.
            clauses.append(frozenset({(name, node.value)}))
            return (name, True)
        if isinstance(node, Not):
            inner = encode(node.operand)
            return negate_literal(inner)
        if isinstance(node, And):
            left = encode(node.left)
            right = encode(node.right)
            out = (fresh(), True)
            # out <-> left & right
            clauses.append(frozenset({negate_literal(out), left}))
            clauses.append(frozenset({negate_literal(out), right}))
            clauses.append(frozenset({out, negate_literal(left), negate_literal(right)}))
            return out
        if isinstance(node, Or):
            left = encode(node.left)
            right = encode(node.right)
            out = (fresh(), True)
            # out <-> left | right
            clauses.append(frozenset({negate_literal(out), left, right}))
            clauses.append(frozenset({out, negate_literal(left)}))
            clauses.append(frozenset({out, negate_literal(right)}))
            return out
        raise TypeError(f"unknown formula node {node!r}")

    root = encode(formula)
    clauses.append(frozenset({root}))
    return CNF(tuple(clauses))


def cnf_to_formula_text(value: CNF) -> str:
    """Render a CNF as a parsable textual formula."""
    return str(value.to_formula())
