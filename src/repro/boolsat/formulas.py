"""Boolean formula AST, parser and evaluation.

Formulas are built from variables, negation, conjunction, disjunction and the
constants true/false.  The concrete syntax accepted by :func:`parse_formula`
uses ``&``, ``|``, ``~`` (or ``!``), parentheses, and the constants ``T``/``F``.
Variable names are alphanumeric identifiers such as ``P1`` or ``x_3``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, Mapping, Tuple

Valuation = Mapping[str, bool]


class BooleanFormula:
    """Base class for Boolean formulas."""

    def evaluate(self, valuation: Valuation) -> bool:
        """Evaluate the formula under *valuation* (must cover all variables)."""
        raise NotImplementedError

    def variables(self) -> FrozenSet[str]:
        """The set of variable names occurring in the formula."""
        raise NotImplementedError

    # Operator sugar so formulas compose naturally in tests and examples.
    def __and__(self, other: "BooleanFormula") -> "BooleanFormula":
        return And(self, other)

    def __or__(self, other: "BooleanFormula") -> "BooleanFormula":
        return Or(self, other)

    def __invert__(self) -> "BooleanFormula":
        return Not(self)


@dataclass(frozen=True)
class Const(BooleanFormula):
    """A Boolean constant (``True`` or ``False``)."""

    value: bool

    def evaluate(self, valuation: Valuation) -> bool:
        return self.value

    def variables(self) -> FrozenSet[str]:
        return frozenset()

    def __str__(self) -> str:
        return "T" if self.value else "F"


@dataclass(frozen=True)
class Var(BooleanFormula):
    """A propositional variable."""

    name: str

    def evaluate(self, valuation: Valuation) -> bool:
        if self.name not in valuation:
            raise KeyError(f"valuation does not cover variable {self.name!r}")
        return bool(valuation[self.name])

    def variables(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Not(BooleanFormula):
    """Negation."""

    operand: BooleanFormula

    def evaluate(self, valuation: Valuation) -> bool:
        return not self.operand.evaluate(valuation)

    def variables(self) -> FrozenSet[str]:
        return self.operand.variables()

    def __str__(self) -> str:
        return f"~{_wrap(self.operand)}"


@dataclass(frozen=True)
class And(BooleanFormula):
    """Conjunction."""

    left: BooleanFormula
    right: BooleanFormula

    def evaluate(self, valuation: Valuation) -> bool:
        return self.left.evaluate(valuation) and self.right.evaluate(valuation)

    def variables(self) -> FrozenSet[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"({self.left} & {self.right})"


@dataclass(frozen=True)
class Or(BooleanFormula):
    """Disjunction."""

    left: BooleanFormula
    right: BooleanFormula

    def evaluate(self, valuation: Valuation) -> bool:
        return self.left.evaluate(valuation) or self.right.evaluate(valuation)

    def variables(self) -> FrozenSet[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


def _wrap(formula: BooleanFormula) -> str:
    text = str(formula)
    if isinstance(formula, (Var, Const, Not)):
        return text
    return text if text.startswith("(") else f"({text})"


def variables_of(formula: BooleanFormula) -> FrozenSet[str]:
    """The variables occurring in *formula* (module-level convenience)."""
    return formula.variables()


def conjunction(formulas) -> BooleanFormula:
    """The conjunction of an iterable of formulas (``T`` if empty)."""
    result: BooleanFormula | None = None
    for item in formulas:
        result = item if result is None else And(result, item)
    return result if result is not None else Const(True)


def disjunction(formulas) -> BooleanFormula:
    """The disjunction of an iterable of formulas (``F`` if empty)."""
    result: BooleanFormula | None = None
    for item in formulas:
        result = item if result is None else Or(result, item)
    return result if result is not None else Const(False)


# ----------------------------------------------------------------------
# Parser (recursive descent):  or_expr := and_expr ('|' and_expr)*
#                              and_expr := unary ('&' unary)*
#                              unary := '~' unary | '!' unary | atom
#                              atom := '(' or_expr ')' | 'T' | 'F' | name
# ----------------------------------------------------------------------
class _Tokenizer:
    def __init__(self, text: str) -> None:
        self.tokens = list(self._tokenize(text))
        self.position = 0

    @staticmethod
    def _tokenize(text: str) -> Iterator[str]:
        i = 0
        while i < len(text):
            ch = text[i]
            if ch.isspace():
                i += 1
                continue
            if ch in "()&|~!":
                yield ch
                i += 1
                continue
            if ch.isalnum() or ch == "_":
                j = i
                while j < len(text) and (text[j].isalnum() or text[j] == "_"):
                    j += 1
                yield text[i:j]
                i = j
                continue
            raise ValueError(f"unexpected character {ch!r} in formula {text!r}")

    def peek(self) -> str | None:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def pop(self) -> str:
        token = self.peek()
        if token is None:
            raise ValueError("unexpected end of formula")
        self.position += 1
        return token


def parse_formula(text: str) -> BooleanFormula:
    """Parse a Boolean formula from its textual representation."""
    tokenizer = _Tokenizer(text)
    formula = _parse_or(tokenizer)
    if tokenizer.peek() is not None:
        raise ValueError(f"trailing tokens in formula {text!r}")
    return formula


def _parse_or(tok: _Tokenizer) -> BooleanFormula:
    left = _parse_and(tok)
    while tok.peek() == "|":
        tok.pop()
        right = _parse_and(tok)
        left = Or(left, right)
    return left


def _parse_and(tok: _Tokenizer) -> BooleanFormula:
    left = _parse_unary(tok)
    while tok.peek() == "&":
        tok.pop()
        right = _parse_unary(tok)
        left = And(left, right)
    return left


def _parse_unary(tok: _Tokenizer) -> BooleanFormula:
    token = tok.peek()
    if token in ("~", "!"):
        tok.pop()
        return Not(_parse_unary(tok))
    return _parse_atom(tok)


def _parse_atom(tok: _Tokenizer) -> BooleanFormula:
    token = tok.pop()
    if token == "(":
        inner = _parse_or(tok)
        closing = tok.pop()
        if closing != ")":
            raise ValueError("missing closing parenthesis")
        return inner
    if token == "T":
        return Const(True)
    if token == "F":
        return Const(False)
    if token in (")", "&", "|", "~", "!"):
        raise ValueError(f"unexpected token {token!r}")
    return Var(token)


def all_valuations(variables) -> Iterator[Dict[str, bool]]:
    """Iterate over every valuation of the given variables (exponential)."""
    names = sorted(variables)
    count = len(names)
    for mask in range(2**count):
        yield {names[i]: bool((mask >> i) & 1) for i in range(count)}


def brute_force_satisfiable(formula: BooleanFormula) -> bool:
    """Exhaustive satisfiability check (used as a test oracle for the solver)."""
    return any(formula.evaluate(val) for val in all_valuations(formula.variables()))
