"""Boolean graphs and the graph satisfiability problem ``sat-graph`` (Section 8).

A Boolean graph is a labeled graph whose node labels encode Boolean formulas.
It is satisfiable if each node can be given a valuation of the variables of
its own formula such that

* the valuation satisfies the node's formula, and
* adjacent nodes agree on every variable they share.

``sat`` (classical Boolean satisfiability) is the restriction of ``sat-graph``
to single-node graphs.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Sequence, Tuple

from repro.boolsat.encoding import decode_formula, encode_formula, encode_formula_text
from repro.boolsat.formulas import And, BooleanFormula, Var, conjunction, parse_formula
from repro.boolsat.solver import satisfying_assignment
from repro.graphs.labeled_graph import LabeledGraph, Node


def boolean_graph_from_formulas(
    formulas: Mapping[Node, str | BooleanFormula],
    edges: Sequence[Tuple[Node, Node]],
) -> LabeledGraph:
    """Build a Boolean graph from per-node formulas and an edge list."""
    labels: Dict[Node, str] = {}
    for node, value in formulas.items():
        if isinstance(value, BooleanFormula):
            labels[node] = encode_formula(value)
        else:
            labels[node] = encode_formula_text(value)
    return LabeledGraph(list(formulas), edges, labels)


def decode_boolean_graph(graph: LabeledGraph) -> Dict[Node, BooleanFormula]:
    """Decode every node label of *graph* into a Boolean formula."""
    return {u: decode_formula(graph.label(u)) for u in graph.nodes}


def _namespaced(node: Node, name: str) -> str:
    """Global variable name for variable *name* at *node*."""
    return f"n{node}__{name}"


def _global_formula(graph: LabeledGraph) -> BooleanFormula:
    """A single Boolean formula equisatisfiable with the Boolean graph.

    Each node's formula is rewritten over namespaced copies of its variables,
    and for every edge and shared variable an agreement constraint
    ``copy_u <-> copy_v`` is added.  The graph is satisfiable in the sense of
    the paper iff this global formula is satisfiable: a consistent family of
    per-node valuations is exactly a model of the conjunction.
    """
    formulas = decode_boolean_graph(graph)
    parts = []
    for node, formula in formulas.items():
        parts.append(_rename(formula, node))
    for u, v in graph.edge_pairs():
        shared = formulas[u].variables() & formulas[v].variables()
        for name in sorted(shared):
            a = Var(_namespaced(u, name))
            b = Var(_namespaced(v, name))
            # a <-> b  written as  (a | ~b) & (~a | b)
            parts.append((a | ~b) & (~a | b))
    return conjunction(parts)


def _rename(formula: BooleanFormula, node: Node) -> BooleanFormula:
    from repro.boolsat.formulas import And, Const, Not, Or

    if isinstance(formula, Var):
        return Var(_namespaced(node, formula.name))
    if isinstance(formula, Const):
        return formula
    if isinstance(formula, Not):
        return Not(_rename(formula.operand, node))
    if isinstance(formula, And):
        return And(_rename(formula.left, node), _rename(formula.right, node))
    if isinstance(formula, Or):
        return Or(_rename(formula.left, node), _rename(formula.right, node))
    raise TypeError(f"unknown formula node {formula!r}")


def sat_graph_satisfiable(graph: LabeledGraph) -> bool:
    """Whether the Boolean graph lies in ``sat-graph``."""
    return sat_graph_assignment(graph) is not None


def sat_graph_assignment(graph: LabeledGraph) -> Optional[Dict[Node, Dict[str, bool]]]:
    """A satisfying family of per-node valuations, or ``None``.

    Consistency on shared variables of *adjacent* nodes is guaranteed; each
    node's valuation covers exactly the variables of its own formula.
    """
    formulas = decode_boolean_graph(graph)
    model = satisfying_assignment(_global_formula(graph))
    if model is None:
        return None
    result: Dict[Node, Dict[str, bool]] = {}
    for node, formula in formulas.items():
        result[node] = {
            name: model.get(_namespaced(node, name), False) for name in formula.variables()
        }
    return result


def is_valid_sat_graph_assignment(
    graph: LabeledGraph, assignment: Mapping[Node, Mapping[str, bool]]
) -> bool:
    """Check a candidate family of valuations against the sat-graph definition."""
    formulas = decode_boolean_graph(graph)
    for node, formula in formulas.items():
        valuation = assignment.get(node, {})
        if not formula.variables() <= set(valuation):
            return False
        if not formula.evaluate(valuation):
            return False
    for u, v in graph.edge_pairs():
        shared = formulas[u].variables() & formulas[v].variables()
        for name in shared:
            if bool(assignment[u][name]) != bool(assignment[v][name]):
                return False
    return True


def three_sat_graph_member(graph: LabeledGraph) -> bool:
    """Whether every node label is a 3-CNF formula (membership in ``3-sat-graph``'s domain)."""
    from repro.boolsat.cnf import _formula_is_three_cnf

    try:
        formulas = decode_boolean_graph(graph)
    except (ValueError, KeyError):
        return False
    return all(_formula_is_three_cnf(f) for f in formulas.values())
