"""Bit-string encoding of Boolean formulas.

The paper fixes "some unspecified encoding of finite objects as binary
strings" (Section 3).  We make one concrete choice here: the textual
representation of a formula is encoded byte-wise as 8-bit ASCII.  Node labels
of Boolean graphs are exactly these encodings, so a Boolean graph is an
ordinary :class:`~repro.graphs.labeled_graph.LabeledGraph`.
"""

from __future__ import annotations

from repro.boolsat.formulas import BooleanFormula, parse_formula


def encode_text(text: str) -> str:
    """Encode arbitrary ASCII text as a bit string (8 bits per character)."""
    try:
        raw = text.encode("ascii")
    except UnicodeEncodeError as exc:
        raise ValueError(f"only ASCII text can be encoded: {text!r}") from exc
    return "".join(format(byte, "08b") for byte in raw)


def decode_text(bits: str) -> str:
    """Decode a bit string produced by :func:`encode_text`."""
    if len(bits) % 8 != 0:
        raise ValueError("encoded text must have a length divisible by 8")
    chars = []
    for i in range(0, len(bits), 8):
        chunk = bits[i : i + 8]
        if not set(chunk) <= {"0", "1"}:
            raise ValueError(f"invalid bit chunk {chunk!r}")
        chars.append(chr(int(chunk, 2)))
    return "".join(chars)


def encode_formula_text(text: str) -> str:
    """Encode a formula given as text; validates that it parses first."""
    parse_formula(text)
    return encode_text(text)


def encode_formula(formula: BooleanFormula) -> str:
    """Encode a formula AST as a bit string."""
    return encode_text(str(formula))


def decode_formula_text(bits: str) -> str:
    """Decode a node label back into formula text."""
    return decode_text(bits)


def decode_formula(bits: str) -> BooleanFormula:
    """Decode a node label back into a formula AST."""
    return parse_formula(decode_text(bits))
