"""SAT solving: a reference DPLL plus the CDCL production path.

The module offers two solvers over :class:`~repro.boolsat.cnf.CNF` instances
(or arbitrary :class:`~repro.boolsat.formulas.BooleanFormula` objects, which
are first run through the Tseytin transformation):

* a small self-contained DPLL with unit propagation and pure-literal
  elimination, kept as an easily auditable reference implementation
  (:func:`dpll_satisfiable`);
* the clause-learning solver of :mod:`repro.boolsat.cdcl`, which
  :func:`satisfying_assignment` uses so that the large CNF encodings
  produced by the reductions (e.g. 3-coloring the Theorem 23 gadget graphs)
  are solved in milliseconds instead of hours.

Randomized tests assert that the two agree with brute force on small
formulas.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.boolsat.cnf import CNF, Clause, Literal, to_cnf_tseytin
from repro.boolsat.formulas import BooleanFormula, all_valuations


def _simplify(clauses: List[Clause], assignment: Dict[str, bool]) -> Optional[List[Clause]]:
    """Apply *assignment*; return simplified clauses or ``None`` on conflict."""
    result: List[Clause] = []
    for clause in clauses:
        satisfied = False
        remaining: Set[Literal] = set()
        for name, polarity in clause:
            if name in assignment:
                if assignment[name] == polarity:
                    satisfied = True
                    break
            else:
                remaining.add((name, polarity))
        if satisfied:
            continue
        if not remaining:
            return None
        result.append(frozenset(remaining))
    return result


def _unit_propagate(
    clauses: List[Clause], assignment: Dict[str, bool]
) -> Optional[List[Clause]]:
    """Repeatedly assign unit clauses; return ``None`` on conflict."""
    current = clauses
    while True:
        unit: Optional[Literal] = None
        for clause in current:
            if len(clause) == 1:
                unit = next(iter(clause))
                break
        if unit is None:
            return current
        name, polarity = unit
        assignment[name] = polarity
        current = _simplify(current, {name: polarity})
        if current is None:
            return None


def _pure_literals(clauses: List[Clause]) -> Dict[str, bool]:
    polarities: Dict[str, Set[bool]] = {}
    for clause in clauses:
        for name, polarity in clause:
            polarities.setdefault(name, set()).add(polarity)
    return {name: next(iter(p)) for name, p in polarities.items() if len(p) == 1}


def _dpll(clauses: List[Clause], assignment: Dict[str, bool]) -> Optional[Dict[str, bool]]:
    clauses = _unit_propagate(clauses, assignment)
    if clauses is None:
        return None
    pure = _pure_literals(clauses)
    if pure:
        assignment.update(pure)
        clauses = _simplify(clauses, pure)
        if clauses is None:
            return None
    if not clauses:
        return assignment
    # Branch on the first literal of the shortest clause.
    shortest = min(clauses, key=len)
    name, polarity = next(iter(shortest))
    for value in (polarity, not polarity):
        trial = dict(assignment)
        trial[name] = value
        simplified = _simplify(clauses, {name: value})
        if simplified is None:
            continue
        result = _dpll(simplified, trial)
        if result is not None:
            return result
    return None


def dpll_satisfiable(value: CNF | BooleanFormula) -> bool:
    """Whether the given CNF or Boolean formula is satisfiable (reference DPLL)."""
    if isinstance(value, CNF):
        cnf_value = value
    else:
        cnf_value = to_cnf_tseytin(value, prefix="_tseytin")
    return _dpll(list(cnf_value.clauses), {}) is not None


def satisfying_assignment(value: CNF | BooleanFormula) -> Optional[Dict[str, bool]]:
    """A satisfying assignment of the original variables, or ``None``.

    Uses the clause-learning solver of :mod:`repro.boolsat.cdcl` (the DPLL
    above is kept as a cross-checked reference).  When a general formula is
    passed, Tseytin auxiliary variables are removed from the returned
    assignment and unassigned original variables default to ``False``.
    """
    from repro.boolsat.cdcl import cdcl_satisfying_assignment

    if isinstance(value, CNF):
        cnf_value = value
        original_variables = set(cnf_value.variables())
    else:
        cnf_value = to_cnf_tseytin(value, prefix="_tseytin")
        original_variables = set(value.variables())

    assignment = cdcl_satisfying_assignment(cnf_value)
    if assignment is None:
        return None
    result = {name: assignment.get(name, False) for name in original_variables}
    return result


def enumerate_models(formula: BooleanFormula) -> Iterator[Dict[str, bool]]:
    """Yield every satisfying valuation of *formula* (exhaustive; small use only)."""
    for valuation in all_valuations(formula.variables()):
        if formula.evaluate(valuation):
            yield dict(valuation)


def count_models(formula: BooleanFormula) -> int:
    """The number of satisfying valuations of *formula*."""
    return sum(1 for _ in enumerate_models(formula))
