"""A conflict-driven clause-learning (CDCL) SAT solver.

The DPLL solver of :mod:`repro.boolsat.solver` is fine for the small
formulas of the logic layer, but the reductions produce CNF encodings with
thousands of clauses -- most prominently the 3-coloring encodings of the
Theorem 23 gadget graphs -- on which plain backtracking thrashes.  This
module implements the standard modern architecture at a deliberately small
scale:

* two watched literals per clause (no work on clause visits that cannot
  propagate),
* first-UIP conflict analysis with clause learning and non-chronological
  backjumping,
* VSIDS-style variable activities with exponential decay,
* geometric restarts (learnt clauses are kept across restarts).

Literal encoding: variable ``v`` (an index) appears as literal ``2 * v``
positively and ``2 * v + 1`` negatively; ``lit ^ 1`` negates a literal.
The public entry points work on the named-variable
:class:`~repro.boolsat.cnf.CNF` objects used throughout the repository and
return named assignments.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.boolsat.cnf import CNF

_RESTART_BASE = 100
_RESTART_FACTOR = 1.5
_ACTIVITY_DECAY = 1.05
_ACTIVITY_LIMIT = 1e100


def _solve_int_clauses(clause_list: Sequence[Sequence[int]], variables: int) -> Optional[List[int]]:
    """CDCL search on integer-literal clauses.

    Returns a list mapping each variable index to 0 (false) or 1 (true), or
    ``None`` when the instance is unsatisfiable.  Variables never touched by
    propagation or decisions default to false.
    """
    watches: List[List[List[int]]] = [[] for _ in range(2 * variables)]
    units: List[int] = []
    clauses: List[List[int]] = []
    for raw in clause_list:
        clause = list(dict.fromkeys(raw))
        if not clause:
            return None
        if len(clause) == 1:
            units.append(clause[0])
            continue
        clauses.append(clause)
        watches[clause[0]].append(clause)
        watches[clause[1]].append(clause)

    assign: List[int] = [-1] * variables  # -1 unassigned / 0 false / 1 true
    level: List[int] = [0] * variables
    reason: List[Optional[List[int]]] = [None] * variables
    trail: List[int] = []
    activity: List[float] = [0.0] * variables
    activity_step = 1.0

    def literal_true(literal: int) -> bool:
        return assign[literal >> 1] == 1 - (literal & 1)

    def literal_false(literal: int) -> bool:
        return assign[literal >> 1] == (literal & 1)

    def enqueue(literal: int, clause: Optional[List[int]], current_level: int) -> None:
        variable = literal >> 1
        assign[variable] = 1 - (literal & 1)
        level[variable] = current_level
        reason[variable] = clause
        trail.append(literal)

    def propagate(current_level: int, queue_head: int) -> Tuple[Optional[List[int]], int]:
        """Unit propagation from *queue_head*; returns (conflict clause, head)."""
        while queue_head < len(trail):
            literal = trail[queue_head]
            queue_head += 1
            falsified = literal ^ 1
            watch_list = watches[falsified]
            index = 0
            while index < len(watch_list):
                clause = watch_list[index]
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                if literal_true(clause[0]):
                    index += 1
                    continue
                for other in range(2, len(clause)):
                    if not literal_false(clause[other]):
                        clause[1], clause[other] = clause[other], clause[1]
                        watches[clause[1]].append(clause)
                        watch_list[index] = watch_list[-1]
                        watch_list.pop()
                        break
                else:
                    if assign[clause[0] >> 1] == -1:
                        enqueue(clause[0], clause, current_level)
                        index += 1
                    else:
                        return clause, queue_head
        return None, queue_head

    def analyze(conflict: List[int], current_level: int) -> Tuple[List[int], int]:
        """First-UIP learning: returns (learnt clause, backjump level)."""
        nonlocal activity_step
        learnt: List[int] = []
        seen = [False] * variables
        open_paths = 0
        trail_index = len(trail) - 1
        clause = conflict
        expanded_variable = -1
        while True:
            for literal in clause:
                variable = literal >> 1
                if variable == expanded_variable:
                    continue
                if not seen[variable] and level[variable] > 0:
                    seen[variable] = True
                    activity[variable] += activity_step
                    if level[variable] == current_level:
                        open_paths += 1
                    else:
                        learnt.append(literal)
            while not seen[trail[trail_index] >> 1]:
                trail_index -= 1
            pivot = trail[trail_index]
            trail_index -= 1
            variable = pivot >> 1
            seen[variable] = False
            open_paths -= 1
            if open_paths == 0:
                learnt.insert(0, pivot ^ 1)
                break
            expanded_variable = variable
            clause = reason[variable]  # never None: the decision is a UIP
        activity_step *= _ACTIVITY_DECAY
        if activity_step > _ACTIVITY_LIMIT:
            for index in range(variables):
                activity[index] /= _ACTIVITY_LIMIT
            activity_step /= _ACTIVITY_LIMIT
        if len(learnt) == 1:
            return learnt, 0
        deepest = max(range(1, len(learnt)), key=lambda k: level[learnt[k] >> 1])
        learnt[1], learnt[deepest] = learnt[deepest], learnt[1]
        return learnt, level[learnt[1] >> 1]

    def backjump(target_level: int) -> None:
        while trail and level[trail[-1] >> 1] > target_level:
            literal = trail.pop()
            assign[literal >> 1] = -1
            reason[literal >> 1] = None

    # Top-level units.
    for literal in units:
        if literal_false(literal):
            return None
        if assign[literal >> 1] == -1:
            enqueue(literal, None, 0)
    conflict, queue_head = propagate(0, 0)
    if conflict is not None:
        return None

    current_level = 0
    restart_limit = _RESTART_BASE
    conflicts_since_restart = 0
    while True:
        decision_variable = -1
        best_activity = -1.0
        for variable in range(variables):
            if assign[variable] == -1 and activity[variable] > best_activity:
                best_activity = activity[variable]
                decision_variable = variable
        if decision_variable == -1:
            return [value if value != -1 else 0 for value in assign]
        current_level += 1
        enqueue(2 * decision_variable + 1, None, current_level)  # decide "false" first
        while True:
            conflict, queue_head = propagate(current_level, queue_head)
            if conflict is None:
                break
            if current_level == 0:
                return None
            learnt, backjump_level = analyze(conflict, current_level)
            conflicts_since_restart += 1
            backjump(backjump_level)
            queue_head = len(trail)
            current_level = backjump_level
            if len(learnt) == 1:
                if literal_false(learnt[0]):
                    return None
                if assign[learnt[0] >> 1] == -1:
                    enqueue(learnt[0], None, 0)
            else:
                clauses.append(learnt)
                watches[learnt[0]].append(learnt)
                watches[learnt[1]].append(learnt)
                enqueue(learnt[0], learnt, backjump_level)
        if conflicts_since_restart >= restart_limit:
            conflicts_since_restart = 0
            restart_limit = int(restart_limit * _RESTART_FACTOR)
            backjump(0)
            queue_head = len(trail)
            current_level = 0


def cdcl_satisfying_assignment(cnf: CNF) -> Optional[Dict[str, bool]]:
    """A satisfying assignment of the CNF's variables, or ``None`` if UNSAT.

    The returned assignment covers exactly ``cnf.variables()``; variables
    the search never constrained default to ``False``.  The model is checked
    against every clause before being returned (a cheap safety net for the
    solver's internal invariants).
    """
    names = sorted(cnf.variables())
    variable_index = {name: position for position, name in enumerate(names)}
    int_clauses: List[List[int]] = []
    for clause in cnf.clauses:
        int_clauses.append(
            [2 * variable_index[name] + (0 if polarity else 1) for name, polarity in clause]
        )
    values = _solve_int_clauses(int_clauses, len(names))
    if values is None:
        return None
    model = {name: bool(values[variable_index[name]]) for name in names}
    for clause in cnf.clauses:
        if not any(model[name] == polarity for name, polarity in clause):
            raise RuntimeError("CDCL produced a non-model; solver invariant violated")
    return model


def cdcl_satisfiable(cnf: CNF) -> bool:
    """Whether the CNF is satisfiable (CDCL search)."""
    return cdcl_satisfying_assignment(cnf) is not None
