"""Boolean satisfiability substrate (Section 8 of the paper).

This package provides everything the paper's NLP-completeness results rely
on:

* a Boolean formula AST and parser (:mod:`repro.boolsat.formulas`),
* valuations and satisfaction checking,
* CNF conversion and the Tseytin transformation (:mod:`repro.boolsat.cnf`),
* a self-contained DPLL SAT solver (:mod:`repro.boolsat.solver`),
* Boolean graphs and the graph satisfiability problem ``sat-graph``
  (:mod:`repro.boolsat.boolean_graph`),
* the bit-string encoding of formulas used as node labels
  (:mod:`repro.boolsat.encoding`).
"""

from repro.boolsat.formulas import (
    BooleanFormula,
    Var,
    Not,
    And,
    Or,
    Const,
    parse_formula,
    variables_of,
)
from repro.boolsat.cnf import CNF, Clause, to_cnf_tseytin, formula_to_cnf_clauses, is_three_cnf
from repro.boolsat.solver import dpll_satisfiable, satisfying_assignment, enumerate_models
from repro.boolsat.boolean_graph import (
    boolean_graph_from_formulas,
    decode_boolean_graph,
    sat_graph_satisfiable,
    sat_graph_assignment,
)
from repro.boolsat.encoding import encode_formula_text, decode_formula_text

__all__ = [
    "BooleanFormula",
    "Var",
    "Not",
    "And",
    "Or",
    "Const",
    "parse_formula",
    "variables_of",
    "CNF",
    "Clause",
    "to_cnf_tseytin",
    "formula_to_cnf_clauses",
    "is_three_cnf",
    "dpll_satisfiable",
    "satisfying_assignment",
    "enumerate_models",
    "boolean_graph_from_formulas",
    "decode_boolean_graph",
    "sat_graph_satisfiable",
    "sat_graph_assignment",
    "encode_formula_text",
    "decode_formula_text",
]
