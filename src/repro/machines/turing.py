"""Low-level distributed Turing machines (Section 4, Figure 8).

A distributed Turing machine is a pair ``(Q, delta)`` over the tape alphabet
``{⊢, □, #, 0, 1}``.  Each node runs its own copy with three one-way infinite
tapes:

* the **receiving tape**, overwritten at the start of each round with the
  concatenation of the incoming messages separated (and terminated) by ``#``,
* the **internal tape**, initialized in round 1 with
  ``label # identifier # certificates`` and persistent across rounds,
* the **sending tape**, cleared at the start of each round; at the end of the
  round its first ``d`` ``#``-separated bit strings are sent to the ``d``
  neighbors in ascending identifier order.

The local computation of a round starts in ``q_start`` with all heads on the
leftmost cell and runs until ``q_pause`` or ``q_stop`` is reached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.machines.interface import NodeInput

LEFT_END = "⊢"
BLANK = "□"
SEPARATOR = "#"
ALPHABET = (LEFT_END, BLANK, SEPARATOR, "0", "1")

Q_START = "q_start"
Q_PAUSE = "q_pause"
Q_STOP = "q_stop"

TransitionKey = Tuple[str, str, str, str]
"""(state, symbol_receiving, symbol_internal, symbol_sending)."""

TransitionValue = Tuple[str, str, str, str, int, int, int]
"""(new_state, write_receiving, write_internal, write_sending,
    move_receiving, move_internal, move_sending)."""


@dataclass(frozen=True)
class TuringTransition:
    """One entry of the transition function ``delta``."""

    state: str
    read: Tuple[str, str, str]
    next_state: str
    write: Tuple[str, str, str]
    moves: Tuple[int, int, int]

    def __post_init__(self) -> None:
        for symbol in self.read + self.write:
            if symbol not in ALPHABET:
                raise ValueError(f"symbol {symbol!r} is not in the tape alphabet")
        for move in self.moves:
            if move not in (-1, 0, 1):
                raise ValueError("head moves must be -1, 0 or 1")


class Tape:
    """A one-way infinite tape with a left-end marker in cell 0."""

    __slots__ = ("cells", "head")

    def __init__(self, content: str = "") -> None:
        self.cells: List[str] = [LEFT_END] + list(content)
        self.head = 0

    def read(self) -> str:
        if self.head < len(self.cells):
            return self.cells[self.head]
        return BLANK

    def write(self, symbol: str) -> None:
        while self.head >= len(self.cells):
            self.cells.append(BLANK)
        if self.head == 0 and symbol != LEFT_END:
            # The left-end marker may not be overwritten; this mirrors the
            # usual convention for one-way infinite tapes.
            return
        self.cells[self.head] = symbol

    def move(self, direction: int) -> None:
        self.head = max(0, self.head + direction)

    def content(self) -> str:
        """Tape content ignoring leading/trailing ``⊢`` and ``□`` (Section 4)."""
        text = "".join(self.cells)
        return text.strip(LEFT_END + BLANK)

    def reset_with(self, content: str) -> None:
        self.cells = [LEFT_END] + list(content)
        self.head = 0

    def space_usage(self) -> int:
        return len(self.cells)


@dataclass
class _TuringNodeState:
    """Per-node runtime state of a distributed Turing machine."""

    state: str
    receiving: Tape
    internal: Tape
    sending: Tape
    degree: int
    stopped: bool = False
    steps_per_round: List[int] = field(default_factory=list)
    space_per_round: List[int] = field(default_factory=list)


class DistributedTuringMachine:
    """A distributed Turing machine ``M = (Q, delta)``.

    Parameters
    ----------
    states:
        The state set; must contain ``q_start``, ``q_pause`` and ``q_stop``.
    transitions:
        The transition function, given either as a mapping from
        ``(state, s_rcv, s_int, s_snd)`` to
        ``(state', w_rcv, w_int, w_snd, m_rcv, m_int, m_snd)`` or as an
        iterable of :class:`TuringTransition`.  Missing entries default to
        "halt in the current configuration by entering ``q_stop``" so that
        partial tables stay total, as customary.
    rounds:
        The (constant) number of communication rounds the machine runs for.
    step_limit:
        Safety cap on the number of computation steps per node per round.
    """

    def __init__(
        self,
        states: Sequence[str],
        transitions: Mapping[TransitionKey, TransitionValue] | Sequence[TuringTransition],
        rounds: int = 1,
        step_limit: int = 100_000,
    ) -> None:
        state_set = set(states) | {Q_START, Q_PAUSE, Q_STOP}
        self.states = frozenset(state_set)
        self.rounds = rounds
        self.step_limit = step_limit

        table: Dict[TransitionKey, TransitionValue] = {}
        if isinstance(transitions, Mapping):
            table.update(transitions)
        else:
            for tr in transitions:
                key = (tr.state, *tr.read)
                table[key] = (tr.next_state, *tr.write, *tr.moves)
        for key, value in table.items():
            if key[0] not in self.states or value[0] not in self.states:
                raise ValueError(f"transition {key} -> {value} uses unknown state")
        self.transitions = table

    # ------------------------------------------------------------------
    # NodeMachine protocol
    # ------------------------------------------------------------------
    def initial_state(self, node_input: NodeInput) -> _TuringNodeState:
        return _TuringNodeState(
            state=Q_START,
            receiving=Tape(),
            internal=Tape(node_input.internal_tape_content()),
            sending=Tape(),
            degree=node_input.degree,
        )

    def round(
        self, state: _TuringNodeState, received: Sequence[str], round_index: int
    ) -> Tuple[_TuringNodeState, List[str], bool]:
        # Phase 1: overwrite the receiving tape with the incoming messages.
        state.receiving.reset_with(SEPARATOR.join(received) + SEPARATOR if received else "")

        # Phase 2: local computation (skipped if the machine already stopped).
        steps = 0
        if not state.stopped:
            state.sending.reset_with("")
            state.state = Q_START
            state.receiving.head = 0
            state.internal.head = 0
            state.sending.head = 0
            while state.state not in (Q_PAUSE, Q_STOP):
                if steps >= self.step_limit:
                    raise RuntimeError(
                        f"distributed Turing machine exceeded the step limit of {self.step_limit}"
                    )
                symbols = (
                    state.receiving.read(),
                    state.internal.read(),
                    state.sending.read(),
                )
                key = (state.state, *symbols)
                if key not in self.transitions:
                    state.state = Q_STOP
                    break
                next_state, w_rcv, w_int, w_snd, m_rcv, m_int, m_snd = self.transitions[key]
                state.receiving.write(w_rcv)
                state.internal.write(w_int)
                state.sending.write(w_snd)
                state.receiving.move(m_rcv)
                state.internal.move(m_int)
                state.sending.move(m_snd)
                state.state = next_state
                steps += 1
            if state.state == Q_STOP:
                state.stopped = True
        state.steps_per_round.append(steps)
        state.space_per_round.append(
            state.receiving.space_usage() + state.internal.space_usage() + state.sending.space_usage()
        )

        # Phase 3: extract the outgoing messages from the sending tape.
        if state.stopped and steps == 0:
            outgoing = ["" for _ in range(state.degree)]
        else:
            outgoing = self._outgoing_messages(state)
        return state, outgoing, state.stopped

    def output(self, state: _TuringNodeState) -> str:
        content = state.internal.content()
        return "".join(ch for ch in content if ch in "01")

    def max_rounds(self) -> int:
        return self.rounds

    # ------------------------------------------------------------------
    def _outgoing_messages(self, state: _TuringNodeState) -> List[str]:
        raw = "".join(state.sending.cells[1:])
        raw = raw.replace(BLANK, "")
        parts = raw.split(SEPARATOR)
        messages = []
        for i in range(state.degree):
            messages.append(parts[i] if i < len(parts) else "")
        return messages


def accept_machine(rounds: int = 1) -> DistributedTuringMachine:
    """A trivial machine that immediately accepts (writes ``1``) at every node."""
    transitions = {
        (Q_START, LEFT_END, LEFT_END, LEFT_END): ("q_write", LEFT_END, LEFT_END, LEFT_END, 0, 1, 0),
    }
    # In state q_write the head of the internal tape is on cell 1; write 1,
    # then clear the rest of the original content.
    for s_rcv in ALPHABET:
        for s_int in ALPHABET:
            for s_snd in ALPHABET:
                transitions.setdefault(
                    ("q_write", s_rcv, s_int, s_snd),
                    ("q_clear", s_rcv, "1", s_snd, 0, 1, 0),
                )
                if s_int == BLANK:
                    transitions.setdefault(
                        ("q_clear", s_rcv, s_int, s_snd),
                        (Q_STOP, s_rcv, s_int, s_snd, 0, 0, 0),
                    )
                else:
                    transitions.setdefault(
                        ("q_clear", s_rcv, s_int, s_snd),
                        ("q_clear", s_rcv, BLANK, s_snd, 0, 1, 0),
                    )
    return DistributedTuringMachine(
        ["q_write", "q_clear"], transitions, rounds=rounds
    )


def label_is_one_machine() -> DistributedTuringMachine:
    """A one-round machine that accepts iff the node's label is exactly ``1``.

    The internal tape initially holds ``label#id#certs``; the machine checks
    that the first symbol is ``1`` and the second is ``#``, then erases the
    tape and writes the verdict.  Running it under acceptance by unanimity
    decides the property ``all-selected`` (Remark 17) at the Turing-machine
    level.
    """
    transitions: Dict[TransitionKey, TransitionValue] = {}

    def add(state: str, s_int: str, value: TransitionValue) -> None:
        for s_rcv in ALPHABET:
            for s_snd in ALPHABET:
                transitions[(state, s_rcv, s_int, s_snd)] = value

    # Move off the left-end marker.
    add(Q_START, LEFT_END, ("q_first", LEFT_END, LEFT_END, LEFT_END, 0, 1, 0))
    # First symbol of the label must be '1'.
    for symbol in ALPHABET:
        if symbol == LEFT_END:
            continue
        if symbol == "1":
            add("q_first", symbol, ("q_second", symbol, symbol, symbol, 0, 1, 0))
        else:
            add("q_first", symbol, ("q_reject", symbol, symbol, symbol, 0, 0, 0))
    # Second symbol must be '#' (label has length exactly one).
    for symbol in ALPHABET:
        if symbol == LEFT_END:
            continue
        if symbol == SEPARATOR:
            add("q_second", symbol, ("q_accept", symbol, symbol, symbol, 0, -1, 0))
        else:
            add("q_second", symbol, ("q_reject", symbol, symbol, symbol, 0, 0, 0))
    # Rewind to the left end before writing the verdict.
    for symbol in ALPHABET:
        if symbol == LEFT_END:
            add("q_accept", symbol, ("q_write1", symbol, symbol, symbol, 0, 1, 0))
            add("q_reject", symbol, ("q_write0", symbol, symbol, symbol, 0, 1, 0))
        else:
            add("q_accept", symbol, ("q_accept", symbol, symbol, symbol, 0, -1, 0))
            add("q_reject", symbol, ("q_reject", symbol, symbol, symbol, 0, -1, 0))
    # Write the verdict and erase the remaining tape content.
    for symbol in ALPHABET:
        if symbol == LEFT_END:
            continue
        add("q_write1", symbol, ("q_erase", symbol, "1", symbol, 0, 1, 0))
        add("q_write0", symbol, ("q_erase", symbol, "0", symbol, 0, 1, 0))
        if symbol == BLANK:
            add("q_erase", symbol, (Q_STOP, symbol, symbol, symbol, 0, 0, 0))
        else:
            add("q_erase", symbol, ("q_erase", symbol, BLANK, symbol, 0, 1, 0))

    return DistributedTuringMachine(
        ["q_first", "q_second", "q_accept", "q_reject", "q_write1", "q_write0", "q_erase"],
        transitions,
        rounds=1,
    )
