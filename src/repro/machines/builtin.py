"""Built-in local algorithms used throughout the paper's constructions.

Each of these is a constant-round, polynomial-step local algorithm in the
sense of Section 4.  The deciders (no certificates) witness membership in LP;
the verifiers read Eve's certificate and witness membership in NLP when
plugged into the hierarchy game of :mod:`repro.hierarchy`.
"""

from __future__ import annotations

from typing import Callable

from repro.machines.local_algorithm import LocalView, NeighborhoodGatherAlgorithm


def constant_algorithm(verdict: str = "1") -> NeighborhoodGatherAlgorithm:
    """An algorithm whose every node outputs the fixed label *verdict*."""
    return NeighborhoodGatherAlgorithm(0, lambda view: verdict, name=f"constant[{verdict}]")


def predicate_decider(radius: int, predicate: Callable[[LocalView], bool], name: str = "") -> NeighborhoodGatherAlgorithm:
    """Accept at a node iff *predicate* holds on its radius-``radius`` view."""

    def compute(view: LocalView) -> str:
        return "1" if predicate(view) else "0"

    return NeighborhoodGatherAlgorithm(radius, compute, name=name or "predicate")


def all_selected_decider() -> NeighborhoodGatherAlgorithm:
    """LP-decider for ``all-selected``: each node checks its own label is ``1``."""
    return predicate_decider(0, lambda view: view.center_label() == "1", name="all-selected")


def not_all_selected_complement_decider() -> NeighborhoodGatherAlgorithm:
    """The machine whose *rejections* witness ``not-all-selected`` (coLP view).

    It is the same machine as :func:`all_selected_decider`; the complement
    class coLP is about reading its rejections as acceptances of the
    complement property.
    """
    return all_selected_decider()


def eulerian_decider() -> NeighborhoodGatherAlgorithm:
    """LP-decider for Eulerianness: every node checks that its degree is even.

    By Euler's theorem a connected graph has an Eulerian cycle iff all degrees
    are even (Proposition 18).
    """

    def predicate(view: LocalView) -> bool:
        return len(view.neighbors_of(view.center)) % 2 == 0

    return predicate_decider(1, predicate, name="eulerian")


def coloring_label_verifier(colors: int = 3) -> NeighborhoodGatherAlgorithm:
    """LP-decider for "the labels form a valid ``colors``-coloring".

    Labels are expected to be binary encodings of color indices; a node
    accepts iff its label decodes to a color smaller than *colors* and differs
    from all its neighbors' colors.  This is the LCL-style locally checkable
    version of coloring.
    """

    def predicate(view: LocalView) -> bool:
        own = view.center_label()
        if not own or int(own, 2) >= colors:
            return False
        for neighbor in view.neighbors_of(view.center):
            if view.label_of(neighbor) == own:
                return False
        return True

    return predicate_decider(1, predicate, name=f"{colors}-coloring-labels")


def three_colorability_verifier() -> NeighborhoodGatherAlgorithm:
    """NLP-verifier for 3-colorability: Eve's certificate is the node's color.

    Each node accepts iff its first certificate decodes to a color in
    ``{0, 1, 2}`` that differs from the first certificate of every neighbor.
    Used with the Sigma^lp_1 game this verifies ``3-colorable``.
    """

    def predicate(view: LocalView) -> bool:
        certs = view.center_certificates()
        if not certs or certs[0] not in ("00", "01", "10"):
            return False
        own = certs[0]
        for neighbor in view.neighbors_of(view.center):
            neighbor_certs = view.certificates_of(neighbor)
            if not neighbor_certs or neighbor_certs[0] == own:
                return False
        return True

    return predicate_decider(1, predicate, name="3-colorability-verifier")


def two_colorability_verifier() -> NeighborhoodGatherAlgorithm:
    """NLP-verifier for 2-colorability (used in the proof of Proposition 24)."""

    def predicate(view: LocalView) -> bool:
        certs = view.center_certificates()
        if not certs or certs[0] not in ("0", "1"):
            return False
        own = certs[0]
        for neighbor in view.neighbors_of(view.center):
            neighbor_certs = view.certificates_of(neighbor)
            if not neighbor_certs or neighbor_certs[0] == own:
                return False
        return True

    return predicate_decider(1, predicate, name="2-colorability-verifier")


def selected_equals_certificate_verifier() -> NeighborhoodGatherAlgorithm:
    """A toy verifier: accept iff the certificate repeats the node's label."""

    def predicate(view: LocalView) -> bool:
        certs = view.center_certificates()
        return bool(certs) and certs[0] == view.center_label()

    return predicate_decider(0, predicate, name="certificate-equals-label")
