"""Built-in local algorithms used throughout the paper's constructions.

Each of these is a constant-round, polynomial-step local algorithm in the
sense of Section 4.  The deciders (no certificates) witness membership in LP;
the verifiers read Eve's certificate and witness membership in NLP when
plugged into the hierarchy game of :mod:`repro.hierarchy`.

Every factory below also attaches a declarative :mod:`repro.machines.rules`
rule to its machine: a machine-readable statement of the same predicate
that the compiled engine core (:mod:`repro.engine.compiled`) lowers into
table-driven evaluation over integer certificate codes.  The LocalView
``compute`` function remains the source of truth for the simulator; the
rule is a verdict-equivalent compilable mirror (asserted by the randomized
equivalence suite).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.machines.local_algorithm import LocalView, NeighborhoodGatherAlgorithm
from repro.machines.rules import (
    PairwiseRule,
    StarRule,
    StarView,
    attach_rule,
    star_view_of,
)


def constant_algorithm(verdict: str = "1") -> NeighborhoodGatherAlgorithm:
    """An algorithm whose every node outputs the fixed label *verdict*."""
    machine = NeighborhoodGatherAlgorithm(0, lambda view: verdict, name=f"constant[{verdict}]")
    accepts = verdict == "1"
    return attach_rule(
        machine,
        PairwiseRule(
            own_ok=lambda label, degree, cert: accepts,
            pair_ok=None,
            radius=0,
            needs_certificate=False,
        ),
    )


def predicate_decider(
    radius: int,
    predicate: Callable[[LocalView], bool],
    name: str = "",
    rule: Optional[object] = None,
) -> NeighborhoodGatherAlgorithm:
    """Accept at a node iff *predicate* holds on its radius-``radius`` view.

    *rule*, when given, is attached as the machine's compilable local rule
    (it must be verdict-equivalent to *predicate*).
    """

    def compute(view: LocalView) -> str:
        return "1" if predicate(view) else "0"

    machine = NeighborhoodGatherAlgorithm(radius, compute, name=name or "predicate")
    if rule is not None:
        attach_rule(machine, rule)
    return machine


def star_predicate_verifier(
    radius: int,
    star_predicate: Callable[[StarView], bool],
    name: str = "",
    level: int = 0,
) -> NeighborhoodGatherAlgorithm:
    """A verifier defined *once* as a star predicate, simulated and compiled alike.

    The machine's ``compute`` projects its LocalView down to the
    :class:`~repro.machines.rules.StarView` and applies *star_predicate*;
    the attached :class:`~repro.machines.rules.StarRule` hands the very
    same predicate to the compiled core, so the two evaluation paths cannot
    drift apart.
    """
    return predicate_decider(
        radius,
        lambda view: star_predicate(star_view_of(view, level)),
        name=name,
        rule=StarRule(predicate=star_predicate, level=level, radius=radius),
    )


def all_selected_decider() -> NeighborhoodGatherAlgorithm:
    """LP-decider for ``all-selected``: each node checks its own label is ``1``."""
    return predicate_decider(
        0,
        lambda view: view.center_label() == "1",
        name="all-selected",
        rule=PairwiseRule(
            own_ok=lambda label, degree, cert: label == "1",
            pair_ok=None,
            radius=0,
            needs_certificate=False,
        ),
    )


def not_all_selected_complement_decider() -> NeighborhoodGatherAlgorithm:
    """The machine whose *rejections* witness ``not-all-selected`` (coLP view).

    It is the same machine as :func:`all_selected_decider`; the complement
    class coLP is about reading its rejections as acceptances of the
    complement property.
    """
    return all_selected_decider()


def eulerian_decider() -> NeighborhoodGatherAlgorithm:
    """LP-decider for Eulerianness: every node checks that its degree is even.

    By Euler's theorem a connected graph has an Eulerian cycle iff all degrees
    are even (Proposition 18).
    """

    def predicate(view: LocalView) -> bool:
        return len(view.neighbors_of(view.center)) % 2 == 0

    return predicate_decider(
        1,
        predicate,
        name="eulerian",
        rule=PairwiseRule(
            own_ok=lambda label, degree, cert: degree % 2 == 0,
            pair_ok=None,
            radius=1,
            needs_certificate=False,
        ),
    )


def coloring_label_verifier(colors: int = 3) -> NeighborhoodGatherAlgorithm:
    """LP-decider for "the labels form a valid ``colors``-coloring".

    Labels are expected to be binary encodings of color indices; a node
    accepts iff its label decodes to a color smaller than *colors* and differs
    from all its neighbors' colors.  This is the LCL-style locally checkable
    version of coloring.
    """

    def predicate(view: LocalView) -> bool:
        own = view.center_label()
        if not own or int(own, 2) >= colors:
            return False
        for neighbor in view.neighbors_of(view.center):
            if view.label_of(neighbor) == own:
                return False
        return True

    return predicate_decider(
        1,
        predicate,
        name=f"{colors}-coloring-labels",
        rule=PairwiseRule(
            own_ok=lambda label, degree, cert: bool(label) and int(label, 2) < colors,
            pair_ok=lambda own_label, own_cert, nb_label, nb_cert: nb_label != own_label,
            radius=1,
            needs_certificate=False,
        ),
    )


def three_colorability_verifier() -> NeighborhoodGatherAlgorithm:
    """NLP-verifier for 3-colorability: Eve's certificate is the node's color.

    Each node accepts iff its first certificate decodes to a color in
    ``{0, 1, 2}`` that differs from the first certificate of every neighbor.
    Used with the Sigma^lp_1 game this verifies ``3-colorable``.
    """

    def predicate(view: LocalView) -> bool:
        certs = view.center_certificates()
        if not certs or certs[0] not in ("00", "01", "10"):
            return False
        own = certs[0]
        for neighbor in view.neighbors_of(view.center):
            neighbor_certs = view.certificates_of(neighbor)
            if not neighbor_certs or neighbor_certs[0] == own:
                return False
        return True

    return predicate_decider(
        1,
        predicate,
        name="3-colorability-verifier",
        rule=PairwiseRule(
            own_ok=lambda label, degree, cert: cert in ("00", "01", "10"),
            pair_ok=lambda own_label, own_cert, nb_label, nb_cert: nb_cert != own_cert,
            radius=1,
        ),
    )


def two_colorability_verifier() -> NeighborhoodGatherAlgorithm:
    """NLP-verifier for 2-colorability (used in the proof of Proposition 24)."""

    def predicate(view: LocalView) -> bool:
        certs = view.center_certificates()
        if not certs or certs[0] not in ("0", "1"):
            return False
        own = certs[0]
        for neighbor in view.neighbors_of(view.center):
            neighbor_certs = view.certificates_of(neighbor)
            if not neighbor_certs or neighbor_certs[0] == own:
                return False
        return True

    return predicate_decider(
        1,
        predicate,
        name="2-colorability-verifier",
        rule=PairwiseRule(
            own_ok=lambda label, degree, cert: cert in ("0", "1"),
            pair_ok=lambda own_label, own_cert, nb_label, nb_cert: nb_cert != own_cert,
            radius=1,
        ),
    )


def selected_equals_certificate_verifier() -> NeighborhoodGatherAlgorithm:
    """A toy verifier: accept iff the certificate repeats the node's label."""

    def predicate(view: LocalView) -> bool:
        certs = view.center_certificates()
        return bool(certs) and certs[0] == view.center_label()

    return predicate_decider(
        0,
        predicate,
        name="certificate-equals-label",
        rule=PairwiseRule(
            own_ok=lambda label, degree, cert: cert == label, pair_ok=None, radius=0
        ),
    )
