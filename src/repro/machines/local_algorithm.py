"""Constant-round local algorithms (the practical machine layer).

Almost every construction in the paper follows the same scheme: *in the first
r rounds each node collects its r-neighborhood (labels, identifiers and
certificates included), and in the last round it evaluates some predicate on
that local view*.  :class:`NeighborhoodGatherAlgorithm` implements exactly
this scheme on top of the simulator, with the local view handed to a
user-supplied ``compute`` function.

The information gathered per node is the :class:`LocalView`: the induced
subgraph of the radius-``r`` ball around the node together with the
identifiers and certificates of all nodes in the ball.  Node identities inside
the view are the *identifiers*, not the original node objects, so that a
compute function cannot accidentally depend on information a real distributed
algorithm would not have.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.machines.interface import NodeInput


@dataclass(frozen=True)
class LocalView:
    """What a node knows after ``radius`` rounds of flooding.

    Attributes
    ----------
    center:
        The identifier of the node at the center of the view.
    radius:
        The gathering radius.
    nodes:
        Identifiers of all nodes in the radius-``radius`` ball.
    edges:
        Edges among those nodes (as frozensets of identifiers) -- note that
        edges between two nodes at distance exactly ``radius`` from the center
        are known only if some ball member reported them, exactly as in the
        LOCAL model.
    labels, identifiers, certificates, distances:
        Per-node data, keyed by identifier.  ``identifiers`` maps each view
        node to its identifier string (identity map, kept for clarity),
        ``certificates`` maps to the tuple of certificates, ``distances`` to
        the hop distance from the center.
    """

    center: str
    radius: int
    nodes: FrozenSet[str]
    edges: FrozenSet[FrozenSet[str]]
    labels: Tuple[Tuple[str, str], ...]
    certificates: Tuple[Tuple[str, Tuple[str, ...]], ...]
    distances: Tuple[Tuple[str, int], ...]

    def label_of(self, identifier: str) -> str:
        """The label of the view node with the given identifier."""
        return dict(self.labels)[identifier]

    def certificates_of(self, identifier: str) -> Tuple[str, ...]:
        """The certificate tuple of the view node with the given identifier."""
        return dict(self.certificates)[identifier]

    def distance_of(self, identifier: str) -> int:
        """Hop distance from the center to the given view node."""
        return dict(self.distances)[identifier]

    def neighbors_of(self, identifier: str) -> FrozenSet[str]:
        """Neighbors of the given view node *within the view*."""
        result = set()
        for edge in self.edges:
            if identifier in edge:
                (other,) = set(edge) - {identifier}
                result.add(other)
        return frozenset(result)

    def center_label(self) -> str:
        """The label of the center node."""
        return self.label_of(self.center)

    def center_certificates(self) -> Tuple[str, ...]:
        """The certificates of the center node."""
        return self.certificates_of(self.center)

    def size(self) -> int:
        """Number of nodes in the view."""
        return len(self.nodes)


ComputeFunction = Callable[[LocalView], str]


class LocalAlgorithm:
    """Base class for constant-round local algorithms.

    Subclasses implement :meth:`initial_state`, :meth:`round` and
    :meth:`output` (the :class:`~repro.machines.interface.NodeMachine`
    protocol); this base class only fixes the constant round bound.
    """

    def __init__(self, rounds: int) -> None:
        if rounds < 0:
            raise ValueError("the number of rounds must be nonnegative")
        self._rounds = rounds

    def max_rounds(self) -> int:
        return self._rounds

    def initial_state(self, node_input: NodeInput) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError

    def round(
        self, state: Any, received: Sequence[str], round_index: int
    ) -> Tuple[Any, List[str], bool]:  # pragma: no cover - abstract
        raise NotImplementedError

    def output(self, state: Any) -> str:  # pragma: no cover - abstract
        raise NotImplementedError


# ----------------------------------------------------------------------
# Neighborhood gathering
# ----------------------------------------------------------------------
@dataclass
class _GatherState:
    node_input: NodeInput
    # Knowledge tables keyed by identifier.
    labels: Dict[str, str]
    certificates: Dict[str, Tuple[str, ...]]
    distances: Dict[str, int]
    edges: set
    output_label: str = ""


def _encode_knowledge(state: _GatherState) -> str:
    """Serialize a node's current knowledge into a message string."""
    payload = {
        "labels": state.labels,
        "certificates": {k: list(v) for k, v in state.certificates.items()},
        "distances": state.distances,
        "edges": sorted(sorted(edge) for edge in state.edges),
    }
    return json.dumps(payload, sort_keys=True)


def _merge_knowledge(state: _GatherState, message: str) -> None:
    """Merge a neighbor's serialized knowledge into *state* (distances shifted by 1)."""
    if not message:
        return
    payload = json.loads(message)
    for identifier, label in payload["labels"].items():
        state.labels.setdefault(identifier, label)
    for identifier, certs in payload["certificates"].items():
        state.certificates.setdefault(identifier, tuple(certs))
    for identifier, distance in payload["distances"].items():
        shifted = distance + 1
        if identifier not in state.distances or shifted < state.distances[identifier]:
            state.distances[identifier] = shifted
    for edge in payload["edges"]:
        state.edges.add(frozenset(edge))


class NeighborhoodGatherAlgorithm(LocalAlgorithm):
    """Collect the radius-``r`` neighborhood, then apply ``compute`` to the view.

    Parameters
    ----------
    radius:
        The gathering radius ``r``.  The algorithm runs for ``r + 2`` rounds:
        ``r + 1`` communication rounds (so that the full induced subgraph on
        the radius-``r`` ball, including edges between two nodes at distance
        exactly ``r``, becomes known) plus a final local-computation round in
        which nothing is sent.
    compute:
        A function from :class:`LocalView` to the node's output label.
        Returning ``"1"`` means the node accepts.
    name:
        Optional human-readable name, used in reprs and error messages.
    """

    def __init__(self, radius: int, compute: ComputeFunction, name: str = "") -> None:
        super().__init__(rounds=radius + 2)
        if radius < 0:
            raise ValueError("radius must be nonnegative")
        self.radius = radius
        self.compute = compute
        self.name = name or f"gather[{radius}]"

    # NodeMachine protocol -------------------------------------------------
    def initial_state(self, node_input: NodeInput) -> _GatherState:
        identifier = node_input.identifier
        return _GatherState(
            node_input=node_input,
            labels={identifier: node_input.label},
            certificates={identifier: tuple(node_input.certificates)},
            distances={identifier: 0},
            edges=set(),
        )

    def round(
        self, state: _GatherState, received: Sequence[str], round_index: int
    ) -> Tuple[_GatherState, List[str], bool]:
        own_id = state.node_input.identifier
        # Record the edges to direct neighbors as soon as their identity is known.
        for message in received:
            if not message:
                continue
            payload = json.loads(message)
            sender = min(payload["distances"], key=lambda k: payload["distances"][k])
            state.edges.add(frozenset({own_id, sender}))
            _merge_knowledge(state, message)

        if round_index <= self.radius + 1:
            outgoing = _encode_knowledge(state)
            return state, [outgoing] * state.node_input.degree, False

        # Final round: evaluate the predicate on the gathered view.
        view = self._view_of(state)
        state.output_label = self.compute(view)
        return state, ["" for _ in range(state.node_input.degree)], True

    def output(self, state: _GatherState) -> str:
        return state.output_label

    # ----------------------------------------------------------------------
    def _view_of(self, state: _GatherState) -> LocalView:
        in_range = {
            identifier
            for identifier, distance in state.distances.items()
            if distance <= self.radius
        }
        edges = frozenset(edge for edge in state.edges if set(edge) <= in_range)
        return LocalView(
            center=state.node_input.identifier,
            radius=self.radius,
            nodes=frozenset(in_range),
            edges=edges,
            labels=tuple(sorted((i, state.labels[i]) for i in in_range)),
            certificates=tuple(sorted((i, state.certificates.get(i, ())) for i in in_range)),
            distances=tuple(sorted((i, state.distances[i]) for i in in_range)),
        )

    def __repr__(self) -> str:
        return f"NeighborhoodGatherAlgorithm(radius={self.radius}, name={self.name!r})"


def gather_view(
    graph, ids, node, radius: int, certificates: Optional[Sequence[Dict]] = None
) -> LocalView:
    """Directly build the :class:`LocalView` a node would gather (no simulation).

    Useful as an oracle in tests: the view produced by running
    :class:`NeighborhoodGatherAlgorithm` through the simulator must coincide
    with the view constructed centrally here.
    """
    certificates = certificates or []
    ball = graph.ball(node, radius)
    distances = graph.distances_from(node)
    id_of = dict(ids)
    nodes = frozenset(id_of[v] for v in ball)
    edges = frozenset(
        frozenset({id_of[u], id_of[v]})
        for u, v in graph.edge_pairs()
        if u in ball and v in ball
    )
    return LocalView(
        center=id_of[node],
        radius=radius,
        nodes=nodes,
        edges=edges,
        labels=tuple(sorted((id_of[v], graph.label(v)) for v in ball)),
        certificates=tuple(
            sorted((id_of[v], tuple(k.get(v, "") for k in certificates)) for v in ball)
        ),
        distances=tuple(sorted((id_of[v], distances[v]) for v in ball)),
    )
