"""Common interface between the simulator and the two machine layers.

A *node machine* is the per-node program executed by the synchronous
simulator.  Every round it receives the list of messages sent by its
neighbors in the previous round (sorted by ascending identifier order, as in
the paper) and produces one outgoing message per neighbor plus a flag saying
whether it has stopped.  After the execution, the machine's output label is
read off its final state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, List, Protocol, Sequence, Tuple

Node = Hashable


@dataclass(frozen=True)
class NodeInput:
    """The local input available to a node at the start of an execution.

    Attributes
    ----------
    node:
        The node's identity (only used for bookkeeping by the simulator; the
        machine itself must not depend on it).
    label:
        The node's bit-string label ``lambda(u)``.
    identifier:
        The node's identifier ``id(u)``.
    certificates:
        The node's certificate list ``kappa_1(u), ..., kappa_l(u)``.
    degree:
        The number of neighbors.
    """

    node: Node
    label: str
    identifier: str
    certificates: Tuple[str, ...]
    degree: int

    def certificate_list_string(self) -> str:
        """The combined certificate string ``kappa_1(u) # ... # kappa_l(u)``."""
        return "#".join(self.certificates)

    def internal_tape_content(self) -> str:
        """The initial internal tape content ``label # id # certificates``."""
        return f"{self.label}#{self.identifier}#{self.certificate_list_string()}"


class NodeMachine(Protocol):
    """Protocol implemented by both distributed Turing machines and local algorithms."""

    def initial_state(self, node_input: NodeInput) -> Any:
        """The node's state before the first round."""

    def round(
        self, state: Any, received: Sequence[str], round_index: int
    ) -> Tuple[Any, List[str], bool]:
        """Execute one round.

        Parameters
        ----------
        state:
            The node state at the beginning of the round.
        received:
            Messages received from the neighbors, in ascending identifier
            order of the senders (empty strings for silent neighbors).
        round_index:
            The 1-based round number.

        Returns
        -------
        A triple ``(new_state, outgoing_messages, stopped)``.  The outgoing
        messages are addressed to the neighbors in ascending identifier
        order; missing entries default to the empty string.  Once ``stopped``
        is returned true the node keeps silent for the rest of the execution.
        """

    def output(self, state: Any) -> str:
        """The node's output label after the execution has terminated."""

    def max_rounds(self) -> int:
        """An upper bound on the number of rounds the machine needs."""


def verdict_of(output_label: str) -> bool:
    """Acceptance convention of the paper: a node accepts iff its output is ``"1"``."""
    return output_label == "1"
