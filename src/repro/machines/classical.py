"""Classical (single-computer) Turing machines -- the single-node special case.

The paper's whole program rests on the observation that centralized computing
is the restriction of the LOCAL model to single-node graphs (Section 2.1,
"Connection to standard complexity classes").  To exercise that restriction we
need the centralized machine model itself: a standard one-tape Turing machine
with polynomially bounded running time.  This module provides it, together
with space-time diagrams -- the central object of Fagin's proof (Theorem 12),
which :mod:`repro.fagin.space_time` encodes as relations over string
structures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

__all__ = [
    "ClassicalTuringMachine",
    "MachineRun",
    "SpaceTimeDiagram",
    "all_ones_machine",
    "even_length_machine",
    "contains_zero_machine",
]

BLANK = "_"
LEFT_END = ">"

Transition = Tuple[str, str, int]
"""``(new_state, written_symbol, head_move)`` with the move in ``{-1, 0, +1}``."""


@dataclass(frozen=True)
class SpaceTimeDiagram:
    """The full space-time diagram of a halting run.

    ``rows[t]`` is the tape content at time ``t`` (padded with blanks to the
    diagram's width), ``states[t]`` the machine state at time ``t`` and
    ``heads[t]`` the head position at time ``t``.  The diagram has
    ``steps + 1`` rows: row 0 is the initial configuration.
    """

    rows: Tuple[str, ...]
    states: Tuple[str, ...]
    heads: Tuple[int, ...]

    @property
    def steps(self) -> int:
        """Number of computation steps taken."""
        return len(self.rows) - 1

    @property
    def width(self) -> int:
        """Number of tape cells represented in every row (the space usage)."""
        return len(self.rows[0]) if self.rows else 0

    def cell(self, time: int, position: int) -> str:
        """The tape symbol at the given time and position."""
        return self.rows[time][position]


@dataclass(frozen=True)
class MachineRun:
    """The outcome of running a classical Turing machine on an input string."""

    accepted: bool
    steps: int
    space: int
    diagram: SpaceTimeDiagram


class ClassicalTuringMachine:
    """A deterministic one-tape Turing machine over the alphabet ``{0, 1}``.

    Parameters
    ----------
    states:
        The state set; must contain *initial_state*, ``accept`` and ``reject``.
    transitions:
        Mapping from ``(state, symbol)`` to ``(new_state, written_symbol,
        move)``.  Symbols are ``0``, ``1``, the blank ``_`` and the left-end
        marker ``>`` (which may not be overwritten).  Missing entries send the
        machine to the rejecting state.
    initial_state:
        The starting state (default ``start``).
    """

    def __init__(
        self,
        states: Sequence[str],
        transitions: Mapping[Tuple[str, str], Transition],
        initial_state: str = "start",
        accept_state: str = "accept",
        reject_state: str = "reject",
    ) -> None:
        state_set = set(states)
        for required in (initial_state, accept_state, reject_state):
            if required not in state_set:
                raise ValueError(f"the state set must contain {required!r}")
        for (state, symbol), (new_state, written, move) in transitions.items():
            if state not in state_set or new_state not in state_set:
                raise ValueError("transition refers to an unknown state")
            if symbol not in {"0", "1", BLANK, LEFT_END}:
                raise ValueError(f"unknown tape symbol {symbol!r}")
            if written not in {"0", "1", BLANK, LEFT_END}:
                raise ValueError(f"unknown written symbol {written!r}")
            if symbol == LEFT_END and written != LEFT_END:
                raise ValueError("the left-end marker may not be overwritten")
            if move not in (-1, 0, 1):
                raise ValueError("head moves must be -1, 0 or +1")
        self.states = frozenset(state_set)
        self.transitions = dict(transitions)
        self.initial_state = initial_state
        self.accept_state = accept_state
        self.reject_state = reject_state

    # ------------------------------------------------------------------
    def run(self, word: str, max_steps: int = 10_000) -> MachineRun:
        """Run the machine on ``> word`` and record the full space-time diagram.

        Raises ``RuntimeError`` if the machine does not halt within
        *max_steps* steps -- the polynomial-time machines of the paper always
        halt well before any reasonable bound.
        """
        if not set(word) <= {"0", "1"}:
            raise ValueError(f"inputs must be bit strings, got {word!r}")
        tape: List[str] = [LEFT_END] + list(word)
        state = self.initial_state
        head = 0

        snapshots: List[Tuple[str, str, int]] = [("".join(tape), state, head)]
        steps = 0
        while state not in (self.accept_state, self.reject_state):
            if steps >= max_steps:
                raise RuntimeError(f"machine did not halt within {max_steps} steps")
            symbol = tape[head] if head < len(tape) else BLANK
            transition = self.transitions.get((state, symbol))
            if transition is None:
                state = self.reject_state
                snapshots.append(("".join(tape), state, head))
                steps += 1
                break
            new_state, written, move = transition
            while head >= len(tape):
                tape.append(BLANK)
            tape[head] = written
            head = max(0, head + move)
            state = new_state
            steps += 1
            snapshots.append(("".join(tape), state, head))

        width = max(len(content) for content, _, _ in snapshots)
        width = max(width, max(h for _, _, h in snapshots) + 1)
        rows = tuple(content.ljust(width, BLANK) for content, _, _ in snapshots)
        diagram = SpaceTimeDiagram(
            rows=rows,
            states=tuple(s for _, s, _ in snapshots),
            heads=tuple(h for _, _, h in snapshots),
        )
        return MachineRun(
            accepted=(state == self.accept_state),
            steps=steps,
            space=width,
            diagram=diagram,
        )

    def accepts(self, word: str, max_steps: int = 10_000) -> bool:
        """Whether the machine accepts *word*."""
        return self.run(word, max_steps).accepted

    def runs_in_polynomial_time(
        self, words: Sequence[str], degree: int = 1, coefficient: int = 4, constant: int = 4
    ) -> bool:
        """Empirically check the step bound ``coefficient * n^degree + constant`` on samples."""
        for word in words:
            bound = coefficient * (len(word) ** degree) + constant
            if self.run(word).steps > bound:
                return False
        return True


# ----------------------------------------------------------------------
# Example machines (used by the Fagin and Cook-Levin tests)
# ----------------------------------------------------------------------
def all_ones_machine() -> ClassicalTuringMachine:
    """Accepts exactly the (possibly empty) strings consisting of ``1`` characters.

    This is the single-node restriction of ``all-selected``: a single
    left-to-right scan.
    """
    transitions: Dict[Tuple[str, str], Transition] = {
        ("start", LEFT_END): ("scan", LEFT_END, 1),
        ("scan", "1"): ("scan", "1", 1),
        ("scan", BLANK): ("accept", BLANK, 0),
        ("scan", "0"): ("reject", "0", 0),
    }
    return ClassicalTuringMachine(
        states=["start", "scan", "accept", "reject"], transitions=transitions
    )


def even_length_machine() -> ClassicalTuringMachine:
    """Accepts exactly the strings of even length (a two-state parity scan)."""
    transitions: Dict[Tuple[str, str], Transition] = {
        ("start", LEFT_END): ("even", LEFT_END, 1),
        ("even", "0"): ("odd", "0", 1),
        ("even", "1"): ("odd", "1", 1),
        ("odd", "0"): ("even", "0", 1),
        ("odd", "1"): ("even", "1", 1),
        ("even", BLANK): ("accept", BLANK, 0),
        ("odd", BLANK): ("reject", BLANK, 0),
    }
    return ClassicalTuringMachine(
        states=["start", "even", "odd", "accept", "reject"], transitions=transitions
    )


def contains_zero_machine() -> ClassicalTuringMachine:
    """Accepts exactly the strings containing at least one ``0``.

    This is the single-node restriction of ``not-all-selected``, the property
    the paper uses to separate the nondeterministic classes (Section 1.3).
    """
    transitions: Dict[Tuple[str, str], Transition] = {
        ("start", LEFT_END): ("scan", LEFT_END, 1),
        ("scan", "1"): ("scan", "1", 1),
        ("scan", "0"): ("accept", "0", 0),
        ("scan", BLANK): ("reject", BLANK, 0),
    }
    return ClassicalTuringMachine(
        states=["start", "scan", "accept", "reject"], transitions=transitions
    )
