"""Resource accounting for locally polynomial machines (Section 4).

A locally polynomial machine must run in *constant round time* and
*polynomial step time*.  The simulator already reports round counts and
message statistics; this module packages the checks the test-suite uses to
confirm that the library's machines and reductions respect the resource
bounds that define LP and NLP:

* :func:`round_time_is_constant` -- the number of rounds used does not grow
  with the size of the input graph (measured over a graph family).
* :func:`messages_polynomially_bounded` -- the longest message sent by any
  node is bounded by a polynomial in the information content of its
  neighborhood (a proxy for polynomial step time: a machine cannot write a
  message longer than its number of computation steps).
* :func:`turing_steps_polynomially_bounded` -- for low-level distributed
  Turing machines, the actual per-round step counts recorded by the
  simulator are polynomially bounded in the input sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Sequence

from repro.graphs.certificates import Polynomial, neighborhood_information
from repro.graphs.identifiers import small_identifier_assignment
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.machines.interface import NodeMachine
from repro.machines.simulator import ExecutionResult, execute


@dataclass
class ResourceReport:
    """Observed resource usage of a machine over a family of graphs."""

    rounds_used: List[int]
    max_message_lengths: List[int]
    neighborhood_bounds: List[int]

    def constant_rounds(self) -> bool:
        """Whether the round count is the same on every graph of the family."""
        return len(set(self.rounds_used)) <= 1

    def messages_within(self, bound: Polynomial) -> bool:
        """Whether every observed message respects the polynomial bound."""
        return all(
            observed <= bound(info)
            for observed, info in zip(self.max_message_lengths, self.neighborhood_bounds)
        )


def measure_resources(
    machine: NodeMachine,
    graphs: Sequence[LabeledGraph],
    radius: int = 1,
    identifier_radius: int = 2,
    certificates_for: Optional[Callable[[LabeledGraph], Sequence[Mapping[Node, str]]]] = None,
) -> ResourceReport:
    """Run *machine* on every graph and collect the resource observations."""
    rounds_used: List[int] = []
    max_message_lengths: List[int] = []
    neighborhood_bounds: List[int] = []
    for graph in graphs:
        ids = small_identifier_assignment(graph, identifier_radius)
        certificates = certificates_for(graph) if certificates_for else None
        result: ExecutionResult = execute(machine, graph, ids, certificates)
        rounds_used.append(result.rounds_used)
        max_message_lengths.append(result.max_message_length)
        neighborhood_bounds.append(
            max(neighborhood_information(graph, ids, u, radius) for u in graph.nodes)
        )
    return ResourceReport(
        rounds_used=rounds_used,
        max_message_lengths=max_message_lengths,
        neighborhood_bounds=neighborhood_bounds,
    )


def round_time_is_constant(machine: NodeMachine, graphs: Sequence[LabeledGraph]) -> bool:
    """Whether the machine uses the same number of rounds on all given graphs."""
    return measure_resources(machine, graphs).constant_rounds()


def messages_polynomially_bounded(
    machine: NodeMachine,
    graphs: Sequence[LabeledGraph],
    bound: Polynomial,
    radius: int = 1,
) -> bool:
    """Whether the longest message is bounded by ``bound`` of the neighborhood information."""
    return measure_resources(machine, graphs, radius=radius).messages_within(bound)


def turing_steps_polynomially_bounded(
    machine,
    graph: LabeledGraph,
    bound: Polynomial,
) -> bool:
    """Whether a low-level Turing machine's recorded step counts respect *bound*.

    The bound is evaluated on the length of the node's initial tape contents
    in the corresponding round, mirroring the paper's definition of step time.
    """
    from repro.machines.interface import NodeInput

    ids = small_identifier_assignment(graph, 1)
    # Re-run while keeping references to the per-node states to inspect counters.
    states = {}
    original_initial_state = machine.initial_state

    def capturing_initial_state(node_input: NodeInput):
        state = original_initial_state(node_input)
        states[node_input.node] = (state, node_input)
        return state

    machine.initial_state = capturing_initial_state  # type: ignore[assignment]
    try:
        execute(machine, graph, ids)
    finally:
        machine.initial_state = original_initial_state  # type: ignore[assignment]

    for node, (state, node_input) in states.items():
        input_size = len(node_input.internal_tape_content()) + node_input.degree
        for steps in state.steps_per_round:
            if steps > bound(input_size + sum(state.steps_per_round)):
                return False
    return True
