"""Distributed Turing machines and the LOCAL-model simulator (Section 4, Fig. 8).

Two layers are provided:

* :mod:`repro.machines.turing` -- a faithful low-level implementation of the
  paper's distributed Turing machines: a finite state set, a transition
  function over the tape alphabet ``{⊢, □, #, 0, 1}``, and three tapes
  (receiving, internal, sending) per node.
* :mod:`repro.machines.local_algorithm` -- a practical layer of constant-round
  local algorithms (most constructions in the paper are of the form "gather
  the r-neighborhood, then compute"), with round- and step-cost accounting so
  the LP/NLP resource bounds remain checkable.

Both layers plug into the same synchronous simulator
(:mod:`repro.machines.simulator`), which implements the three communication
phases of Section 4 and acceptance by unanimity.
"""

from repro.machines.interface import NodeInput, NodeMachine
from repro.machines.turing import DistributedTuringMachine, TuringTransition, BLANK, LEFT_END, SEPARATOR
from repro.machines.local_algorithm import (
    LocalAlgorithm,
    LocalView,
    NeighborhoodGatherAlgorithm,
    gather_view,
)
from repro.machines.rules import (
    PairwiseRule,
    StarRule,
    StarView,
    attach_rule,
    rule_of,
    star_view_of,
)
from repro.machines.simulator import ExecutionResult, execute, accepts, result_graph
from repro.machines import builtin

__all__ = [
    "PairwiseRule",
    "StarRule",
    "StarView",
    "attach_rule",
    "rule_of",
    "star_view_of",
    "NodeInput",
    "NodeMachine",
    "DistributedTuringMachine",
    "TuringTransition",
    "BLANK",
    "LEFT_END",
    "SEPARATOR",
    "LocalAlgorithm",
    "LocalView",
    "NeighborhoodGatherAlgorithm",
    "gather_view",
    "ExecutionResult",
    "execute",
    "accepts",
    "result_graph",
    "builtin",
]
