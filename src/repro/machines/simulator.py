"""The synchronous execution engine of the LOCAL model (Section 4).

The simulator drives any :class:`~repro.machines.interface.NodeMachine` over a
labeled graph: in every round each node receives the messages its neighbors
sent in the previous round (sorted by the senders' identifiers, as in the
paper), computes, and emits new messages.  The execution terminates when all
nodes have stopped or the machine's round bound is reached.

The result of an execution is the relabeled graph ``M(G, id, certs)`` together
with per-node verdicts, message statistics and step counts, so that the
resource constraints of locally polynomial machines (constant round time,
polynomial step time, polynomially bounded messages) can be checked by tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.graphs.certificates import CertificateList
from repro.graphs.identifiers import identifier_key, is_locally_unique
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.machines.interface import NodeInput, NodeMachine, verdict_of


@dataclass
class ExecutionResult:
    """The outcome of executing a node machine on a graph."""

    graph: LabeledGraph
    outputs: Dict[Node, str]
    rounds_used: int
    message_volume: int
    max_message_length: int
    messages_per_round: List[int] = field(default_factory=list)

    def verdicts(self) -> Dict[Node, bool]:
        """Per-node accept/reject verdicts (accept iff the output label is ``"1"``)."""
        return {u: verdict_of(label) for u, label in self.outputs.items()}

    def accepts(self) -> bool:
        """Acceptance by unanimity: every node must accept."""
        return all(self.verdicts().values())

    def rejects(self) -> bool:
        """At least one node rejects."""
        return not self.accepts()

    def result_graph(self) -> LabeledGraph:
        """The graph ``M(G, id, certs)``: same topology, output labels."""
        cleaned = {u: "".join(ch for ch in label if ch in "01") for u, label in self.outputs.items()}
        return self.graph.relabel(cleaned)


def _neighbor_order(graph: LabeledGraph, ids: Mapping[Node, str], node: Node) -> List[Node]:
    """The node's neighbors sorted by ascending identifier order."""
    return sorted(graph.neighbors(node), key=lambda v: identifier_key(ids[v]))


def execute(
    machine: NodeMachine,
    graph: LabeledGraph,
    ids: Mapping[Node, str],
    certificates: Optional[CertificateList | Sequence[Mapping[Node, str]]] = None,
    check_local_uniqueness_radius: Optional[int] = None,
    max_rounds: Optional[int] = None,
) -> ExecutionResult:
    """Execute *machine* on *graph* under the given identifier assignment.

    Parameters
    ----------
    machine:
        Any object implementing the node-machine protocol.
    graph, ids:
        The input graph and its identifier assignment.
    certificates:
        A :class:`CertificateList` or sequence of certificate assignments
        (``kappa_1, ..., kappa_l``); defaults to none.
    check_local_uniqueness_radius:
        If given, raise ``ValueError`` unless *ids* is locally unique for this
        radius (the paper requires at least 1-local uniqueness).
    max_rounds:
        Override for the machine's own round bound (mainly for tests).
    """
    if check_local_uniqueness_radius is not None:
        if not is_locally_unique(graph, ids, check_local_uniqueness_radius):
            raise ValueError(
                f"identifier assignment is not {check_local_uniqueness_radius}-locally unique"
            )

    if certificates is None:
        cert_list = CertificateList()
    elif isinstance(certificates, CertificateList):
        cert_list = certificates
    else:
        cert_list = CertificateList(list(certificates))

    rounds_bound = max_rounds if max_rounds is not None else machine.max_rounds()

    # Initialize per-node state and the neighbor orderings.
    states: Dict[Node, object] = {}
    stopped: Dict[Node, bool] = {}
    neighbor_order: Dict[Node, List[Node]] = {}
    for u in graph.nodes:
        node_input = NodeInput(
            node=u,
            label=graph.label(u),
            identifier=ids[u],
            certificates=tuple(
                cert_list.certificate(i, u) for i in range(len(cert_list))
            ),
            degree=graph.degree(u),
        )
        states[u] = machine.initial_state(node_input)
        stopped[u] = False
        neighbor_order[u] = _neighbor_order(graph, ids, u)

    # outbox[u][v] = message from u to v computed in the previous round.
    outbox: Dict[Node, Dict[Node, str]] = {u: {v: "" for v in graph.neighbors(u)} for u in graph.nodes}

    message_volume = 0
    max_message_length = 0
    messages_per_round: List[int] = []
    rounds_used = 0

    for round_index in range(1, rounds_bound + 1):
        if all(stopped.values()):
            break
        rounds_used = round_index
        round_volume = 0
        new_outbox: Dict[Node, Dict[Node, str]] = {}
        for u in graph.nodes:
            received = [outbox[v][u] for v in neighbor_order[u]]
            state, outgoing, has_stopped = machine.round(states[u], received, round_index)
            states[u] = state
            stopped[u] = has_stopped
            targets = neighbor_order[u]
            messages = {v: "" for v in graph.neighbors(u)}
            for index, v in enumerate(targets):
                text = outgoing[index] if index < len(outgoing) else ""
                messages[v] = text
                round_volume += len(text)
                max_message_length = max(max_message_length, len(text))
            new_outbox[u] = messages
        outbox = new_outbox
        message_volume += round_volume
        messages_per_round.append(round_volume)

    outputs = {u: machine.output(states[u]) for u in graph.nodes}
    return ExecutionResult(
        graph=graph,
        outputs=outputs,
        rounds_used=rounds_used,
        message_volume=message_volume,
        max_message_length=max_message_length,
        messages_per_round=messages_per_round,
    )


def accepts(
    machine: NodeMachine,
    graph: LabeledGraph,
    ids: Mapping[Node, str],
    certificates: Optional[CertificateList | Sequence[Mapping[Node, str]]] = None,
) -> bool:
    """Convenience wrapper: whether ``M(G, id, certs) ≡ accept``."""
    return execute(machine, graph, ids, certificates).accepts()


def result_graph(
    machine: NodeMachine,
    graph: LabeledGraph,
    ids: Mapping[Node, str],
    certificates: Optional[CertificateList | Sequence[Mapping[Node, str]]] = None,
) -> LabeledGraph:
    """Convenience wrapper: the relabeled graph computed by the machine."""
    return execute(machine, graph, ids, certificates).result_graph()
