"""Declarative local rules: the compilable fragment of gather machines.

Most verifiers in the paper are radius-``<=1`` *star predicates*: a node's
verdict depends only on its own label, degree and certificate plus the
``(identifier, label, certificate)`` triples of its direct neighbors --
never on edges among the neighbors or anything further out.  A machine that
says so explicitly (by carrying a rule object in its ``local_rule``
attribute) can be *compiled*: the engine's compiled core
(:mod:`repro.engine.compiled`) evaluates the rule over integer code arrays
with memoized lookup tables instead of rebuilding a
:class:`~repro.machines.local_algorithm.LocalView` per cache miss.

Two rule shapes are provided:

* :class:`PairwiseRule` -- ``verdict(u) = own_ok(u) AND pair_ok(u, v)`` for
  every neighbor ``v``.  The compiled core turns this into per-node own
  tables and a shared pair table indexed by certificate codes (the
  table-driven fast path: coloring-style verifiers become a handful of
  integer lookups per node).
* :class:`StarRule` -- an arbitrary predicate over the :class:`StarView`.
  Evaluated once per distinct certificate restriction and memoized; the
  win over the generic path is skipping the LocalView reconstruction.

A rule must be *verdict-equivalent* to its machine's compute function
whenever every node carries a certificate at the rule's level; the
randomized equivalence suite (``tests/test_compiled.py``) pits every ruled
builtin against the uncompiled machine and the exhaustive oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.machines.local_algorithm import LocalView

#: One neighbor as a rule sees it: ``(identifier, label, certificate)``.
#: The certificate is the string at the rule's level, or ``None`` when the
#: game has no certificates at that level.
NeighborTriple = Tuple[str, str, Optional[str]]


@dataclass(frozen=True)
class StarView:
    """What a radius-1 star predicate may read: the center and its neighbors.

    Attributes
    ----------
    identifier, label, degree:
        The center's identifier, label and number of neighbors.
    certificate:
        The center's certificate at the rule's level (``None`` when the
        game carries no certificate level for the rule to read).
    neighbors:
        ``(identifier, label, certificate)`` per neighbor, sorted by
        identifier so rule evaluation is deterministic.
    """

    identifier: str
    label: str
    degree: int
    certificate: Optional[str]
    neighbors: Tuple[NeighborTriple, ...]

    def certificates_by_id(self) -> dict:
        """Neighbor certificates keyed by identifier (helper for tree rules)."""
        return {identifier: certificate for identifier, _, certificate in self.neighbors}


@dataclass(frozen=True)
class PairwiseRule:
    """``own_ok`` on the center plus ``pair_ok`` against every neighbor.

    ``own_ok(label, degree, certificate)`` gates the node itself;
    ``pair_ok(own_label, own_certificate, neighbor_label,
    neighbor_certificate)`` must hold for every neighbor (``None`` skips the
    neighbor check entirely -- e.g. degree-parity rules).  ``level`` is the
    certificate level the rule reads; ``radius`` must equal the machine's
    gathering radius.
    """

    own_ok: Callable[[str, int, Optional[str]], bool]
    pair_ok: Optional[Callable[[str, Optional[str], str, Optional[str]], bool]] = None
    level: int = 0
    radius: int = 1
    #: Whether the rule actually reads certificates.  ``False`` (constant,
    #: label and degree rules) lets the compiled core apply the rule even in
    #: games with no certificate level to read; the callables then receive
    #: ``None`` certificates and must ignore them.
    needs_certificate: bool = True

    def accepts(self, star: StarView) -> bool:
        """Reference evaluation on a :class:`StarView` (the compiled core uses tables)."""
        if not self.own_ok(star.label, star.degree, star.certificate):
            return False
        if self.pair_ok is None:
            return True
        own_label, own_certificate = star.label, star.certificate
        return all(
            self.pair_ok(own_label, own_certificate, neighbor_label, neighbor_certificate)
            for _, neighbor_label, neighbor_certificate in star.neighbors
        )

    # ------------------------------------------------------------------
    # Mask-table emission (the bitset kernel's primitives)
    # ------------------------------------------------------------------
    def own_code_mask(self, label: str, degree: int, alphabet) -> int:
        """``own_ok`` over a whole code alphabet, as a packed-int bitmask.

        Bit ``c`` is set iff ``own_ok(label, degree, alphabet[c])`` holds, so
        the compiled bitset tier (:mod:`repro.engine.bitset`) answers "which
        certificates could this node even carry?" with one integer instead of
        one predicate call per candidate.
        """
        own_ok = self.own_ok
        mask = 0
        for code, certificate in enumerate(alphabet):
            if own_ok(label, degree, certificate):
                mask |= 1 << code
        return mask

    def mutual_pair_mask(
        self, label_a: str, label_b: str, certificate_b: Optional[str], alphabet
    ) -> int:
        """The mutually-acceptable certificates of an ``a``--``b`` edge, as a bitmask.

        Bit ``c`` is set iff a node labeled *label_a* carrying ``alphabet[c]``
        and a neighbor labeled *label_b* carrying *certificate_b* accept each
        other in **both** orientations of ``pair_ok``.  ``pair_ok is None``
        yields the all-ones mask (no neighbor constraint).
        """
        pair_ok = self.pair_ok
        if pair_ok is None:
            return (1 << len(alphabet)) - 1
        mask = 0
        for code, certificate in enumerate(alphabet):
            if pair_ok(label_a, certificate, label_b, certificate_b) and pair_ok(
                label_b, certificate_b, label_a, certificate
            ):
                mask |= 1 << code
        return mask


@dataclass(frozen=True)
class StarRule:
    """An arbitrary star predicate (tree-field verifiers and the like)."""

    predicate: Callable[[StarView], bool]
    level: int = 0
    radius: int = 1
    #: Star predicates normally read certificates; see :class:`PairwiseRule`.
    needs_certificate: bool = True

    def accepts(self, star: StarView) -> bool:
        return self.predicate(star)


LocalRule = (PairwiseRule, StarRule)


def star_view_of(view: LocalView, level: int = 0) -> StarView:
    """Project a full :class:`LocalView` down to the star a rule may read.

    Used by machines built from a star predicate so that the simulated and
    compiled evaluations read exactly the same information.
    """
    labels = dict(view.labels)
    certificates = dict(view.certificates)

    def certificate_at(identifier: str) -> Optional[str]:
        certs = certificates[identifier]
        return certs[level] if level < len(certs) else None

    center = view.center
    neighbor_ids = sorted(view.neighbors_of(center))
    return StarView(
        identifier=center,
        label=labels[center],
        degree=len(neighbor_ids),
        certificate=certificate_at(center),
        neighbors=tuple(
            (identifier, labels[identifier], certificate_at(identifier))
            for identifier in neighbor_ids
        ),
    )


def attach_rule(machine, rule) -> object:
    """Attach *rule* to *machine* (returns the machine, for factory chaining).

    The rule rides along as the ``local_rule`` attribute; the compiled core
    checks it with :func:`rule_of`.  Attaching a rule is a *promise* that
    the rule is verdict-equivalent to the machine's own computation.
    """
    machine.local_rule = rule
    return machine


def rule_of(machine) -> Optional[object]:
    """The machine's declared local rule, if any."""
    rule = getattr(machine, "local_rule", None)
    if rule is not None and not isinstance(rule, LocalRule):
        return None
    return rule
