"""Canonical ball memoization: one verdict per isomorphic neighborhood.

The compiled core memoizes node verdicts *per instance*: two nodes of the
same graph -- or of two different graphs in one sweep -- whose dependency
balls look exactly alike still pay for two evaluations.  On the expensive
evaluation paths (the generic direct-view path and the ball-subgraph
simulation fallback, i.e. machines without a compilable rule) that is the
dominant cold-path cost: a sweep over a graph family solves the same local
neighborhood over and over.

This module shares those verdicts under a **canonical ball signature**.
The engine computes a node's verdict from nothing but

* the machine (structurally fingerprinted, so equal code shares),
* the evaluation mode (``direct`` flag) and dependency radius,
* the induced ball: labels, identifiers and internal edges, all expressed
  in *ball-local* positions, plus the center's position,
* the certificate restriction to the ball at every quantifier level,

so a SHA-256 over exactly those inputs is a sound cross-node, cross-graph,
cross-process verdict key: equal keys mean the engine would perform the
identical computation.  (Identifiers enter the signature verbatim --
machines may read identifier *values* -- so sharing happens between balls
that are literally identical after relabeling to ball positions, which is
exactly the repetition graph families and locally-unique identifier
schemes produce.)

:class:`CanonicalVerdictCache` holds the shared table.  It is attached to
compiled instances (one cache per sweep shard, per service compute tier,
...), consulted on per-node memo misses of the eligible paths, and
optionally backed by the persistent verdict store's node-verdict table so
isomorphic work is skipped across sessions too.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Dict, List, Optional, Tuple

#: Version tag folded into every signature: bump when the payload changes.
_SIGNATURE_VERSION = b"ball-v1\x00"


def machine_token(machine) -> str:
    """The structural fingerprint of *machine* (imported lazily).

    :mod:`repro.sweep.fingerprint` imports graph/hierarchy modules only, but
    the import is kept out of module scope so the engine package never
    drags the sweep package in at import time.
    """
    from repro.sweep.fingerprint import machine_fingerprint

    return machine_fingerprint(machine)


def node_ball_signature(instance, u: int) -> bytes:
    """The static canonical signature of node *u*'s dependency ball.

    Everything certificate-independent that the verdict computation reads:
    machine fingerprint, evaluation mode, radius, and the ball expressed in
    ball-local positions (identifiers, labels, internal edges, center).
    The dynamic part -- the certificate restriction -- is appended by
    :func:`verdict_key`.
    """
    token = getattr(instance, "_machine_token", None)
    if token is None:
        token = machine_token(instance.machine)
        instance._machine_token = token
    ball = instance.balls[u]
    local = {v: i for i, v in enumerate(ball)}
    ids_list = instance.ids_list
    labels = instance.labels
    indptr, indices = instance.adj_indptr, instance.adj_indices
    edges: List[Tuple[int, int]] = []
    for i, v in enumerate(ball):
        for w in indices[indptr[v] : indptr[v + 1]]:
            j = local.get(w)
            if j is not None and j > i:
                edges.append((i, j))
    payload = [
        _SIGNATURE_VERSION,
        token.encode("ascii"),
        b"direct" if instance.direct else b"simulate",
        str(instance.radius).encode("ascii"),
        str(local[u]).encode("ascii"),
        repr([(ids_list[v], labels[v]) for v in ball]).encode("utf-8", "backslashreplace"),
        repr(sorted(edges)).encode("ascii"),
    ]
    digest = hashlib.sha256()
    for piece in payload:
        digest.update(piece)
        digest.update(b"\x00")
    return digest.digest()


def verdict_key(signature: bytes, levels: int, certificates: tuple) -> str:
    """The canonical store key of one ``(ball, certificate restriction)``.

    *certificates* is one tuple per quantifier level, each holding the
    ball's certificate strings in ball order.
    """
    digest = hashlib.sha256(signature)
    digest.update(repr((levels, certificates)).encode("utf-8", "backslashreplace"))
    return "ball:" + digest.hexdigest()


class CanonicalVerdictCache:
    """A verdict table shared across nodes, instances and (optionally) sessions.

    The in-memory dict answers first; on a miss, an attached
    :class:`~repro.sweep.store.VerdictStore` is consulted through its
    node-verdict table and hits are promoted.  Fresh verdicts accumulate in
    a dirty list so callers can persist them in one bulk write
    (:meth:`flush`) or ship them across process boundaries
    (:meth:`drain_records` -- sweep workers return them to the parent).

    Not thread-safe by itself: every current holder already serializes
    evaluation (sweep shards are single-threaded, the service compute tier
    runs under its batch lock).
    """

    __slots__ = (
        "data",
        "store",
        "max_entries",
        "hits",
        "misses",
        "store_hits",
        "store_errors",
        "puts",
        "evictions",
        "_dirty",
    )

    def __init__(self, store=None, max_entries: Optional[int] = None) -> None:
        self.data: Dict[str, bool] = {}
        self.store = store
        #: Bound on the in-memory table (``None`` = unbounded, the right
        #: choice for one sweep; long-lived holders like the service
        #: compute tier must pass a cap).  When full, the oldest
        #: (insertion-ordered) half is dropped -- store-backed entries are
        #: re-promotable, so eviction only costs a re-read.
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.store_hits = 0
        self.store_errors = 0
        self.puts = 0
        self.evictions = 0
        self._dirty: List[Tuple[str, bool]] = []

    def get(self, key: str) -> Optional[bool]:
        verdict = self.data.get(key)
        if verdict is not None:
            self.hits += 1
            return verdict
        if self.store is not None:
            # A sick store (disk trouble, injected fault) must degrade to a
            # miss, not abort the evaluation consulting this cache: the
            # engine can always recompute what the store would have served.
            try:
                stored = self.store.get_node(key)
            except Exception:  # noqa: BLE001 -- store reads are best-effort
                self.store_errors += 1
                stored = None
            if stored is not None:
                self.store_hits += 1
                self.data[key] = stored
                return stored
        self.misses += 1
        return None

    def put(self, key: str, verdict: bool) -> None:
        verdict = bool(verdict)
        if key not in self.data:
            cap = self.max_entries
            if cap is not None and len(self.data) >= cap:
                keep = len(self.data) // 2
                dropped = len(self.data) - keep
                self.data = dict(
                    itertools.islice(self.data.items(), dropped, None)
                )
                self.evictions += dropped
            self.puts += 1
            self._dirty.append((key, verdict))
        self.data[key] = verdict

    def drain_records(self) -> List[Tuple[str, bool]]:
        """Fresh ``(key, verdict)`` records since the last drain/flush."""
        records, self._dirty = self._dirty, []
        return records

    def merge_records(self, records) -> None:
        """Adopt records drained from another cache (a worker process)."""
        for key, verdict in records:
            self.put(key, verdict)

    def flush(self) -> int:
        """Persist the dirty records into the attached store (if any)."""
        records = self.drain_records()
        if self.store is not None and records:
            self.store.put_node_many(records)
        return len(records)

    def hit_rate(self) -> float:
        """Fraction of lookups answered from memory or the store."""
        answered = self.hits + self.store_hits
        total = answered + self.misses
        return answered / total if total else 0.0

    def info(self) -> Dict[str, object]:
        return {
            "entries": len(self.data),
            "hits": self.hits,
            "store_hits": self.store_hits,
            "store_errors": self.store_errors,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate(), 4),
        }

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return (
            f"CanonicalVerdictCache(entries={len(self.data)}, hits={self.hits}, "
            f"store_hits={self.store_hits}, misses={self.misses})"
        )
