"""Bitset leaf kernels: per-node acceptance tables as packed-int masks.

The compiled core (PR 3) evaluates one node under one candidate certificate
code at a time: the innermost search assigns a code, then asks the per-node
memo (or the table-driven rule kernel) for a verdict, candidate by
candidate.  This module vectorizes that loop.  For a machine carrying a
declarative :mod:`repro.machines.rules` rule, the acceptance of *every*
code of the interned alphabet is packed into one Python integer -- bit ``c``
answers "does this node accept carrying ``alphabet[c]``?" -- so the engine
prunes whole code-blocks with a few ``&`` operations before it descends:

* **Pairwise rules** decompose completely.  ``own_masks[u]`` packs
  ``own_ok`` over the alphabet; :meth:`BitsetKernel.pair_mask` packs the
  *mutually* acceptable codes of an edge given one endpoint's code (both
  orientations of ``pair_ok`` at once).  The viable codes of a search
  position are then ``own & candidates & AND(pair masks of assigned
  neighbors)`` -- one table lookup and one intersection per neighbor, no
  per-candidate predicate calls, no packed-key maintenance and no memo
  traffic at all.
* **Star rules** do not decompose over edges, so the kernel memoizes
  *slot masks* instead: for a node ``u`` whose dependency ball is fully
  assigned except for one slot, the acceptance of every candidate code at
  that slot is evaluated once (through the rule predicate on a
  :class:`~repro.machines.rules.StarView`) and cached as a bitmask under
  the ball's slot-reduced packed restriction key.  Revisiting the same
  neighborhood configuration -- the common case in backtracking search --
  is a dict lookup plus an ``&``.

Masks are valid for one ``(generation, alphabet length)`` snapshot of the
compiled instance; the engine refreshes the kernel (cheap compare) before
each innermost search, so alphabet growth or a packing rebase can never
serve a stale mask.  The tier is exercised against the non-bitset compiled
engine, the PR-1 engine and the exhaustive oracle by ``tests/test_bitset.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.machines.rules import PairwiseRule

#: Bound on the total number of cached star slot masks per kernel.  Each
#: entry is two ints; the cap only matters for pathological sweeps that
#: enumerate millions of distinct neighborhood configurations.
STAR_TABLE_CAP = 1 << 18


class BitsetKernel:
    """Packed-int acceptance masks for one compiled instance's rule.

    A kernel is a *snapshot*: it is built against the instance's current
    certificate alphabet and packing generation, and must be discarded
    (``fresh()`` is False) once either moves.  The engine obtains kernels
    through :meth:`repro.engine.compiled.CompiledInstance.bitset_kernel`,
    which rebuilds on staleness.
    """

    __slots__ = (
        "instance",
        "rule",
        "pairwise",
        "generation",
        "alphabet_len",
        "own_masks",
        "has_pair",
        "_pair",
        "_pair_uniform",
        "_uniform_label",
        "_star_tables",
        "_slot_amounts",
        "star_entries",
        "evaluations",
    )

    def __init__(self, instance) -> None:
        rule = instance.rule
        if rule is None:
            raise ValueError("bitset kernels require a compiled rule")
        self.instance = instance
        self.rule = rule
        self.pairwise = isinstance(rule, PairwiseRule)
        self.generation = instance.generation
        self.alphabet_len = len(instance.alphabet)
        self.evaluations = 0

        if self.pairwise:
            alphabet = instance.alphabet
            labels = instance.labels
            degrees = instance.degrees
            self.own_masks: List[int] = [
                rule.own_code_mask(labels[u], degrees[u], alphabet)
                for u in range(instance.n)
            ]
            self.evaluations += instance.n * self.alphabet_len
            self.has_pair = rule.pair_ok is not None
        else:
            self.own_masks = []
            self.has_pair = False
        #: Mutual pair masks keyed ``(label_a, label_b, code_b)``.
        self._pair: Dict[tuple, int] = {}
        #: Fast path when every node carries the same label: a plain list
        #: indexed by the neighbor's code (``None`` = not built yet).
        self._pair_uniform: List[Optional[int]] = [None] * self.alphabet_len
        self._uniform_label = instance.labels[0] if instance.labels else ""
        #: Per node: slot-reduced packed key -> [evaluated_mask, accept_mask].
        self._star_tables: List[Dict[int, list]] = [{} for _ in range(instance.n)]
        #: Per node: ball member -> packed shift amount at the rule's level.
        self._slot_amounts: List[Optional[Dict[int, int]]] = [None] * instance.n
        self.star_entries = 0

    def fresh(self) -> bool:
        """Whether the masks still describe the instance's alphabet/packing."""
        instance = self.instance
        return (
            self.generation == instance.generation
            and self.alphabet_len == len(instance.alphabet)
        )

    # ------------------------------------------------------------------
    # Pairwise masks
    # ------------------------------------------------------------------
    def pair_mask(self, label_a: str, label_b: str, code_b: int) -> int:
        """Mutually acceptable codes of an ``a``--``b`` edge (cached).

        Bit ``c``: a *label_a* node carrying ``alphabet[c]`` and a *label_b*
        neighbor carrying ``alphabet[code_b]`` accept each other under both
        orientations of ``pair_ok``.
        """
        key = (label_a, label_b, code_b)
        mask = self._pair.get(key)
        if mask is None:
            alphabet = self.instance.alphabet
            mask = self.rule.mutual_pair_mask(
                label_a, label_b, alphabet[code_b], alphabet
            )
            self.evaluations += self.alphabet_len
            self._pair[key] = mask
        return mask

    def pair_mask_uniform(self, code_b: int) -> int:
        """:meth:`pair_mask` for uniformly labeled graphs (list-indexed)."""
        mask = self._pair_uniform[code_b]
        if mask is None:
            label = self._uniform_label
            mask = self.pair_mask(label, label, code_b)
            self._pair_uniform[code_b] = mask
        return mask

    # ------------------------------------------------------------------
    # Star slot masks
    # ------------------------------------------------------------------
    def star_slot_mask(
        self, u: int, slot: int, state, candidates: Sequence[int], stats=None
    ) -> int:
        """Acceptance of node *u* as a bitmask over the codes of ball slot *slot*.

        Every ball member of *u* except *slot* must be meaningfully assigned
        in *state* (the engine guarantees this via its ``checkable_at``
        schedule).  The mask is cached under the slot-reduced packed
        restriction key of *u*; unevaluated candidate codes are evaluated
        lazily through the rule predicate and folded into the cached entry.
        """
        instance = self.instance
        rule = self.rule
        level = rule.level
        codes = state.codes[level]
        amounts = self._slot_amounts[u]
        if amounts is None:
            shift = instance.shift
            base = level * instance.ball_sizes[u]
            amounts = {
                v: (position + base) * shift
                for position, v in enumerate(instance.balls[u])
            }
            self._slot_amounts[u] = amounts
        reduced = state.keys[u] - (codes[slot] << amounts[slot])
        table = self._star_tables[u]
        entry = table.get(reduced)
        if entry is None:
            if self.star_entries >= STAR_TABLE_CAP:
                for other in self._star_tables:
                    other.clear()
                self.star_entries = 0
                table = self._star_tables[u]
            entry = [0, 0]
            table[reduced] = entry
            self.star_entries += 1
        evaluated, accepted = entry
        missing = [c for c in candidates if not (evaluated >> c) & 1]
        if missing:
            saved = codes[slot]
            predicate = rule.predicate
            for code in missing:
                codes[slot] = code
                if predicate(instance._star_view(rule, u, codes)):
                    accepted |= 1 << code
                evaluated |= 1 << code
            codes[slot] = saved
            self.evaluations += len(missing)
            if stats is not None:
                stats.bitset_evaluations += len(missing)
            entry[0] = evaluated
            entry[1] = accepted
        return accepted

    # ------------------------------------------------------------------
    def info(self) -> Dict[str, int]:
        """Occupancy and build counters, for stats endpoints and tests."""
        return {
            "pairwise": int(self.pairwise),
            "alphabet": self.alphabet_len,
            "pair_masks": len(self._pair),
            "star_entries": self.star_entries,
            "evaluations": self.evaluations,
        }

    def __repr__(self) -> str:
        kind = "pairwise" if self.pairwise else "star"
        return (
            f"BitsetKernel({kind}, alphabet={self.alphabet_len}, "
            f"pair_masks={len(self._pair)}, star_entries={self.star_entries})"
        )


def mask_of_codes(codes: Sequence[int]) -> int:
    """The bitmask with exactly the given code bits set."""
    mask = 0
    for code in codes:
        mask |= 1 << code
    return mask
