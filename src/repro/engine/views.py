"""Precomputed radius-``r`` balls and static local views (the engine's substrate).

Everything the certificate-game engine memoizes hinges on one structural
fact: in the LOCAL model the verdict of a node ``u`` after ``t`` rounds is a
function of the radius-``t`` ball around ``u`` -- its topology, labels and
identifiers (all fixed for the duration of a game) plus the certificates of
the ball's nodes (the only part that changes between game positions).  The
:class:`BallIndex` precomputes, once per ``(graph, ids, radius)`` triple,

* the ball ``N^G_r(u)`` of every node, as a tuple in the graph's node order,
* the *static* part of a node's :class:`~repro.machines.local_algorithm.LocalView`
  (center, nodes, edges, labels, distances -- everything except
  certificates), built lazily on first use (only the direct evaluation path
  reads views),
* the induced subgraph of a node's ball (also lazy, for the generic
  simulation path of the evaluator).

With the index in hand, the per-node *certificate restriction key* -- the
tuple of certificates assigned to the ball's nodes -- is a cheap pure
function of a candidate game position, and two positions that agree on a
node's ball are guaranteed to give that node the same verdict.  This is what
lets the evaluator reuse verdicts across the exponentially many leaves of
the quantifier tree: changing the certificate of a node ``v`` only changes
the keys (and hence possibly the verdicts) of the nodes whose ball contains
``v``; every other node hits its cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Sequence, Tuple

from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.machines.local_algorithm import LocalView

#: The restriction of a certificate-list assignment to one node's ball:
#: one tuple per ball node (in the index's ball order), each containing the
#: node's certificate at every quantifier level.
RestrictionKey = Tuple[Tuple[str, ...], ...]


@dataclass(frozen=True)
class _StaticView:
    """The certificate-independent part of a node's :class:`LocalView`."""

    center: str
    radius: int
    nodes: FrozenSet[str]
    edges: FrozenSet[FrozenSet[str]]
    labels: Tuple[Tuple[str, str], ...]
    distances: Tuple[Tuple[str, int], ...]
    #: Ball nodes paired with their identifiers, in ball order (used to build
    #: the per-assignment certificates tuple).
    id_pairs: Tuple[Tuple[Node, str], ...]


class BallIndex:
    """Radius-``r`` ball cache for a fixed ``(graph, ids)`` instance.

    Parameters
    ----------
    graph, ids:
        The input graph and its identifier assignment.  Both are treated as
        immutable for the lifetime of the index (``LabeledGraph`` already is;
        the identifier mapping is copied).
    radius:
        The dependency radius: the certificate restriction of a node is taken
        over its radius-``radius`` ball.  For a gather-style algorithm this
        is the gathering radius; for a generic machine it is its round bound
        (information cannot travel further than one hop per round).
    """

    __slots__ = ("graph", "ids", "radius", "_node_order", "_balls", "_static", "_subgraphs")

    def __init__(self, graph: LabeledGraph, ids: Mapping[Node, str], radius: int) -> None:
        if radius < 0:
            raise ValueError("the ball radius must be nonnegative")
        self.graph = graph
        self.ids: Dict[Node, str] = dict(ids)
        self.radius = radius
        self._node_order: Tuple[Node, ...] = graph.nodes
        self._balls: Dict[Node, Tuple[Node, ...]] = {}
        self._static: Dict[Node, _StaticView] = {}
        self._subgraphs: Dict[Node, LabeledGraph] = {}
        position = {u: i for i, u in enumerate(self._node_order)}
        for u in self._node_order:
            ball_set = graph.ball(u, radius)
            self._balls[u] = tuple(sorted(ball_set, key=position.__getitem__))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[Node, ...]:
        """The graph's nodes, in graph order."""
        return self._node_order

    def ball(self, node: Node) -> Tuple[Node, ...]:
        """The radius-``radius`` ball of *node*, as a tuple in graph node order."""
        return self._balls[node]

    def covers_graph(self, node: Node) -> bool:
        """Whether the node's ball contains every node of the graph."""
        return len(self._balls[node]) == len(self._node_order)

    def restriction(
        self, node: Node, assignments: Sequence[Mapping[Node, str]]
    ) -> RestrictionKey:
        """The certificate restriction of *assignments* to the node's ball.

        The key is a tuple with one entry per ball node (in ball order), each
        entry being the node's certificates across all quantifier levels.
        Two certificate-list assignments with equal restriction keys are
        indistinguishable to *node*, so its verdict may be reused.
        """
        return tuple(
            tuple(assignment.get(v, "") for assignment in assignments)
            for v in self._balls[node]
        )

    def view(self, node: Node, assignments: Sequence[Mapping[Node, str]]) -> LocalView:
        """The node's :class:`LocalView` under the given certificate assignments.

        Reconstructs, without running the simulator, exactly the view a
        :class:`~repro.machines.local_algorithm.NeighborhoodGatherAlgorithm`
        of this index's radius would hand to its ``compute`` function (see
        :func:`repro.machines.local_algorithm.gather_view`, the central
        oracle the tests check the simulator against).
        """
        static = self._static.get(node)
        if static is None:
            static = self._build_static(node)
            self._static[node] = static
        certificates = tuple(
            sorted(
                (identifier, tuple(assignment.get(v, "") for assignment in assignments))
                for v, identifier in static.id_pairs
            )
        )
        return LocalView(
            center=static.center,
            radius=static.radius,
            nodes=static.nodes,
            edges=static.edges,
            labels=static.labels,
            certificates=certificates,
            distances=static.distances,
        )

    def ball_subgraph(self, node: Node) -> LabeledGraph:
        """The induced subgraph of the node's ball (cached; for generic machines)."""
        if node not in self._subgraphs:
            if self.covers_graph(node):
                self._subgraphs[node] = self.graph
            else:
                self._subgraphs[node] = self.graph.induced_subgraph(self._balls[node])
        return self._subgraphs[node]

    # ------------------------------------------------------------------
    def _build_static(self, node: Node) -> _StaticView:
        graph, ids = self.graph, self.ids
        ball = self._balls[node]
        ball_set = set(ball)
        id_pairs = tuple((v, ids[v]) for v in ball)
        distances = graph.distances_from(node)
        return _StaticView(
            center=ids[node],
            radius=self.radius,
            nodes=frozenset(identifier for _, identifier in id_pairs),
            edges=frozenset(
                frozenset({ids[u], ids[v]})
                for u, v in graph.edge_pairs()
                if u in ball_set and v in ball_set
            ),
            labels=tuple(sorted((ids[v], graph.label(v)) for v in ball)),
            distances=tuple(sorted((ids[v], distances[v]) for v in ball)),
            id_pairs=id_pairs,
        )

    def __repr__(self) -> str:
        return (
            f"BallIndex(nodes={len(self._node_order)}, radius={self.radius}, "
            f"max_ball={max(len(b) for b in self._balls.values())})"
        )
