"""Batch evaluation of many certificate-game instances.

The separations, the locality comparison and the benchmark harness all ask
the same shape of question many times over: *for each of these graphs (or
identifier assignments, or properties), who wins the game?*  The batch API
answers a whole list of such questions while sharing every piece of state
that can be shared:

* leaf evaluators (per-node verdict caches) are shared across instances
  with the same ``(machine, graph, ids)`` triple, regardless of certificate
  spaces or quantifier prefixes, via
  :func:`repro.engine.evaluator.shared_evaluator`;
* game engines (transposition caches) are shared across instances that also
  agree on the certificate spaces.

A :class:`GameInstance` describes one question; :func:`evaluate_batch`
answers a sequence of them in order.  :func:`decide_batch` is the common
special case of running one arbiter specification over many graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.hierarchy.certificate_spaces import CertificateSpace
from repro.hierarchy.game import Quantifier
from repro.machines.interface import NodeMachine

from repro.engine.game import GameEngine


@dataclass
class GameInstance:
    """One certificate-game question: a full ``(M, G, id, spaces, prefix)`` tuple.

    Attributes
    ----------
    machine:
        The arbiter deciding the leaves.
    graph, ids:
        The input graph and its identifier assignment.
    spaces:
        One certificate space per quantifier level.
    prefix:
        The quantifier prefix (``len(prefix) == len(spaces)``).
    name:
        Optional tag carried through to results and error messages.
    """

    machine: NodeMachine
    graph: LabeledGraph
    ids: Mapping[Node, str]
    spaces: Sequence[CertificateSpace]
    prefix: Sequence[Quantifier]
    name: str = ""

    def engine(self) -> GameEngine:
        """A game engine for this instance (shared leaf evaluator)."""
        return GameEngine.for_game(self.machine, self.graph, self.ids, self.spaces)


def evaluate_batch(instances: Sequence[GameInstance]) -> List[bool]:
    """Game values of many instances, sharing caches wherever possible.

    Returns one boolean per instance, in input order.  Instances agreeing on
    ``(machine, graph, ids, spaces)`` share a single engine (and hence its
    transposition cache); instances agreeing only on ``(machine, graph,
    ids)`` still share the per-node verdict cache through the evaluator
    registry.
    """
    engines: Dict[Tuple[int, LabeledGraph, Tuple[str, ...], Tuple[int, ...]], GameEngine] = {}
    values: List[bool] = []
    for instance in instances:
        ids_key = tuple(instance.ids[u] for u in instance.graph.nodes)
        key = (
            id(instance.machine),
            instance.graph,
            ids_key,
            tuple(id(space) for space in instance.spaces),
        )
        engine = engines.get(key)
        if engine is None:
            engine = instance.engine()
            engines[key] = engine
        values.append(engine.eve_wins(instance.prefix))
    return values


def decide_batch(
    spec,
    graphs: Iterable[LabeledGraph],
    ids_list: Optional[Sequence[Mapping[Node, str]]] = None,
) -> List[bool]:
    """Decide one arbiter specification on many graphs through the engine.

    Parameters
    ----------
    spec:
        An :class:`~repro.hierarchy.arbiters.ArbiterSpec` (or any object
        with ``machine``, ``spaces``, ``identifier_radius`` attributes and a
        ``prefix()`` method).
    graphs:
        The input graphs.
    ids_list:
        Optional identifier assignments, parallel to *graphs*; small locally
        unique assignments are constructed where omitted.
    """
    from repro.graphs.identifiers import small_identifier_assignment

    graph_list = list(graphs)
    instances: List[GameInstance] = []
    for index, graph in enumerate(graph_list):
        ids = None
        if ids_list is not None and index < len(ids_list) and ids_list[index] is not None:
            ids = ids_list[index]
        if ids is None:
            ids = small_identifier_assignment(graph, spec.identifier_radius)
        instances.append(
            GameInstance(
                machine=spec.machine,
                graph=graph,
                ids=ids,
                spaces=list(spec.spaces),
                prefix=spec.prefix(),
                name=getattr(spec, "name", ""),
            )
        )
    return evaluate_batch(instances)
