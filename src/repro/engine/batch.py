"""Batch evaluation of many certificate-game instances.

The separations, the locality comparison and the benchmark harness all ask
the same shape of question many times over: *for each of these graphs (or
identifier assignments, or properties), who wins the game?*  The batch API
answers a whole list of such questions while sharing every piece of state
that can be shared:

* leaf evaluators (per-node verdict caches) are shared across instances
  with the same ``(machine, graph, ids)`` triple, regardless of certificate
  spaces or quantifier prefixes, via
  :func:`repro.engine.evaluator.shared_evaluator`;
* game engines (transposition caches) are shared across instances that also
  agree on the certificate spaces.

A :class:`GameInstance` describes one question; :func:`evaluate_batch`
answers a sequence of them in order.  :func:`decide_batch` is the common
special case of running one arbiter specification over many graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.hierarchy.certificate_spaces import CertificateSpace
from repro.hierarchy.game import Quantifier
from repro.machines.interface import NodeMachine

from repro.engine.game import GameEngine


class IdentityKey:
    """A hashable identity key that keeps its referents alive.

    Earlier versions keyed the engine registry by ``id(machine)`` and
    ``id(space)``.  Raw ``id`` values may alias: once an object is garbage
    collected its address can be handed to a brand-new object, so a caller
    that builds instances lazily (letting machines or spaces die between
    iterations) could silently inherit another instance's engine -- and its
    cached game values.  This wrapper hashes and compares by identity but
    holds strong references, so any object participating in a live cache key
    cannot be collected and its identity cannot be reused.
    """

    __slots__ = ("objects", "_hash")

    def __init__(self, *objects: object) -> None:
        self.objects = objects
        self._hash = hash(tuple(id(obj) for obj in objects))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IdentityKey):
            return NotImplemented
        return len(self.objects) == len(other.objects) and all(
            mine is theirs for mine, theirs in zip(self.objects, other.objects)
        )

    def __repr__(self) -> str:
        return f"IdentityKey({', '.join(type(obj).__name__ for obj in self.objects)})"


@dataclass
class GameInstance:
    """One certificate-game question: a full ``(M, G, id, spaces, prefix)`` tuple.

    Attributes
    ----------
    machine:
        The arbiter deciding the leaves.
    graph, ids:
        The input graph and its identifier assignment.
    spaces:
        One certificate space per quantifier level.
    prefix:
        The quantifier prefix (``len(prefix) == len(spaces)``).
    name:
        Optional tag carried through to results and error messages.
    """

    machine: NodeMachine
    graph: LabeledGraph
    ids: Mapping[Node, str]
    spaces: Sequence[CertificateSpace]
    prefix: Sequence[Quantifier]
    name: str = ""

    def engine(self):
        """A compiled game engine for this instance (shared compiled instance).

        Routed through :meth:`GameEngine.for_game`, so instances on the same
        ``(machine, graph, ids)`` triple share one
        :class:`~repro.engine.compiled.CompiledInstance` -- and with it the
        interned certificate alphabet and the per-node verdict memo.
        """
        return GameEngine.for_game(self.machine, self.graph, self.ids, self.spaces)


def engine_sharing_key(instance: GameInstance) -> Tuple[IdentityKey, LabeledGraph, Tuple[str, ...]]:
    """The key under which instances share a single :class:`GameEngine`.

    Instances with equal keys agree on ``(machine, graph, ids, spaces)`` and
    may share one engine (and hence its transposition cache).  The machine
    and the spaces are compared by identity through :class:`IdentityKey`,
    which pins them in memory so the key cannot alias after garbage
    collection.
    """
    ids_key = tuple(instance.ids[u] for u in instance.graph.nodes)
    return (
        IdentityKey(instance.machine, *instance.spaces),
        instance.graph,
        ids_key,
    )


def evaluate_batch(instances: Iterable[GameInstance]) -> List[bool]:
    """Game values of many instances, sharing caches wherever possible.

    Returns one boolean per instance, in input order.  Instances agreeing on
    ``(machine, graph, ids, spaces)`` share a single engine (and hence its
    transposition cache); instances agreeing only on ``(machine, graph,
    ids)`` still share the per-node verdict cache through the evaluator
    registry.  *instances* may be any iterable, including a lazy generator:
    the engine registry's keys hold strong references, so identity-based
    sharing stays sound even when the caller drops its own references
    between iterations.
    """
    engines: Dict[Tuple[IdentityKey, LabeledGraph, Tuple[str, ...]], object] = {}
    values: List[bool] = []
    for instance in instances:
        key = engine_sharing_key(instance)
        engine = engines.get(key)
        if engine is None:
            engine = instance.engine()
            engines[key] = engine
        values.append(engine.eve_wins(instance.prefix))
    return values


def decide_batch(
    spec,
    graphs: Iterable[LabeledGraph],
    ids_list: Optional[Sequence[Mapping[Node, str]]] = None,
) -> List[bool]:
    """Decide one arbiter specification on many graphs through the engine.

    Parameters
    ----------
    spec:
        An :class:`~repro.hierarchy.arbiters.ArbiterSpec` (or any object
        with ``machine``, ``spaces``, ``identifier_radius`` attributes and a
        ``prefix()`` method).
    graphs:
        The input graphs.
    ids_list:
        Optional identifier assignments, parallel to *graphs* (one entry per
        graph; individual entries may be ``None``).  Small locally unique
        assignments are constructed for ``None`` entries or when the whole
        list is omitted.  A list whose length differs from the number of
        graphs raises ``ValueError`` -- silently generating identifiers for
        the tail would decide part of the batch on assignments the caller
        never saw.
    """
    from repro.graphs.identifiers import small_identifier_assignment

    graph_list = list(graphs)
    if ids_list is not None and len(ids_list) != len(graph_list):
        raise ValueError(
            f"ids_list must have one entry per graph: got {len(ids_list)} "
            f"assignments for {len(graph_list)} graphs"
        )
    instances: List[GameInstance] = []
    for index, graph in enumerate(graph_list):
        ids = None
        if ids_list is not None and ids_list[index] is not None:
            ids = ids_list[index]
        if ids is None:
            ids = small_identifier_assignment(graph, spec.identifier_radius)
        instances.append(
            GameInstance(
                machine=spec.machine,
                graph=graph,
                ids=ids,
                spaces=list(spec.spaces),
                prefix=spec.prefix(),
                name=getattr(spec, "name", ""),
            )
        )
    return evaluate_batch(instances)
