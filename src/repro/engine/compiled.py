"""The compiled instance core: integer-coded games on flat arrays.

The PR-1 engine wins by caching: per-node verdicts are memoized under
string-tuple restriction keys that are *rebuilt from scratch at every leaf*,
and cache misses reconstruct dict-heavy local views.  This module makes the
cold path itself cheap by lowering a ``(machine, graph, ids)`` instance to
flat integer form once and running the whole game on it:

* **CSR adjacency and balls.**  Nodes become indices ``0..n-1``; adjacency
  and dependency balls are flat index arrays, so the inner loops touch
  machine integers instead of hashing node objects.
* **Integer-coded certificates.**  Certificate strings are interned into a
  per-instance alphabet; a game position is a small-int array ``kappa[level][v]
  ∈ range(k)`` instead of dicts of strings.
* **Incremental packed restriction keys.**  The per-node memo key -- the
  certificate restriction to the node's ball -- is a single packed integer
  (``shift`` bits per ball slot per level) maintained *incrementally*: an
  assignment delta at node ``v`` updates the keys of exactly the nodes whose
  ball contains ``v``, via precomputed ``(dependent, shift-amount)`` pairs.
  No tuples are ever rebuilt on the game's hot path.
* **Table-driven leaf evaluation.**  Machines carrying a declarative
  :mod:`repro.machines.rules` rule (the coloring verifiers, degree/label
  deciders, the tree-field proof-labeling verifiers, ...) are evaluated
  straight off the code arrays: pairwise rules become per-node own-tables
  plus a shared ``(label, code, label, code)`` pair table; star rules are
  evaluated on a thin :class:`~repro.machines.rules.StarView` without any
  LocalView reconstruction.  Machines without a rule keep the generic
  direct-view path, and arbitrary machines fall back to ball-subgraph
  simulation -- both memoized under the same packed keys, and all of them
  cross-checked against the exhaustive solver by the equivalence suite.

:class:`CompiledGameEngine` runs the full quantifier game on this substrate:
level enumeration is an odometer over code arrays (one ``set_code`` delta
per step, in exactly the reference solver's ``itertools.product`` order),
the innermost levels reuse the PR-1 pruning strategies on coded state, and
transposition keys are packed per-level code integers instead of frozen
string tuples.  Caches are LRU-bounded (:mod:`repro.engine.caching`).

The alphabet can grow at runtime (callers may present unseen certificate
strings); when it outgrows the packing width the instance *rebases* --
doubles ``shift``, bumps its ``generation`` and drops the packed-key memo.
Generations are part of every engine's transposition key and live
:class:`CodedState` objects resynchronize lazily, so a rebase can never
cause a stale or aliased cache hit.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.registry import WeakSharedRegistry
from repro.hierarchy.certificate_spaces import CertificateSpace, materialize_space
from repro.hierarchy.game import Quantifier, pi_prefix, sigma_prefix
from repro.machines.interface import NodeMachine, verdict_of
from repro.machines.local_algorithm import NeighborhoodGatherAlgorithm
from repro.machines.rules import PairwiseRule, rule_of
from repro.machines.simulator import execute

from repro.engine.bitset import BitsetKernel, mask_of_codes
from repro.engine.caching import EvaluatorStats, LRUCache, MISSING
from repro.engine.canonical import node_ball_signature, verdict_key
from repro.engine.views import BallIndex

#: Default bound on the shared per-node verdict memo of a compiled instance.
DEFAULT_LEAF_MEMO_CAP = 1 << 20
#: Default bound on a compiled engine's transposition cache.
DEFAULT_TRANSPOSITION_CAP = 1 << 18

#: Bound on the per-instance coded-candidate cache (each entry pins one
#: MaterializedSpace, so the cache must not grow with the number of games).
_CANDIDATE_CACHE_LIMIT = 128


class CompiledInstance:
    """A ``(machine, graph, ids)`` instance lowered to flat integer arrays.

    Construction performs the whole lowering: node indexing, CSR adjacency,
    dependency balls and their inverse (the *dependents* of each node, with
    precomputed packed-key shift amounts), the direct/simulation decision
    (same criteria as the PR-1 evaluator: plain gather machines with
    collision-free identifiers in the gather horizon take the direct path),
    and kernel selection from the machine's declarative rule, if any.

    The instance owns the shared per-node verdict memo (LRU-bounded, keyed
    by ``(node, levels, packed restriction key)``) and the certificate
    alphabet; engines and evaluators on the same instance therefore share
    every cached verdict, exactly like the PR-1 shared leaf evaluator.
    """

    def __init__(
        self,
        machine: NodeMachine,
        graph: LabeledGraph,
        ids: Mapping[Node, str],
        memo_cap: Optional[int] = DEFAULT_LEAF_MEMO_CAP,
    ) -> None:
        self.machine = machine
        self.graph = graph
        self.ids: Dict[Node, str] = dict(ids)
        nodes = graph.nodes
        self.nodes: Tuple[Node, ...] = nodes
        self.index: Dict[Node, int] = {u: i for i, u in enumerate(nodes)}
        n = self.n = len(nodes)
        self.ids_list: List[str] = [self.ids[u] for u in nodes]
        self.labels: List[str] = [graph.label(u) for u in nodes]

        indptr = [0]
        indices: List[int] = []
        for u in nodes:
            indices.extend(sorted(self.index[v] for v in graph.neighbors(u)))
            indptr.append(len(indices))
        self.adj_indptr: List[int] = indptr
        self.adj_indices: List[int] = indices
        self.degrees: List[int] = [indptr[i + 1] - indptr[i] for i in range(n)]

        direct = type(machine) is NeighborhoodGatherAlgorithm
        if direct and not self._ids_unique_in_horizon(machine.radius + 1):
            direct = False
        self.direct = direct
        self.radius = machine.radius if direct else max(1, machine.max_rounds())

        self.balls: List[Tuple[int, ...]] = [self._ball_indices(i) for i in range(n)]
        self.ball_sizes: List[int] = [len(ball) for ball in self.balls]
        dependents: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        for u in range(n):
            for position, v in enumerate(self.balls[u]):
                dependents[v].append((u, position))
        self.dependents: List[Tuple[Tuple[int, int], ...]] = [tuple(d) for d in dependents]

        rule = rule_of(machine)
        self.rule = (
            rule
            if direct and rule is not None and rule.radius == machine.radius
            else None
        )
        self._rule_is_pairwise = isinstance(self.rule, PairwiseRule)
        self._uniform_labels = len(set(self.labels)) <= 1

        # Certificate interning.  Code 0 is the empty certificate -- the value
        # every node implicitly carries in a freshly zeroed state.
        self.alphabet: List[str] = [""]
        self.code_of: Dict[str, int] = {"": 0}
        self.shift = 4
        self.generation = 0
        self._dep_shifts: List[List[Tuple[Tuple[int, int], ...]]] = []
        #: Pre-compaction alphabet snapshots, keyed by the generation the
        #: compaction produced: a :class:`CodedState` older than a shrink
        #: decodes its stale codes through the snapshot and re-interns the
        #: strings in :meth:`CodedState.sync`.  Snapshots are tiny (the
        #: alphabet is a handful of short strings) and compactions rare.
        self._compaction_alphabets: Dict[int, List[str]] = {}

        #: Per-node verdict memos, keyed by ``(packed key << 5) | levels``
        #: (int keys hash faster than tuples on the hot path).  Bounded as a
        #: whole by *memo_cap* with segment eviction: when full, the oldest
        #: (insertion-ordered) half of every node's memo is dropped.
        self.memo_nodes: List[Dict[int, bool]] = [{} for _ in range(n)]
        self.memo_cap = memo_cap
        self.memo_entries = 0
        self.memo_hits = 0
        self.memo_misses = 0
        self.memo_evictions = 0
        #: Entries dropped by :meth:`rewire` (mutation repair, not pressure).
        self.memo_invalidations = 0
        #: Shared evaluation order with the last-reject-first heuristic.
        self.order: List[int] = list(range(n))

        #: Coded per-node candidate lists, cached per materialized space
        #: (id-keyed; the entry pins the space so ids cannot alias).
        self._candidate_cache: Dict[int, tuple] = {}
        # Lazy fallback helpers (only the non-kernel paths touch these).
        self._lazy_ball_index: Optional[BallIndex] = None
        self._own_tables: List[Dict[int, bool]] = [{} for _ in range(n)]
        self._pair_table: Dict[Tuple[str, int, str, int], bool] = {}
        self._star_statics: Optional[List[tuple]] = None
        #: Bitset leaf kernel (snapshot of the alphabet/packing; lazily
        #: rebuilt by :meth:`bitset_kernel` when stale).
        self._bitset_kernel: Optional[BitsetKernel] = None
        #: Canonical ball memoization (attached by sweeps/the service; the
        #: expensive rule-less paths consult it on per-node memo misses).
        self.canonical = None
        self._machine_token: Optional[str] = None
        self._canonical_statics: List[Optional[bytes]] = [None] * n

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _ids_unique_in_horizon(self, horizon: int) -> bool:
        # Globally unique identifiers (the common schemes) are trivially
        # unique in every ball; only locally-unique schemes need the BFS.
        if len(set(self.ids_list)) == self.n:
            return True
        graph, ids = self.graph, self.ids
        for u in graph.nodes:
            ball = graph.ball(u, horizon)
            if len({ids[v] for v in ball}) != len(ball):
                return False
        return True

    def _ball_indices(self, source: int) -> Tuple[int, ...]:
        indptr, indices = self.adj_indptr, self.adj_indices
        if self.radius == 0:
            return (source,)
        if self.radius == 1:
            return tuple(sorted([source, *indices[indptr[source] : indptr[source + 1]]]))
        distance = {source: 0}
        frontier = [source]
        depth = 0
        while frontier and depth < self.radius:
            next_frontier = []
            for u in frontier:
                for w in indices[indptr[u] : indptr[u + 1]]:
                    if w not in distance:
                        distance[w] = depth + 1
                        next_frontier.append(w)
            frontier = next_frontier
            depth += 1
        return tuple(sorted(distance))

    # ------------------------------------------------------------------
    # Certificate interning and packed-key plumbing
    # ------------------------------------------------------------------
    def intern(self, certificate: str) -> int:
        """The integer code of a certificate string (allocating if unseen).

        Allocating past the packing capacity triggers a :meth:`_rebase`;
        callers that cached packed keys must compare :attr:`generation`.
        """
        code = self.code_of.get(certificate)
        if code is None:
            code = len(self.alphabet)
            self.code_of[certificate] = code
            self.alphabet.append(certificate)
            if code >= (1 << self.shift):
                self._rebase()
        return code

    def intern_all(self, certificates: Sequence[str]) -> List[int]:
        return [self.intern(certificate) for certificate in certificates]

    def candidate_codes(self, materialized) -> List[List[int]]:
        """Per-node candidate code lists for a materialized space (cached).

        The alphabet is interned once; per-node lists are then plain dict
        lookups.  Results are cached per materialized space, so engines on
        one instance that share a space also share the coded candidates.
        """
        cached = self._candidate_cache.get(id(materialized))
        if cached is not None and cached[0] is materialized:
            return cached[1]
        for certificate in materialized.alphabet:
            self.intern(certificate)
        code_of = self.code_of
        coded = [
            [code_of[certificate] for certificate in candidates]
            for candidates in materialized.per_node
        ]
        # The key is the id; the tuple pins the object so the id cannot be
        # recycled while the entry lives.  Bounded like every other cache:
        # beyond the cap the oldest entry (and its pin) is dropped.
        while len(self._candidate_cache) >= _CANDIDATE_CACHE_LIMIT:
            del self._candidate_cache[next(iter(self._candidate_cache))]
        self._candidate_cache[id(materialized)] = (materialized, coded)
        return coded

    def _rebase(self) -> None:
        """Double the per-slot packing width after alphabet growth.

        Codes themselves are stable (so the rule tables survive); only the
        *packed* keys change encoding, so the verdict memo is dropped and
        the generation bumped -- transposition keys embed the generation
        and :class:`CodedState` objects resync lazily.
        """
        self.shift = max(self.shift * 2, (len(self.alphabet) - 1).bit_length() + 1)
        self.generation += 1
        self._dep_shifts = []
        # Int-packed pair keys ride on the shift width; drop them with the memo.
        self._pair_table.clear()
        self.clear_memo()

    def clear_memo(self) -> None:
        for memo in self.memo_nodes:
            memo.clear()
        self.memo_entries = 0

    def _memo_put(self, u: int, memo_key: int, verdict: bool) -> None:
        """Insert a verdict, evicting the oldest memo halves when full."""
        cap = self.memo_cap
        if cap is not None and self.memo_entries >= cap:
            dropped = 0
            for i, memo in enumerate(self.memo_nodes):
                keep = len(memo) // 2
                dropped += len(memo) - keep
                self.memo_nodes[i] = dict(
                    itertools.islice(memo.items(), len(memo) - keep, None)
                )
            self.memo_entries -= dropped
            self.memo_evictions += dropped
        memo = self.memo_nodes[u]
        if memo_key not in memo:
            self.memo_entries += 1
        memo[memo_key] = verdict

    def dep_shifts(self, level: int) -> List[Tuple[Tuple[int, int], ...]]:
        """Per node ``v``: the ``(dependent u, shift amount)`` pairs of *level*."""
        tables = self._dep_shifts
        while len(tables) <= level:
            built_level = len(tables)
            shift = self.shift
            sizes = self.ball_sizes
            tables.append(
                [
                    tuple(
                        (u, (position + built_level * sizes[u]) * shift)
                        for u, position in self.dependents[v]
                    )
                    for v in range(self.n)
                ]
            )
        return tables[level]

    def new_state(self, levels: int) -> "CodedState":
        """A zeroed coded assignment state with *levels* certificate levels."""
        return CodedState(self, levels)

    # ------------------------------------------------------------------
    # Dynamic mutation support (verdict repair)
    # ------------------------------------------------------------------
    def rewire(
        self,
        graph: LabeledGraph,
        ids: Mapping[Node, str],
        dirty: Optional[Iterable[int]] = None,
    ) -> Tuple[int, ...]:
        """Repoint this instance at a mutated ``(graph, ids)`` sharing its nodes.

        *dirty* is an over-approximation of the node indices whose dependency
        balls (membership, labels, identifiers or internal edges) may differ
        from the previous graph; ``None`` means every node.  Dirty nodes lose
        their memoized verdicts, canonical signatures and own-code tables;
        clean nodes keep them: their balls and everything inside them are
        unchanged, so their packed restriction keys and canonical signatures
        still name the identical computation.  If the direct/simulation
        decision flips (identifier churn breaking horizon-uniqueness changes
        the dependency radius with it), everything is invalidated regardless
        of *dirty*.

        The generation is bumped, so live :class:`CodedState` objects
        resynchronize, transposition entries (which embed the generation)
        die, and bitset kernels rebuild.  Codes and the packing width are
        untouched -- the alphabet only ever changes through :meth:`intern`
        and :meth:`compact_alphabet`.  Returns the invalidated indices.
        """
        if tuple(graph.nodes) != self.nodes:
            raise ValueError("rewire requires the same node set in the same order")
        old_direct = self.direct
        old_uniform = self._uniform_labels
        old_label0 = self.labels[0] if self.labels else ""
        self.graph = graph
        self.ids = dict(ids)
        nodes = self.nodes
        n = self.n
        self.ids_list = [self.ids[u] for u in nodes]
        self.labels = [graph.label(u) for u in nodes]
        indptr = [0]
        indices: List[int] = []
        for u in nodes:
            indices.extend(sorted(self.index[v] for v in graph.neighbors(u)))
            indptr.append(len(indices))
        self.adj_indptr = indptr
        self.adj_indices = indices
        self.degrees = [indptr[i + 1] - indptr[i] for i in range(n)]

        machine = self.machine
        direct = type(machine) is NeighborhoodGatherAlgorithm
        if direct and not self._ids_unique_in_horizon(machine.radius + 1):
            direct = False
        self.direct = direct
        self.radius = machine.radius if direct else max(1, machine.max_rounds())
        rule = rule_of(machine)
        self.rule = (
            rule
            if direct and rule is not None and rule.radius == machine.radius
            else None
        )
        self._rule_is_pairwise = isinstance(self.rule, PairwiseRule)
        self._uniform_labels = len(set(self.labels)) <= 1

        if direct != old_direct or dirty is None:
            dirty_set = set(range(n))
        else:
            dirty_set = {u for u in dirty if 0 <= u < n}
        for u in dirty_set:
            self.balls[u] = self._ball_indices(u)
            self.ball_sizes[u] = len(self.balls[u])
        dependents: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        for u in range(n):
            for position, v in enumerate(self.balls[u]):
                dependents[v].append((u, position))
        self.dependents = [tuple(d) for d in dependents]
        self._dep_shifts = []
        self.generation += 1

        label0 = self.labels[0] if self.labels else ""
        if self._uniform_labels != old_uniform or (
            self._uniform_labels and label0 != old_label0
        ):
            # Uniform-mode pair keys pack the two codes only (no labels), so
            # entries could alias across a label change; non-uniform keys
            # carry the labels and survive any mutation.
            self._pair_table.clear()
        for u in dirty_set:
            dropped = len(self.memo_nodes[u])
            if dropped:
                self.memo_nodes[u] = {}
                self.memo_entries -= dropped
                self.memo_invalidations += dropped
            self._own_tables[u] = {}
            self._canonical_statics[u] = None
        self._star_statics = None
        self._lazy_ball_index = None
        self._bitset_kernel = None
        self._candidate_cache.clear()
        return tuple(sorted(dirty_set))

    def compact_alphabet(self, keep: Iterable[str]) -> int:
        """Shrink the interned alphabet to ``{""} | keep``, re-packing tightly.

        The inverse of runtime growth: mutations strand interned
        certificates (an identifier-derived candidate that no longer occurs
        after churn), and neither the alphabet nor the packing width ever
        shrinks on its own.  Dropping codes renumbers the survivors, so
        every code- or packed-key-addressed structure is invalidated and the
        generation bumped; the pre-compaction alphabet is snapshotted so
        live :class:`CodedState` objects re-intern the certificate *strings*
        they still carry on their next :meth:`CodedState.sync` -- a stale
        code or packed key can never survive a shrink.  Returns the number
        of dropped certificates.
        """
        keep_set = set(keep)
        survivors = [""] + [
            certificate for certificate in self.alphabet[1:] if certificate in keep_set
        ]
        dropped = len(self.alphabet) - len(survivors)
        if dropped == 0:
            return 0
        snapshot = self.alphabet
        self.alphabet = survivors
        self.code_of = {certificate: code for code, certificate in enumerate(survivors)}
        self.shift = max(4, (len(survivors) - 1).bit_length() + 1)
        self.generation += 1
        self._compaction_alphabets[self.generation] = snapshot
        self._dep_shifts = []
        self._pair_table.clear()
        self._own_tables = [{} for _ in range(self.n)]
        self._bitset_kernel = None
        self._candidate_cache.clear()
        self.clear_memo()
        return dropped

    # ------------------------------------------------------------------
    # Bitset kernel and canonical ball memoization
    # ------------------------------------------------------------------
    def bitset_kernel(self) -> Optional[BitsetKernel]:
        """The bitset leaf kernel for this instance's rule (``None`` if unruled).

        Kernels snapshot the alphabet and packing generation; a stale one is
        rebuilt here, so callers get masks that always match the current
        interning (cheap compare on the warm path).
        """
        if self.rule is None:
            return None
        kernel = self._bitset_kernel
        if kernel is None or not kernel.fresh():
            kernel = BitsetKernel(self)
            self._bitset_kernel = kernel
        return kernel

    def attach_canonical(self, cache) -> None:
        """Attach a :class:`~repro.engine.canonical.CanonicalVerdictCache`.

        The rule-less evaluation paths (direct views and ball-subgraph
        simulation -- the expensive ones) consult it on per-node memo
        misses, sharing verdicts across nodes, instances and sessions.
        """
        self.canonical = cache

    def _canonical_static(self, u: int) -> bytes:
        static = self._canonical_statics[u]
        if static is None:
            static = node_ball_signature(self, u)
            self._canonical_statics[u] = static
        return static

    def canonical_key_state(self, u: int, state: "CodedState") -> str:
        """The canonical ball-verdict key of node *u* under a coded state."""
        alphabet = self.alphabet
        ball = self.balls[u]
        certificates = tuple(
            tuple(alphabet[codes[v]] for v in ball) for codes in state.codes
        )
        return verdict_key(self._canonical_static(u), state.levels, certificates)

    def canonical_key_dicts(
        self, u: int, assignments: Sequence[Mapping[Node, str]]
    ) -> str:
        """The canonical ball-verdict key of node *u* under dict assignments."""
        nodes = self.nodes
        ball = self.balls[u]
        certificates = tuple(
            tuple(assignment.get(nodes[v], "") for v in ball)
            for assignment in assignments
        )
        return verdict_key(self._canonical_static(u), len(assignments), certificates)

    # ------------------------------------------------------------------
    # Leaf evaluation on coded state (the engine's hot path)
    # ------------------------------------------------------------------
    def node_verdict_state(self, u: int, state: "CodedState", stats: EvaluatorStats) -> bool:
        """The memoized verdict of node index *u* under *state*.

        The memo key packs the levels count into the low bits of the packed
        restriction key, so one int lookup answers repeated restrictions.
        The miss path is deliberately flat -- kernel dispatch and the memo
        insert are inlined, since this is the engine's innermost call.
        """
        levels = state.levels
        memo_key = (state.keys[u] << 5) | levels
        verdict = self.memo_nodes[u].get(memo_key, MISSING)
        if verdict is not MISSING:
            stats.node_hits += 1
            self.memo_hits += 1
            return verdict
        stats.node_misses += 1
        self.memo_misses += 1
        rule = self._usable_rule(levels)
        if rule is not None:
            codes = state.codes[rule.level] if rule.level < levels else None
            if self._rule_is_pairwise:
                verdict = self._pairwise_codes(u, codes)
            else:
                verdict = rule.predicate(self._star_view(rule, u, codes))
        else:
            canonical = self.canonical
            canonical_key = None
            found = None
            if canonical is not None:
                canonical_key = self.canonical_key_state(u, state)
                found = canonical.get(canonical_key)
            if found is not None:
                verdict = found
            else:
                if self.direct:
                    verdict = verdict_of(
                        self.machine.compute(
                            self.ball_index.view(
                                self.nodes[u], self._decode(state, self.balls[u])
                            )
                        )
                    )
                else:
                    verdict = self._simulate(
                        u, levels, self._decode(state, self.balls[u]), stats
                    )
                if canonical is not None:
                    canonical.put(canonical_key, verdict)
        cap = self.memo_cap
        if cap is None or self.memo_entries < cap:
            # Re-fetch: _simulate's harvest may have segment-evicted and
            # rebound the per-node memo dicts while we computed.
            memo = self.memo_nodes[u]
            if memo_key not in memo:
                self.memo_entries += 1
            memo[memo_key] = verdict
        else:
            self._memo_put(u, memo_key, verdict)
        return verdict

    def accepts_state(self, state: "CodedState", stats: EvaluatorStats) -> bool:
        """Unanimity over all nodes, short-circuiting with last-reject-first."""
        stats.leaves += 1
        order = self.order
        memo_nodes = self.memo_nodes
        keys = state.keys
        levels = state.levels
        for position, u in enumerate(order):
            verdict = memo_nodes[u].get((keys[u] << 5) | levels, MISSING)
            if verdict is MISSING:
                verdict = self.node_verdict_state(u, state, stats)
            else:
                stats.node_hits += 1
                self.memo_hits += 1
            if not verdict:
                if position:
                    order.insert(0, order.pop(position))
                return False
        return True

    def _decode(
        self, state: "CodedState", only: Optional[Tuple[int, ...]] = None
    ) -> List[Dict[Node, str]]:
        """The state as plain per-level certificate dicts (fallback paths only).

        *only* restricts the dicts to the given node indices (a ball): the
        view and ball-subgraph consumers never read beyond the ball, so
        per-miss decoding stays proportional to the ball, not the graph.
        """
        alphabet = self.alphabet
        nodes = self.nodes
        indices = range(self.n) if only is None else only
        return [
            {nodes[v]: alphabet[codes[v]] for v in indices}
            for codes in state.codes
        ]

    # ------------------------------------------------------------------
    # Leaf evaluation from certificate dicts (the evaluator-facing path)
    # ------------------------------------------------------------------
    def key_from_dicts(self, u: int, assignments: Sequence[Mapping[Node, str]]) -> int:
        """The packed restriction key of node *u* under dict assignments.

        Interning an unseen certificate may rebase the packing; the key is
        then recomputed under the new width (the loop converges because a
        rebase at least doubles the capacity).
        """
        while True:
            generation = self.generation
            shift = self.shift
            ball = self.balls[u]
            ball_size = len(ball)
            nodes = self.nodes
            code_of = self.code_of
            key = 0
            stable = True
            for level, assignment in enumerate(assignments):
                base = level * ball_size
                for position, v in enumerate(ball):
                    certificate = assignment.get(nodes[v], "")
                    code = code_of.get(certificate)
                    if code is None:
                        code = self.intern(certificate)
                        if self.generation != generation:
                            stable = False
                            break
                    key |= code << ((base + position) * shift)
                if not stable:
                    break
            if stable:
                return key

    def node_verdict_dicts(
        self, u: int, assignments: Sequence[Mapping[Node, str]], stats: EvaluatorStats
    ) -> bool:
        generation = self.generation
        levels = len(assignments)
        if levels > 31:
            raise ValueError("at most 31 quantifier levels are supported")
        memo_key = (self.key_from_dicts(u, assignments) << 5) | levels
        verdict = self.memo_nodes[u].get(memo_key, MISSING)
        if verdict is not MISSING:
            stats.node_hits += 1
            self.memo_hits += 1
            return verdict
        stats.node_misses += 1
        self.memo_misses += 1
        rule = self._usable_rule(levels)
        if rule is not None:
            codes = (
                self._level_codes_from_dict(assignments[rule.level])
                if rule.level < levels
                else None
            )
            if self._rule_is_pairwise:
                verdict = self._pairwise_codes(u, codes)
            else:
                verdict = rule.predicate(self._star_view(rule, u, codes))
        else:
            canonical = self.canonical
            canonical_key = None
            found = None
            if canonical is not None:
                canonical_key = self.canonical_key_dicts(u, assignments)
                found = canonical.get(canonical_key)
            if found is not None:
                verdict = found
            else:
                if self.direct:
                    verdict = verdict_of(
                        self.machine.compute(
                            self.ball_index.view(self.nodes[u], assignments)
                        )
                    )
                else:
                    verdict = self._simulate(u, levels, list(assignments), stats)
                if canonical is not None:
                    canonical.put(canonical_key, verdict)
        if self.generation != generation:
            # Evaluation interned an unseen certificate and rebased the
            # packing: the key computed above is in the old encoding.
            memo_key = (self.key_from_dicts(u, assignments) << 5) | levels
        self._memo_put(u, memo_key, verdict)
        return verdict

    def _level_codes_from_dict(self, assignment: Mapping[Node, str]) -> List[int]:
        intern = self.intern
        get = assignment.get
        return [intern(get(u, "")) for u in self.nodes]

    def accepts_dicts(
        self, assignments: Sequence[Mapping[Node, str]], stats: EvaluatorStats
    ) -> bool:
        stats.leaves += 1
        order = self.order
        for position, u in enumerate(order):
            if not self.node_verdict_dicts(u, assignments, stats):
                if position:
                    order.insert(0, order.pop(position))
                return False
        return True

    def verdicts_dicts(
        self, assignments: Sequence[Mapping[Node, str]], stats: EvaluatorStats
    ) -> Dict[Node, bool]:
        """All per-node verdicts (no short-circuiting; diagnostics and tests)."""
        return {
            self.nodes[u]: self.node_verdict_dicts(u, assignments, stats)
            for u in range(self.n)
        }

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def _usable_rule(self, levels: int):
        rule = self.rule
        if rule is None:
            return None
        if levels > rule.level or not rule.needs_certificate:
            return rule
        return None


    def _pairwise_codes(self, u: int, codes: Optional[List[int]]) -> bool:
        """Table-driven pairwise evaluation over a level's code array.

        *codes* is the code array of the rule's level (``None`` when the
        game has no such level and the rule does not read certificates).
        Verdict pieces are memoized in per-node own tables and a shared
        ``(label, code, label, code)`` pair table, so after warmup a node's
        evaluation is one dict lookup plus one per neighbor.
        """
        rule = self.rule
        own_code = codes[u] if codes is not None else -1
        own_table = self._own_tables[u]
        ok = own_table.get(own_code)
        if ok is None:
            certificate = self.alphabet[own_code] if own_code >= 0 else None
            ok = bool(rule.own_ok(self.labels[u], self.degrees[u], certificate))
            own_table[own_code] = ok
        if not ok:
            return False
        pair_ok = rule.pair_ok
        if pair_ok is None:
            return True
        pair_table = self._pair_table
        labels = self.labels
        alphabet = self.alphabet
        own_label = labels[u]
        indptr, indices = self.adj_indptr, self.adj_indices
        if self._uniform_labels:
            # All labels equal: the pair key packs the two codes into one
            # int (cleared on rebase, since the width rides on ``shift``).
            own_part = (own_code + 1) << (self.shift + 1)
            for w in indices[indptr[u] : indptr[u + 1]]:
                neighbor_code = codes[w] if codes is not None else -1
                pair_key = own_part | (neighbor_code + 1)
                ok = pair_table.get(pair_key)
                if ok is None:
                    ok = bool(
                        pair_ok(
                            own_label,
                            alphabet[own_code] if own_code >= 0 else None,
                            labels[w],
                            alphabet[neighbor_code] if neighbor_code >= 0 else None,
                        )
                    )
                    pair_table[pair_key] = ok
                if not ok:
                    return False
            return True
        for w in indices[indptr[u] : indptr[u + 1]]:
            neighbor_code = codes[w] if codes is not None else -1
            pair_key = (own_label, own_code, labels[w], neighbor_code)
            ok = pair_table.get(pair_key)
            if ok is None:
                ok = bool(
                    pair_ok(
                        own_label,
                        alphabet[own_code] if own_code >= 0 else None,
                        labels[w],
                        alphabet[neighbor_code] if neighbor_code >= 0 else None,
                    )
                )
                pair_table[pair_key] = ok
            if not ok:
                return False
        return True

    def _star_view(self, rule, u: int, codes: Optional[List[int]]):
        from repro.machines.rules import StarView

        statics = self._star_statics
        if statics is None:
            statics = []
            ids_list, labels = self.ids_list, self.labels
            indptr, indices = self.adj_indptr, self.adj_indices
            for v in range(self.n):
                neighbors = tuple(
                    sorted(
                        (ids_list[w], labels[w], w)
                        for w in indices[indptr[v] : indptr[v + 1]]
                    )
                )
                statics.append((ids_list[v], labels[v], len(neighbors), neighbors))
            self._star_statics = statics
        identifier, label, degree, neighbor_statics = statics[u]
        alphabet = self.alphabet

        def certificate_of(index: int) -> Optional[str]:
            if codes is None:
                return None
            return alphabet[codes[index]]

        return StarView(
            identifier=identifier,
            label=label,
            degree=degree,
            certificate=certificate_of(u),
            neighbors=tuple(
                (neighbor_id, neighbor_label, certificate_of(w))
                for neighbor_id, neighbor_label, w in neighbor_statics
            ),
        )

    # ------------------------------------------------------------------
    # Fallback paths (generic machines)
    # ------------------------------------------------------------------
    @property
    def ball_index(self) -> BallIndex:
        """Lazy :class:`BallIndex` for the generic view/simulation fallbacks."""
        if self._lazy_ball_index is None:
            self._lazy_ball_index = BallIndex(self.graph, self.ids, self.radius)
        return self._lazy_ball_index

    def _simulate(
        self,
        u: int,
        levels: int,
        assignments: List[Dict[Node, str]],
        stats: EvaluatorStats,
    ) -> bool:
        stats.simulator_runs += 1
        node = self.nodes[u]
        subgraph = self.ball_index.ball_subgraph(node)
        result = execute(self.machine, subgraph, self.ids, assignments)
        outputs = result.outputs
        if subgraph is self.graph:
            # One whole-graph execution decides every node: harvest them all.
            canonical = self.canonical
            for other, output in outputs.items():
                other_index = self.index[other]
                other_key = (self.key_from_dicts(other_index, assignments) << 5) | levels
                self._memo_put(other_index, other_key, verdict_of(output))
                if canonical is not None:
                    canonical.put(
                        self.canonical_key_dicts(other_index, assignments),
                        verdict_of(output),
                    )
        return verdict_of(outputs[node])

    def memo_info(self) -> Dict[str, Optional[int]]:
        """Hit/miss/eviction counters and occupancy of the shared verdict memo."""
        return {
            "size": self.memo_entries,
            "maxsize": self.memo_cap,
            "hits": self.memo_hits,
            "misses": self.memo_misses,
            "evictions": self.memo_evictions,
            "invalidations": self.memo_invalidations,
        }

    def publish_metrics(self, registry, labels: Optional[Dict[str, str]] = None) -> None:
        """Mirror the verdict-memo counters into *registry* gauges.

        The memo counters stay plain ints on the hot path (a per-leaf
        lock would be measurable); callers that hold an engine for a
        while -- the service's compute tier -- republish them as
        ``repro_engine_memo_*`` gauges after each batch instead.
        """
        info = self.memo_info()
        for field in ("size", "hits", "misses", "evictions", "invalidations"):
            registry.gauge(f"repro_engine_memo_{field}", labels=labels).set(
                info[field] or 0
            )

    def __repr__(self) -> str:
        kernel = (
            type(self.rule).__name__
            if self.rule is not None
            else ("direct" if self.direct else "simulate")
        )
        return (
            f"CompiledInstance(nodes={self.n}, radius={self.radius}, kernel={kernel}, "
            f"alphabet={len(self.alphabet)}, shift={self.shift}, memo={self.memo_entries})"
        )


class CodedState:
    """A mutable integer-coded certificate assignment with incremental keys.

    ``codes[level][v]`` is node ``v``'s certificate code at *level*;
    ``keys[v]`` is the packed restriction key of ``v``'s ball, and
    ``full[level]`` the packed whole-graph key of the level (the engine's
    transposition-key component).  :meth:`set_code` applies a single-node
    delta and updates exactly the affected packed keys -- the incremental
    maintenance that replaces the per-leaf tuple rebuilding of PR 1.
    """

    __slots__ = (
        "instance",
        "levels",
        "codes",
        "keys",
        "full",
        "full_valid",
        "generation",
        "deps",
    )

    def __init__(self, instance: CompiledInstance, levels: int) -> None:
        self.instance = instance
        self.levels = levels
        n = instance.n
        if levels > 31:
            # The memo packs the levels count into 5 low key bits.
            raise ValueError("at most 31 quantifier levels are supported")
        self.codes: List[List[int]] = [[0] * n for _ in range(levels)]
        self.keys: List[int] = [0] * n
        self.full: List[int] = [0] * levels
        #: Whole-graph packed keys are maintained only once someone reads
        #: them (transposition keys of multi-level games); single-level
        #: games never pay the big-int updates.
        self.full_valid = False
        self.generation = instance.generation
        #: Cached per-level ``(dependent, shift amount)`` tables, built on
        #: first :meth:`set_code` -- the bitset search paths never assign
        #: through the state, so they never pay for these.
        self.deps: Optional[List[List[Tuple[Tuple[int, int], ...]]]] = None

    def ensure_full(self) -> List[int]:
        """The per-level whole-graph packed keys, enabling their maintenance."""
        if not self.full_valid:
            shift = self.instance.shift
            n = self.instance.n
            self.full = [
                sum(codes[v] << (v * shift) for v in range(n)) for codes in self.codes
            ]
            self.full_valid = True
        return self.full

    def sync(self) -> None:
        """Resynchronize after an instance rebase, rewire or compaction.

        Growth rebases and rewires keep codes valid, so only the packed
        keys are recomputed.  A *compaction* renumbers (and may drop)
        codes: the state first decodes its codes through the pre-compaction
        alphabet snapshot and re-interns the strings -- the semantics
        (which certificate each node carries) survive the shrink while the
        stale integers do not.
        """
        instance = self.instance
        if self.generation == instance.generation:
            return
        snapshots = instance._compaction_alphabets
        if snapshots:
            newer = [g for g in snapshots if g > self.generation]
            if newer:
                # Growth between this state's generation and the first
                # compaction kept codes stable, so the earliest snapshot
                # still decodes them; re-interning yields codes valid for
                # the *current* alphabet even across several compactions.
                snapshot = snapshots[min(newer)]
                intern = instance.intern
                for codes in self.codes:
                    for v, code in enumerate(codes):
                        if code:
                            codes[v] = intern(snapshot[code])
        self.generation = instance.generation
        self.deps = None
        shift = instance.shift
        n = instance.n
        keys = []
        for u in range(n):
            ball = instance.balls[u]
            ball_size = len(ball)
            key = 0
            for level in range(self.levels):
                codes = self.codes[level]
                base = level * ball_size
                for position, v in enumerate(ball):
                    key |= codes[v] << ((base + position) * shift)
            keys.append(key)
        self.keys = keys
        if self.full_valid:
            self.full = [
                sum(codes[v] << (v * shift) for v in range(n)) for codes in self.codes
            ]

    def set_code(self, level: int, v: int, code: int) -> None:
        """Assign ``kappa[level][v] = code``, updating dependent packed keys."""
        codes = self.codes[level]
        old = codes[v]
        if old == code:
            return
        codes[v] = code
        delta = code - old
        keys = self.keys
        deps = self.deps
        if deps is None:
            instance = self.instance
            deps = self.deps = [
                instance.dep_shifts(level) for level in range(self.levels)
            ]
        for u, amount in deps[level][v]:
            keys[u] += delta << amount
        if self.full_valid:
            self.full[level] += delta << (v * self.instance.shift)

    def __repr__(self) -> str:
        return f"CodedState(levels={self.levels}, nodes={self.instance.n})"


class CompiledGameEngine:
    """The certificate-game solver running entirely on a compiled instance.

    Drop-in API match for :class:`repro.engine.game.GameEngine`
    (``eve_wins`` / ``sigma_value`` / ``pi_value`` / ``winning_first_move``,
    identical enumeration order), but every internal structure is coded:
    candidate certificates are integer codes materialized from the spaces,
    level enumeration is a delta odometer on a :class:`CodedState`, the
    innermost levels run the PR-1 pruning strategies over packed keys, and
    the transposition cache is keyed by packed per-level code integers.
    """

    def __init__(
        self,
        machine: NodeMachine,
        graph: LabeledGraph,
        ids: Mapping[Node, str],
        spaces: Sequence[CertificateSpace],
        instance: Optional[CompiledInstance] = None,
        transposition_cap: Optional[int] = DEFAULT_TRANSPOSITION_CAP,
        use_bitset: bool = True,
    ) -> None:
        self.machine = machine
        self.graph = graph
        self.ids: Dict[Node, str] = dict(ids)
        self.spaces: List[CertificateSpace] = list(spaces)
        compiled = instance if instance is not None else compile_instance(machine, graph, ids)
        self.compiled = compiled
        self.nodes: List[Node] = list(graph.nodes)
        self.stats = EvaluatorStats()
        #: Whether the vectorized bitset tier (mask-pruned innermost search,
        #: quantifier collapse) may be used.  ``False`` pins the engine to
        #: the PR-3 behavior -- the baseline of the ``bitset_vs_compiled``
        #: benchmark gate and half of the equivalence suite.
        self._use_bitset = use_bitset
        #: Per level, per node index: candidate certificate codes, in the
        #: reference solver's enumeration order.
        self._candidate_codes: List[List[List[int]]] = [
            compiled.candidate_codes(materialize_space(space, graph, self.ids))
            for space in self.spaces
        ]
        #: Per level, per node: the candidate codes as one packed bitmask;
        #: plus the vacuity tables gating the quantifier collapse.  Built
        #: lazily on the first bitset dispatch -- rule-less instances and
        #: ``use_bitset=False`` baselines never read them.
        self._candidate_masks: Optional[List[List[int]]] = None
        self._level_has_empty: Optional[List[bool]] = None
        self._nonempty_below: Optional[List[bool]] = None
        self._state = compiled.new_state(len(self.spaces))
        self._state.sync()
        self._transposition = LRUCache(transposition_cap)
        # checkable_at[p]: node indices whose ball is contained in 0..p (the
        # innermost backtracking search checks them as soon as p is set).
        self._checkable_at: List[List[int]] = [[] for _ in range(compiled.n)]
        for u in range(compiled.n):
            self._checkable_at[compiled.balls[u][-1]].append(u)
        #: Per node: its graph neighbors with a smaller index (lazily built;
        #: the pairwise bitset search filters against exactly these).
        self._lower_neighbors: Optional[List[List[int]]] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_game(
        cls,
        machine: NodeMachine,
        graph: LabeledGraph,
        ids: Mapping[Node, str],
        spaces: Sequence[CertificateSpace],
    ) -> "CompiledGameEngine":
        """An engine backed by the process-wide shared compiled instance."""
        return cls(machine, graph, ids, spaces, instance=compile_instance(machine, graph, ids))

    # ------------------------------------------------------------------
    # Game values (GameEngine-compatible API)
    # ------------------------------------------------------------------
    def eve_wins(
        self,
        prefix: Sequence[Quantifier],
        fixed: Optional[Sequence[Mapping[Node, str]]] = None,
    ) -> bool:
        """Whether Eve wins the game with the given quantifier prefix."""
        if len(self.spaces) != len(prefix):
            raise ValueError("there must be exactly one certificate space per quantifier")
        prefix = tuple(prefix)
        self._state.sync()
        fixed = list(fixed or [])
        for level, assignment in enumerate(fixed):
            self._load_level(level, assignment)
        return self._value(prefix, len(fixed))

    def sigma_value(self) -> bool:
        """Game value with Eve moving first (Sigma^lp membership)."""
        return self.eve_wins(sigma_prefix(len(self.spaces)))

    def pi_value(self) -> bool:
        """Game value with Adam moving first (Pi^lp membership)."""
        return self.eve_wins(pi_prefix(len(self.spaces)))

    def winning_first_move(self, prefix: Sequence[Quantifier]) -> Optional[Dict[Node, str]]:
        """A winning first move for the owner of the first quantifier, if any.

        Enumeration order matches the reference solver's, so all three
        solvers (exhaustive, PR-1 engine, compiled engine) return the same
        move.
        """
        if not prefix:
            raise ValueError("the game must have at least one quantifier")
        if len(self.spaces) != len(prefix):
            raise ValueError("there must be exactly one certificate space per quantifier")
        prefix = tuple(prefix)
        self._state.sync()
        alphabet = self.compiled.alphabet
        level_codes = self._state.codes[0] if self.spaces else None
        for _ in self._enumerate_level(0):
            value = self._value(prefix, 1)
            if prefix[0] is Quantifier.EXISTS and value:
                return {u: alphabet[level_codes[i]] for i, u in enumerate(self.nodes)}
            if prefix[0] is Quantifier.FORALL and not value:
                return {u: alphabet[level_codes[i]] for i, u in enumerate(self.nodes)}
        return None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _load_level(self, level: int, assignment: Mapping[Node, str]) -> None:
        compiled = self.compiled
        codes = [compiled.intern(assignment.get(u, "")) for u in self.nodes]
        state = self._state
        state.sync()  # interning may have rebased
        for v, code in enumerate(codes):
            state.set_code(level, v, code)

    def _enumerate_level(self, level: int) -> Iterator[None]:
        """Odometer enumeration of one level, in ``itertools.product`` order.

        Each step applies single-node deltas to the coded state instead of
        materializing an assignment dict; yields once per combination.
        """
        candidates = self._candidate_codes[level]
        if any(not node_candidates for node_candidates in candidates):
            return
        state = self._state
        n = len(candidates)
        positions = [0] * n
        for v in range(n):
            state.set_code(level, v, candidates[v][0])
        while True:
            yield None
            v = n - 1
            while v >= 0 and positions[v] == len(candidates[v]) - 1:
                positions[v] = 0
                state.set_code(level, v, candidates[v][0])
                v -= 1
            if v < 0:
                return
            positions[v] += 1
            state.set_code(level, v, candidates[v][positions[v]])

    def _value(self, prefix: Tuple[Quantifier, ...], depth: int) -> bool:
        if depth == len(prefix):
            return self.compiled.accepts_state(self._state, self.stats)

        state = self._state
        frozen = tuple(state.ensure_full()[:depth]) if depth else ()
        key = (prefix[depth:], self.compiled.generation, frozen)
        cached = self._transposition.get(key, MISSING)
        if cached is not MISSING:
            return cached

        quantifier = prefix[depth]
        if depth == len(prefix) - 1:
            value = self._innermost(quantifier, depth)
        elif self._use_bitset and self._collapsible(depth):
            value = self._collapsed_value(quantifier, depth)
        elif quantifier is Quantifier.EXISTS:
            value = any(self._value(prefix, depth + 1) for _ in self._enumerate_level(depth))
        else:
            value = all(self._value(prefix, depth + 1) for _ in self._enumerate_level(depth))
        self._transposition.put(key, value)
        return value

    def _candidate_mask_table(self) -> List[List[int]]:
        masks = self._candidate_masks
        if masks is None:
            masks = self._candidate_masks = [
                [mask_of_codes(codes) for codes in level_candidates]
                for level_candidates in self._candidate_codes
            ]
        return masks

    def _vacuity_tables(self) -> Tuple[List[bool], List[bool]]:
        """Per level: has-empty-candidate-list; per depth: all-deeper-nonempty."""
        has_empty = self._level_has_empty
        if has_empty is None:
            has_empty = self._level_has_empty = [
                any(not codes for codes in level_candidates)
                for level_candidates in self._candidate_codes
            ]
            nonempty_below = [True] * len(self.spaces)
            clear = True
            for level in range(len(self.spaces) - 1, -1, -1):
                nonempty_below[level] = clear
                clear = clear and not has_empty[level]
            self._nonempty_below = nonempty_below
        return has_empty, self._nonempty_below

    def _collapsible(self, depth: int) -> bool:
        """Whether the subtree below *depth* cannot change the leaf verdict.

        True when the instance has a usable rule reading a level ``<= depth``
        (so every leaf verdict is already determined once *depth* is
        assigned) *and* no deeper level has an empty candidate list (an
        empty level makes a FORALL below vacuously true regardless of the
        verdict, so collapsing would be unsound).
        """
        rule = self.compiled._usable_rule(len(self.spaces))
        if rule is None or rule.level > depth:
            return False
        return self._vacuity_tables()[1][depth]

    def _collapsed_value(self, quantifier: Quantifier, depth: int) -> bool:
        """The value at *depth* without enumerating the irrelevant subtree.

        With the leaf verdict a function of the rule's level alone, the
        quantifiers below *depth* quantify over a constant: the value at
        *depth* is the innermost search on *depth* itself (when the rule
        reads exactly this level) or the already-determined unanimity
        verdict (when the rule's level is above).  Empty candidate lists at
        *depth* keep the reference solver's vacuity semantics.
        """
        rule = self.compiled.rule
        if rule.level == depth:
            return self._innermost(quantifier, depth)
        if self._vacuity_tables()[0][depth]:
            return quantifier is Quantifier.FORALL
        return self.compiled.accepts_state(self._state, self.stats)

    # ------------------------------------------------------------------
    # Innermost level: pruned search on coded state
    # ------------------------------------------------------------------
    def _innermost(self, quantifier: Quantifier, level: int) -> bool:
        candidates = self._candidate_codes[level]
        if any(not node_candidates for node_candidates in candidates):
            # No assignment exists at all: the existential player is stuck,
            # the universal statement is vacuously true.
            return quantifier is Quantifier.FORALL
        if self._use_bitset:
            compiled = self.compiled
            rule = compiled._usable_rule(self._state.levels)
            if rule is not None and rule.level == level:
                kernel = compiled.bitset_kernel()
                if kernel is not None and kernel.pairwise:
                    if quantifier is Quantifier.EXISTS:
                        return self._exists_bitset_pairwise(level, kernel)
                    return self._forall_bitset_pairwise(level, kernel)
                if kernel is not None and quantifier is Quantifier.EXISTS:
                    return self._exists_bitset_star(level, kernel, 0)
                # Star FORALL keeps the generic per-ball decomposition.
        if quantifier is Quantifier.EXISTS:
            return self._exists_accepting(level, 0)
        return self._forall_accepting(level)

    def _lower_neighbor_lists(self) -> List[List[int]]:
        lower = self._lower_neighbors
        if lower is None:
            compiled = self.compiled
            indptr, indices = compiled.adj_indptr, compiled.adj_indices
            lower = [
                [w for w in indices[indptr[u] : indptr[u + 1]] if w < u]
                for u in range(compiled.n)
            ]
            self._lower_neighbors = lower
        return lower

    def _exists_bitset_pairwise(self, level: int, kernel) -> bool:
        """Backtracking search over viability *masks* (pairwise rules).

        At each position the acceptable codes are one integer:
        ``own & candidates & AND(pair masks of already-assigned neighbors)``.
        Whole code-blocks die in the intersections before anything is
        assigned, and the loop maintains nothing but a scratch code list --
        no packed keys, no memo traffic, no per-candidate predicate calls.
        Sound because a pairwise leaf accepts iff every node's ``own_ok``
        and every edge's (mutual) ``pair_ok`` hold: the filters enforce
        exactly those constraints over the assigned prefix, so reaching
        position ``n`` is acceptance and a dead mask is a refutation.
        """
        compiled = self.compiled
        n = compiled.n
        if n == 0:
            return True
        codes = list(self._state.codes[compiled.rule.level])
        labels = compiled.labels
        own_masks = kernel.own_masks
        cand_masks = self._candidate_mask_table()[level]
        lower = self._lower_neighbor_lists()
        stats = self.stats
        uniform = compiled._uniform_labels
        has_pair = kernel.has_pair
        pair_mask = kernel.pair_mask
        pair_uniform = kernel._pair_uniform
        build_uniform = kernel.pair_mask_uniform
        masks = [0] * n
        masks[0] = own_masks[0] & cand_masks[0]
        position = 0
        while True:
            m = masks[position]
            if m:
                low = m & -m
                masks[position] = m ^ low
                codes[position] = low.bit_length() - 1
                position += 1
                if position == n:
                    return True
                viable = own_masks[position] & cand_masks[position]
                if viable and has_pair:
                    if uniform:
                        for w in lower[position]:
                            pm = pair_uniform[codes[w]]
                            if pm is None:
                                pm = build_uniform(codes[w])
                            viable &= pm
                            if not viable:
                                break
                    else:
                        label = labels[position]
                        for w in lower[position]:
                            viable &= pair_mask(label, labels[w], codes[w])
                            if not viable:
                                break
                if not viable:
                    stats.bitset_prunes += 1
                masks[position] = viable
            else:
                position -= 1
                if position < 0:
                    return False

    def _forall_bitset_pairwise(self, level: int, kernel) -> bool:
        """Per-ball universal check as mask comparisons (pairwise rules).

        A node rejects under *some* ball assignment iff some neighbor-code
        combination leaves a candidate own-code outside the intersection of
        its pair masks -- one subset test per combination instead of one
        verdict per ``(own code, combination)`` pair.  Mutual masks are
        equivalent here: any one-directional violation is caught in the
        offending endpoint's own iteration, exactly as in the reference
        per-ball decomposition.
        """
        compiled = self.compiled
        candidates = self._candidate_codes[level]
        cand_masks = self._candidate_mask_table()[level]
        own_masks = kernel.own_masks
        labels = compiled.labels
        indptr, indices = compiled.adj_indptr, compiled.adj_indices
        has_pair = kernel.has_pair
        uniform = compiled._uniform_labels
        for u in range(compiled.n):
            cand = cand_masks[u]
            if cand & ~own_masks[u]:
                return False
            if not has_pair:
                continue
            neighbors = indices[indptr[u] : indptr[u + 1]]
            if not neighbors:
                continue
            label = labels[u]
            rows: List[List[int]] = []
            for w in neighbors:
                row = [
                    kernel.pair_mask_uniform(cw)
                    if uniform
                    else kernel.pair_mask(label, labels[w], cw)
                    for cw in candidates[w]
                ]
                # Distinct masks only: equal masks yield equal verdicts.
                rows.append(list(dict.fromkeys(row)))
            positions = [0] * len(rows)
            while True:
                allowed = cand
                rejected = False
                for i, row in enumerate(rows):
                    allowed &= row[positions[i]]
                    if cand & ~allowed:
                        rejected = True
                        break
                if rejected:
                    return False
                i = len(rows) - 1
                while i >= 0 and positions[i] == len(rows[i]) - 1:
                    positions[i] = 0
                    i -= 1
                if i < 0:
                    break
                positions[i] += 1
        return True

    def _exists_bitset_star(self, level: int, kernel, position: int) -> bool:
        """Backtracking search with memoized slot masks (star rules).

        Follows the reference schedule (a node is checked once its ball is
        fully assigned), but each checkable node contributes a *bitmask*
        over the position's candidate codes -- evaluated once per distinct
        neighborhood configuration and cached on the kernel -- so repeated
        configurations prune whole code-blocks with an ``&``.
        """
        compiled = self.compiled
        if position == compiled.n:
            return True
        state = self._state
        stats = self.stats
        candidates = self._candidate_codes[level][position]
        viable = self._candidate_mask_table()[level][position]
        for u in self._checkable_at[position]:
            viable &= kernel.star_slot_mask(u, position, state, candidates, stats)
            if not viable:
                stats.bitset_prunes += 1
                return False
        set_code = state.set_code
        for code in candidates:
            if not (viable >> code) & 1:
                continue
            set_code(level, position, code)
            if self._exists_bitset_star(level, kernel, position + 1):
                return True
        return False

    def _exists_accepting(self, level: int, position: int) -> bool:
        """Backtracking search for an accepting assignment, one code at a time.

        Mirrors the PR-1 search exactly (node order, candidate order, prune
        on the first rejecting fully-assigned ball) but each step is a
        single ``set_code`` delta plus packed-key memo lookups.
        """
        compiled = self.compiled
        if position == compiled.n:
            return True
        state = self._state
        stats = self.stats
        checkable = self._checkable_at[position]
        memo_nodes = compiled.memo_nodes
        keys = state.keys
        levels = state.levels
        set_code = state.set_code
        # When the instance has a usable pairwise rule, the whole
        # memo-miss path is inlined here: kernel call plus memo insert,
        # skipping two dispatch frames on the engine's innermost loop.
        rule = compiled._usable_rule(levels) if compiled._rule_is_pairwise else None
        rule_codes = (
            state.codes[rule.level] if rule is not None and rule.level < levels else None
        )
        inline_pairwise = rule is not None
        pairwise = compiled._pairwise_codes
        for code in self._candidate_codes[level][position]:
            set_code(level, position, code)
            accepted = True
            for u in checkable:
                # Inlined memo fast path (node_verdict_state, minus a call).
                memo = memo_nodes[u]
                memo_key = (keys[u] << 5) | levels
                verdict = memo.get(memo_key, MISSING)
                if verdict is MISSING:
                    stats.node_misses += 1
                    compiled.memo_misses += 1
                    if inline_pairwise:
                        verdict = pairwise(u, rule_codes)
                        cap = compiled.memo_cap
                        if cap is None or compiled.memo_entries < cap:
                            if memo_key not in memo:
                                compiled.memo_entries += 1
                            memo[memo_key] = verdict
                        else:
                            compiled._memo_put(u, memo_key, verdict)
                    else:
                        # Undo the double count; the full path recounts.
                        stats.node_misses -= 1
                        compiled.memo_misses -= 1
                        verdict = compiled.node_verdict_state(u, state, stats)
                else:
                    stats.node_hits += 1
                    compiled.memo_hits += 1
                if not verdict:
                    accepted = False
                    break
            if accepted and self._exists_accepting(level, position + 1):
                return True
        return False

    def _forall_accepting(self, level: int) -> bool:
        """Whether every innermost assignment makes every node accept.

        Per-ball decomposition as in PR 1 -- a rejecting leaf exists iff
        some node rejects under some assignment of its ball alone -- with
        the ball product enumerated by a coded odometer.
        """
        compiled = self.compiled
        state = self._state
        stats = self.stats
        candidates = self._candidate_codes[level]
        for u in range(compiled.n):
            ball = compiled.balls[u]
            ball_candidates = [candidates[v] for v in ball]
            positions = [0] * len(ball)
            for slot, v in enumerate(ball):
                state.set_code(level, v, ball_candidates[slot][0])
            while True:
                if not compiled.node_verdict_state(u, state, stats):
                    return False
                slot = len(ball) - 1
                while slot >= 0 and positions[slot] == len(ball_candidates[slot]) - 1:
                    positions[slot] = 0
                    state.set_code(level, ball[slot], ball_candidates[slot][0])
                    slot -= 1
                if slot < 0:
                    break
                positions[slot] += 1
                state.set_code(level, ball[slot], ball_candidates[slot][positions[slot]])
        return True

    # ------------------------------------------------------------------
    def transposition_info(self) -> Dict[str, Optional[int]]:
        """Hit/miss/eviction counters of the transposition cache."""
        return self._transposition.info()

    def publish_metrics(self, registry, labels: Optional[Dict[str, str]] = None) -> None:
        """Mirror the transposition-cache counters into *registry* gauges
        (``repro_engine_transposition_*``); see
        :meth:`CompiledInstance.publish_metrics`."""
        info = self.transposition_info()
        for field in ("size", "hits", "misses", "evictions"):
            registry.gauge(f"repro_engine_transposition_{field}", labels=labels).set(
                info[field] or 0
            )

    def __repr__(self) -> str:
        return (
            f"CompiledGameEngine(levels={len(self.spaces)}, nodes={len(self.nodes)}, "
            f"transpositions={len(self._transposition)}, compiled={self.compiled!r})"
        )


# ----------------------------------------------------------------------
# Instance sharing
# ----------------------------------------------------------------------
class InstanceCompiler:
    """Compiles instances and shares them per ``(machine, graph, ids)``.

    The registry is weak in the machine and holds at most *limit* instances
    per machine (FIFO eviction), mirroring the shared-evaluator registry.
    Machines that do not support weak references get a fresh instance each
    time.
    """

    def __init__(self, limit: int = 64) -> None:
        self._registry = WeakSharedRegistry(limit=limit)

    def compile(
        self, machine: NodeMachine, graph: LabeledGraph, ids: Mapping[Node, str]
    ) -> CompiledInstance:
        key = (graph, tuple(ids[u] for u in graph.nodes))
        return self._registry.get_or_build(
            machine, key, lambda: CompiledInstance(machine, graph, ids)
        )


_DEFAULT_COMPILER = InstanceCompiler()


def compile_instance(
    machine: NodeMachine, graph: LabeledGraph, ids: Mapping[Node, str]
) -> CompiledInstance:
    """A :class:`CompiledInstance` shared process-wide per ``(machine, graph, ids)``."""
    return _DEFAULT_COMPILER.compile(machine, graph, ids)
