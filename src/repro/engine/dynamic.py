"""Dynamic graphs with verdict repair: the incremental-scenario subsystem.

Every workload so far treated a game instance as immutable: a new graph
meant a new :class:`~repro.engine.compiled.CompiledInstance`, a cold memo
and a from-scratch solve.  The online service's north star, though, is
serving "who wins *now*" over graphs that mutate underneath the daemon --
and the compiled core was built for exactly that repair: packed restriction
keys are maintained under single-node deltas, canonical ball signatures
name a node's computation by nothing but its local neighborhood, and the
generation counter already makes every cache rebase-safe.

:class:`MutableInstance` is the mutable layer on top.  It owns a private
compiled instance (never the shared :func:`~repro.engine.compiled.compile_instance`
registry -- mutation in place must not leak into other games) and applies
four delta kinds:

* :class:`EdgeInsert` / :class:`EdgeDelete` -- toggle one edge (deletions
  that would disconnect the graph are rejected; labeled graphs are
  connected by definition),
* :class:`SetLabel` -- flip one node's bit-string label,
* :class:`SetIdentifier` -- identifier churn at one node.

Each delta is intersected with the dependency balls to compute the **dirty
set**: the nodes whose ball membership, ball content (labels, identifiers)
or ball-internal edges may have changed.  For a label or identifier delta
at ``v`` that is exactly ``ball(v, r)`` (by symmetry, the nodes whose ball
contains ``v``); for an edge delta ``{u, v}`` it is the union of the balls
of both endpoints in the *old* and the *new* adjacency (a shortest path
can only change by crossing the toggled edge, so any node whose ball
gains, loses or rewires a member lies in one of the four balls).  The
compiled instance is then :meth:`~repro.engine.compiled.CompiledInstance.rewire`-d
in place: dirty nodes lose their memoized verdicts and canonical
signatures, clean nodes keep them, and the next :meth:`MutableInstance.verdict`
re-evaluates only what the mutation actually touched.

The repair claim -- every repaired verdict equals a full recompute equals
the exhaustive oracle -- is enforced by the hypothesis-driven differential
harness in ``tests/test_dynamic.py`` and benchmarked (with a CI gate) by
``benchmarks/bench_dynamic.py``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import (
    Any,
    ClassVar,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.engine.batch import GameInstance
from repro.engine.compiled import CompiledGameEngine, CompiledInstance
from repro.graphs.labeled_graph import LabeledGraph, Node, _check_bitstring
from repro.hierarchy.certificate_spaces import CertificateSpace, materialize_space
from repro.hierarchy.game import Quantifier

#: Compact the interned alphabet only when it exceeds this multiple of the
#: live candidate alphabet (compaction clears every memo, so it must stay
#: rare under ordinary churn; identifier-heavy candidate spaces are the
#: workload that actually strands codes).
_COMPACT_FACTOR = 4
_COMPACT_SLACK = 8


class DeltaError(ValueError):
    """A mutation that cannot be applied to the current graph state."""


# ----------------------------------------------------------------------
# Deltas
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EdgeInsert:
    """Insert the edge ``{u, v}`` (must not already exist)."""

    u: Node
    v: Node
    kind: ClassVar[str] = "edge-insert"


@dataclass(frozen=True)
class EdgeDelete:
    """Delete the edge ``{u, v}`` (must exist and keep the graph connected)."""

    u: Node
    v: Node
    kind: ClassVar[str] = "edge-delete"


@dataclass(frozen=True)
class SetLabel:
    """Set *node*'s label to the bit string *label*."""

    node: Node
    label: str
    kind: ClassVar[str] = "set-label"


@dataclass(frozen=True)
class SetIdentifier:
    """Set *node*'s identifier to *identifier* (identifier churn)."""

    node: Node
    identifier: str
    kind: ClassVar[str] = "set-id"


Delta = Union[EdgeInsert, EdgeDelete, SetLabel, SetIdentifier]

#: Wire kind -> delta class, shared with the service protocol layer.
DELTA_KINDS: Dict[str, type] = {
    EdgeInsert.kind: EdgeInsert,
    EdgeDelete.kind: EdgeDelete,
    SetLabel.kind: SetLabel,
    SetIdentifier.kind: SetIdentifier,
}


def delta_to_wire(delta: Delta, nodes: Sequence[Node]) -> Dict[str, Any]:
    """The JSON-ready wire form of *delta*, addressing nodes by index."""
    index = {u: i for i, u in enumerate(nodes)}
    if isinstance(delta, (EdgeInsert, EdgeDelete)):
        return {"kind": delta.kind, "u": index[delta.u], "v": index[delta.v]}
    if isinstance(delta, SetLabel):
        return {"kind": delta.kind, "node": index[delta.node], "label": delta.label}
    if isinstance(delta, SetIdentifier):
        return {"kind": delta.kind, "node": index[delta.node], "id": delta.identifier}
    raise DeltaError(f"unknown delta {delta!r}")


def delta_from_wire(body: Mapping[str, Any], nodes: Sequence[Node]) -> Delta:
    """Decode one wire delta, mapping node indices back to node identities.

    Structural defects (unknown kind, missing or mistyped fields, indices
    out of range) raise :class:`DeltaError`; the protocol layer maps those
    to the typed ``bad-delta`` error code.
    """
    kind = body.get("kind")
    if kind not in DELTA_KINDS:
        raise DeltaError(
            f"unknown delta kind {kind!r}; known: {sorted(DELTA_KINDS)}"
        )

    def node_at(field: str) -> Node:
        value = body.get(field)
        if isinstance(value, bool) or not isinstance(value, int):
            raise DeltaError(f"delta field {field!r} must be a node index")
        if not 0 <= value < len(nodes):
            raise DeltaError(
                f"node index {value} out of range (graph has {len(nodes)} nodes)"
            )
        return nodes[value]

    if kind in (EdgeInsert.kind, EdgeDelete.kind):
        return DELTA_KINDS[kind](u=node_at("u"), v=node_at("v"))
    if kind == SetLabel.kind:
        label = body.get("label")
        if not isinstance(label, str):
            raise DeltaError("set-label requires a string 'label' field")
        return SetLabel(node=node_at("node"), label=label)
    identifier = body.get("id")
    if not isinstance(identifier, str):
        raise DeltaError("set-id requires a string 'id' field")
    return SetIdentifier(node=node_at("node"), identifier=identifier)


@dataclass(frozen=True)
class RepairReport:
    """What one applied delta cost: the dirty set and whether repair was partial."""

    delta: Delta
    dirty: Tuple[int, ...]
    full_rebuild: bool
    changed: bool
    seconds: float


# ----------------------------------------------------------------------
# The mutable layer
# ----------------------------------------------------------------------
def _ball_nodes(adjacency: Mapping[Node, Set[Node]], source: Node, radius: int) -> Set[Node]:
    """BFS ball of *source* in a dict-of-sets adjacency."""
    seen = {source}
    frontier = [source]
    for _ in range(radius):
        if not frontier:
            break
        next_frontier: List[Node] = []
        for u in frontier:
            for w in adjacency[u]:
                if w not in seen:
                    seen.add(w)
                    next_frontier.append(w)
        frontier = next_frontier
    return seen


def _insert_id_clash(
    adjacency: Mapping[Node, Set[Node]],
    ids: Mapping[Node, str],
    u: Node,
    v: Node,
) -> Optional[str]:
    """The identifier a new edge ``{u, v}`` would duplicate within distance 2.

    Inserting the edge only shortens distances along paths through it, so
    the new within-2 pairs are ``(u, v)`` itself and each endpoint against
    the other endpoint's neighbors.  Returns ``None`` when 1-local
    uniqueness survives.
    """
    if ids[u] == ids[v]:
        return ids[u]
    for a, b in ((u, v), (v, u)):
        for w in adjacency[b]:
            if w != a and ids[w] == ids[a]:
                return ids[a]
    return None


def _connected_without(
    adjacency: Mapping[Node, Set[Node]], u: Node, v: Node
) -> bool:
    """Whether the graph stays connected after removing the edge ``{u, v}``.

    It suffices to check that *v* is still reachable from *u*: the edge is
    a bridge exactly when it is not.
    """
    seen = {u}
    frontier = [u]
    while frontier:
        next_frontier: List[Node] = []
        for x in frontier:
            for w in adjacency[x]:
                if x == u and w == v:
                    continue
                if w == v:
                    return True
                if w not in seen:
                    seen.add(w)
                    next_frontier.append(w)
        frontier = next_frontier
    return False


class MutableInstance:
    """A certificate-game instance under mutation, with incremental repair.

    Holds the current graph state (node set fixed; adjacency, labels and
    identifiers mutable) plus a private compiled instance that is repaired
    in place on every delta.  Verdicts are computed lazily: a mutation only
    pays for the dirty-set bookkeeping and the in-place
    :meth:`~repro.engine.compiled.CompiledInstance.rewire`; the next
    :meth:`verdict` call rebuilds the (cheap) engine shell and re-evaluates
    exactly the leaves whose memo entries the mutation invalidated.

    An attached :class:`~repro.engine.canonical.CanonicalVerdictCache`
    survives mutations by construction: its keys embed the ball-local
    identifiers, labels and edges, so a mutated neighborhood gets a fresh
    key and a reverted one re-hits its old entry.
    """

    def __init__(
        self,
        machine,
        graph: LabeledGraph,
        ids: Mapping[Node, str],
        spaces: Sequence[CertificateSpace],
        prefix: Sequence[Quantifier],
        name: str = "",
        use_bitset: bool = True,
        canonical=None,
    ) -> None:
        if len(spaces) != len(prefix):
            raise ValueError("there must be exactly one certificate space per quantifier")
        self.machine = machine
        self.spaces: List[CertificateSpace] = list(spaces)
        self.prefix: Tuple[Quantifier, ...] = tuple(prefix)
        self.name = name
        self.use_bitset = use_bitset
        self.graph = graph
        self._nodes: Tuple[Node, ...] = graph.nodes
        self._index: Dict[Node, int] = {u: i for i, u in enumerate(self._nodes)}
        self._adjacency: Dict[Node, Set[Node]] = {
            u: set(graph.neighbors(u)) for u in self._nodes
        }
        self._labels: Dict[Node, str] = {u: graph.label(u) for u in self._nodes}
        self._ids: Dict[Node, str] = dict(ids)
        # A private compiled instance -- never the shared compile_instance
        # registry, which hands the same object to unrelated engines.
        self.compiled = CompiledInstance(machine, graph, ids)
        if canonical is not None:
            self.compiled.attach_canonical(canonical)
        self._engine: Optional[CompiledGameEngine] = None
        self._verdict: Optional[bool] = None
        self._key: Optional[str] = None
        self.mutations = 0
        self.noops = 0
        self.dirty_total = 0
        self.full_rebuilds = 0
        self.compactions = 0
        self.verdicts_computed = 0
        self.repair_seconds = 0.0

    @classmethod
    def from_game_instance(cls, instance: GameInstance, **kwargs) -> "MutableInstance":
        """A mutable copy of a (static) :class:`~repro.engine.batch.GameInstance`."""
        return cls(
            machine=instance.machine,
            graph=instance.graph,
            ids=instance.ids,
            spaces=instance.spaces,
            prefix=instance.prefix,
            name=instance.name,
            **kwargs,
        )

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[Node, ...]:
        """The (fixed) node set, in compiled index order."""
        return self._nodes

    @property
    def ids(self) -> Dict[Node, str]:
        """A copy of the current identifier assignment."""
        return dict(self._ids)

    def as_game_instance(self) -> GameInstance:
        """An immutable snapshot of the current state (for recompute/oracle)."""
        return GameInstance(
            machine=self.machine,
            graph=self.graph,
            ids=dict(self._ids),
            spaces=list(self.spaces),
            prefix=list(self.prefix),
            name=self.name or "dynamic",
        )

    def key(self) -> str:
        """The content-addressed store key of the *current* state.

        Mutations change the graph payload, so the key changes with every
        effective delta -- which is exactly why the service's LRU/store
        tiers can never serve a pre-mutation verdict for a mutated game.
        """
        if self._key is None:
            from repro.sweep.fingerprint import game_instance_key

            self._key = game_instance_key(self.as_game_instance())
        return self._key

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def apply(self, delta: Delta) -> RepairReport:
        """Apply one delta, repairing the compiled instance in place.

        Raises :class:`DeltaError` when the delta does not fit the current
        state (unknown node, duplicate edge, bridge deletion, malformed
        label); the state is unchanged in that case.
        """
        start = time.perf_counter()
        dirty_nodes = self._validate_and_dirty(delta)
        if dirty_nodes is None:
            # No-op delta (same label/identifier): nothing to repair.
            self.noops += 1
            return RepairReport(
                delta=delta,
                dirty=(),
                full_rebuild=False,
                changed=False,
                seconds=time.perf_counter() - start,
            )
        self._mutate_state(delta)
        graph = LabeledGraph(
            self._nodes,
            [tuple(edge) for edge in self._edge_set()],
            labels=self._labels,
        )
        self.graph = graph
        dirty_indices = {self._index[u] for u in dirty_nodes}
        invalidated = self.compiled.rewire(graph, self._ids, dirty_indices)
        full_rebuild = len(invalidated) == len(self._nodes) and len(dirty_indices) < len(
            self._nodes
        )
        if full_rebuild:
            self.full_rebuilds += 1
        self.mutations += 1
        self.dirty_total += len(invalidated)
        self._engine = None
        self._verdict = None
        self._key = None
        seconds = time.perf_counter() - start
        self.repair_seconds += seconds
        return RepairReport(
            delta=delta,
            dirty=invalidated,
            full_rebuild=full_rebuild,
            changed=True,
            seconds=seconds,
        )

    def apply_all(self, deltas: Iterable[Delta]) -> List[RepairReport]:
        """Apply a whole delta stream, returning one report per delta."""
        return [self.apply(delta) for delta in deltas]

    def inverse_of(self, delta: Delta) -> Delta:
        """The delta undoing *delta* from the *current* state (pre-apply)."""
        if isinstance(delta, EdgeInsert):
            return EdgeDelete(u=delta.u, v=delta.v)
        if isinstance(delta, EdgeDelete):
            return EdgeInsert(u=delta.u, v=delta.v)
        if isinstance(delta, SetLabel):
            self._require_node(delta.node)
            return SetLabel(node=delta.node, label=self._labels[delta.node])
        if isinstance(delta, SetIdentifier):
            self._require_node(delta.node)
            return SetIdentifier(node=delta.node, identifier=self._ids[delta.node])
        raise DeltaError(f"unknown delta {delta!r}")

    def apply_batch(self, deltas: Sequence[Delta]) -> List[RepairReport]:
        """Apply *deltas* atomically: on any failure, roll back and re-raise.

        The service's ``mutate`` op promises all-or-nothing batches; the
        rollback replays recorded inverse deltas in reverse order, which
        always succeeds because it only retraces states the graph was
        just in.
        """
        reports: List[RepairReport] = []
        undo: List[Delta] = []
        try:
            for delta in deltas:
                inverse = self.inverse_of(delta)
                reports.append(self.apply(delta))
                undo.append(inverse)
        except DeltaError:
            for inverse in reversed(undo):
                self.apply(inverse)
            raise
        return reports

    def _edge_set(self) -> Set[frozenset]:
        return {
            frozenset((u, v))
            for u, neighbors in self._adjacency.items()
            for v in neighbors
        }

    def _require_node(self, node: Node) -> None:
        if node not in self._index:
            raise DeltaError(f"unknown node {node!r}")

    def _validate_and_dirty(self, delta: Delta) -> Optional[Set[Node]]:
        """Validate *delta* and return its dirty node set (``None`` = no-op).

        For label/identifier deltas at ``v`` the dirty set is ``ball(v, r)``:
        by symmetry those are exactly the nodes whose ball contains ``v``.
        For an edge delta ``{u, v}`` it is the union of both endpoints'
        balls in the old *and* the new adjacency: any changed shortest path
        crosses the toggled edge, so every node whose ball membership or
        ball-internal edges change lies within ``r`` of an endpoint before
        or after.  If the mutation flips the direct/simulation decision,
        :meth:`CompiledInstance.rewire` widens to a full rebuild on its own.
        """
        radius = self.compiled.radius
        adjacency = self._adjacency
        if isinstance(delta, SetLabel):
            self._require_node(delta.node)
            try:
                _check_bitstring(delta.label)
            except ValueError as error:
                raise DeltaError(str(error)) from error
            if self._labels[delta.node] == delta.label:
                return None
            return _ball_nodes(adjacency, delta.node, radius)
        if isinstance(delta, SetIdentifier):
            self._require_node(delta.node)
            if not isinstance(delta.identifier, str):
                raise DeltaError("identifier must be a string")
            if self._ids[delta.node] == delta.identifier:
                return None
            # The paper requires 1-locally-unique identifiers (distinct
            # within distance 2); the simulator's views depend on it.
            for other in _ball_nodes(adjacency, delta.node, 2):
                if other != delta.node and self._ids[other] == delta.identifier:
                    raise DeltaError(
                        f"identifier {delta.identifier!r} already used by {other!r} "
                        f"within distance 2 of {delta.node!r} "
                        "(identifiers must stay 1-locally unique)"
                    )
            return _ball_nodes(adjacency, delta.node, radius)
        if isinstance(delta, (EdgeInsert, EdgeDelete)):
            u, v = delta.u, delta.v
            self._require_node(u)
            self._require_node(v)
            if u == v:
                raise DeltaError("self-loops are not allowed (graphs are simple)")
            present = v in adjacency[u]
            if isinstance(delta, EdgeInsert):
                if present:
                    raise DeltaError(f"edge ({u!r}, {v!r}) already exists")
                # The only pairs an insert pulls within distance 2 are
                # (u, v) and endpoint-vs-other-endpoint's-neighbors, so
                # 1-local uniqueness reduces to these checks.
                clash = _insert_id_clash(adjacency, self._ids, u, v)
                if clash is not None:
                    raise DeltaError(
                        f"inserting edge ({u!r}, {v!r}) would place equal "
                        f"identifiers {clash!r} within distance 2 "
                        "(identifiers must stay 1-locally unique)"
                    )
            if isinstance(delta, EdgeDelete):
                if not present:
                    raise DeltaError(f"edge ({u!r}, {v!r}) does not exist")
                if not _connected_without(adjacency, u, v):
                    raise DeltaError(
                        f"deleting edge ({u!r}, {v!r}) would disconnect the graph"
                    )
            dirty = _ball_nodes(adjacency, u, radius) | _ball_nodes(adjacency, v, radius)
            # Toggle, take the new-adjacency balls, toggle back: validation
            # must not commit anything.
            self._toggle_edge(u, v)
            try:
                dirty |= _ball_nodes(adjacency, u, radius)
                dirty |= _ball_nodes(adjacency, v, radius)
            finally:
                self._toggle_edge(u, v)
            return dirty
        raise DeltaError(f"unknown delta {delta!r}")

    def _toggle_edge(self, u: Node, v: Node) -> None:
        if v in self._adjacency[u]:
            self._adjacency[u].discard(v)
            self._adjacency[v].discard(u)
        else:
            self._adjacency[u].add(v)
            self._adjacency[v].add(u)

    def _mutate_state(self, delta: Delta) -> None:
        if isinstance(delta, SetLabel):
            self._labels[delta.node] = delta.label
        elif isinstance(delta, SetIdentifier):
            self._ids[delta.node] = delta.identifier
        else:
            self._toggle_edge(delta.u, delta.v)

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------
    def verdict(self) -> bool:
        """Eve's verdict for the current state (cached until the next delta)."""
        if self._verdict is None:
            engine = self._ensure_engine()
            self._verdict = engine.eve_wins(self.prefix)
            self.verdicts_computed += 1
        return self._verdict

    def note_verdict(self, verdict: bool) -> None:
        """Adopt an externally known verdict for the *current* state.

        Lets a cache tier that answered by content-addressed key (same
        state, solved earlier) prime the lazy verdict without re-solving.
        """
        self._verdict = bool(verdict)

    def _ensure_engine(self) -> CompiledGameEngine:
        if self._engine is None:
            self._maybe_compact()
            self._engine = CompiledGameEngine(
                self.machine,
                self.graph,
                self._ids,
                self.spaces,
                instance=self.compiled,
                use_bitset=self.use_bitset,
            )
        return self._engine

    def _maybe_compact(self) -> None:
        """Compact the alphabet when churn stranded most of its codes.

        Compaction clears every memo (codes are renumbered), so it runs
        only when the interned alphabet dwarfs the live candidate alphabet;
        steady-state label flips never trigger it.
        """
        compiled = self.compiled
        if len(compiled.alphabet) <= _COMPACT_SLACK:
            return
        live: Set[str] = set()
        for space in self.spaces:
            live.update(materialize_space(space, self.graph, self._ids).alphabet)
        if len(compiled.alphabet) > _COMPACT_FACTOR * (len(live) + 1) + _COMPACT_SLACK:
            if compiled.compact_alphabet(live):
                self.compactions += 1

    def info(self) -> Dict[str, Any]:
        """Mutation/repair counters, for stats endpoints and tests."""
        return {
            "nodes": len(self._nodes),
            "mutations": self.mutations,
            "noops": self.noops,
            "dirty_total": self.dirty_total,
            "full_rebuilds": self.full_rebuilds,
            "compactions": self.compactions,
            "verdicts_computed": self.verdicts_computed,
            "repair_seconds": round(self.repair_seconds, 6),
            "memo": self.compiled.memo_info(),
        }

    def __repr__(self) -> str:
        return (
            f"MutableInstance(nodes={len(self._nodes)}, mutations={self.mutations}, "
            f"dirty_total={self.dirty_total}, compiled={self.compiled!r})"
        )


def recompute_verdict(instance: GameInstance, use_bitset: bool = True) -> bool:
    """A from-scratch verdict: fresh compiled instance, cold memo, cold engine.

    The baseline the differential harness and the dynamic benchmark compare
    repair against -- what a client without the mutable layer would pay per
    mutation.
    """
    compiled = CompiledInstance(instance.machine, instance.graph, instance.ids)
    engine = CompiledGameEngine(
        instance.machine,
        instance.graph,
        instance.ids,
        instance.spaces,
        instance=compiled,
        use_bitset=use_bitset,
    )
    return engine.eve_wins(instance.prefix)


# ----------------------------------------------------------------------
# Seeded mutation traces
# ----------------------------------------------------------------------
def random_trace(
    graph: LabeledGraph,
    *,
    seed: int = 0,
    steps: int = 16,
    kinds: Sequence[str] = ("label", "edge"),
    labels: Sequence[str] = ("", "0", "1"),
    ids: Optional[Mapping[Node, str]] = None,
    id_pool: Sequence[str] = (),
    hot_nodes: Optional[Sequence[Node]] = None,
) -> List[Delta]:
    """A deterministic, always-valid mutation trace over *graph*.

    Each step draws a kind from *kinds* (``"label"``, ``"edge"``, ``"id"``)
    and a valid move of that kind, simulating the evolving state so that
    edge deletions never disconnect and inserts never duplicate.  *hot_nodes*
    restricts label/identifier churn to a subset -- the "mostly stable"
    workloads whose dirty sets stay small.  Steps with no valid move of the
    drawn kind fall back to a label flip.
    """
    rng = random.Random(seed)
    adjacency: Dict[Node, Set[Node]] = {u: set(graph.neighbors(u)) for u in graph.nodes}
    labels_now: Dict[Node, str] = {u: graph.label(u) for u in graph.nodes}
    ids_now: Dict[Node, str] = dict(ids) if ids is not None else {}
    all_nodes = list(graph.nodes)
    churn_nodes = list(hot_nodes) if hot_nodes is not None else all_nodes
    kinds = tuple(kinds)
    if "id" in kinds and (ids is None or not id_pool):
        raise ValueError("id churn requires both ids= and a nonempty id_pool=")

    def label_move() -> Optional[Delta]:
        node = rng.choice(churn_nodes)
        choices = [value for value in labels if value != labels_now[node]]
        if not choices:
            return None
        return SetLabel(node=node, label=rng.choice(choices))

    def edge_move() -> Optional[Delta]:
        for _ in range(32):
            u, v = rng.sample(all_nodes, 2)
            if v in adjacency[u]:
                if _connected_without(adjacency, u, v):
                    return EdgeDelete(u=u, v=v)
            elif not ids_now or _insert_id_clash(adjacency, ids_now, u, v) is None:
                return EdgeInsert(u=u, v=v)
        return None

    def id_move() -> Optional[Delta]:
        node = rng.choice(churn_nodes)
        taken = {
            ids_now[other]
            for other in _ball_nodes(adjacency, node, 2)
            if other != node
        }
        choices = [
            value
            for value in id_pool
            if value != ids_now.get(node) and value not in taken
        ]
        if not choices:
            return None
        return SetIdentifier(node=node, identifier=rng.choice(choices))

    moves = {"label": label_move, "edge": edge_move, "id": id_move}
    trace: List[Delta] = []
    while len(trace) < steps:
        delta = moves[rng.choice(kinds)]()
        if delta is None:
            delta = label_move()
        if delta is None:
            break
        if isinstance(delta, SetLabel):
            labels_now[delta.node] = delta.label
        elif isinstance(delta, SetIdentifier):
            ids_now[delta.node] = delta.identifier
        elif isinstance(delta, EdgeInsert):
            adjacency[delta.u].add(delta.v)
            adjacency[delta.v].add(delta.u)
        else:
            adjacency[delta.u].discard(delta.v)
            adjacency[delta.v].discard(delta.u)
        trace.append(delta)
    return trace
