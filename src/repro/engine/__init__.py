"""Fast certificate-game engine: memoized local views, pruning, batching.

This package is the performance backbone of the repository.  The exhaustive
game solver of :mod:`repro.hierarchy.game` re-runs the full LOCAL-model
simulator at every leaf of the quantifier tree; the engine replaces that
with per-node local-view evaluation built on three observations:

1. **Verdicts are local.**  A node's accept/reject verdict depends only on
   the certificate restriction to its dependency ball (the gathering radius
   for neighborhood-gather algorithms, the round bound for arbitrary
   machines).  :class:`~repro.engine.views.BallIndex` precomputes the balls
   and the static part of every local view once per instance.
2. **Leaves repeat locally.**  Adjacent leaves of the quantifier tree differ
   in few certificates, so most per-node verdicts recur;
   :class:`~repro.engine.evaluator.LeafEvaluator` memoizes them by
   restriction key and short-circuits a leaf on the first rejection.
3. **The tree repeats globally.**  Partial quantifier assignments recur
   across game-value and winning-move queries;
   :class:`~repro.engine.game.GameEngine` keeps a transposition cache and
   solves the innermost level by pruned search (backtracking for ∃,
   per-ball decomposition for ∀) instead of flat enumeration.

:mod:`repro.engine.batch` adds a batch API that evaluates many
``(graph, ids, property)`` instances at once, sharing evaluators and
engines across them.

On top of the three observations sits the **compiled core**
(:mod:`repro.engine.compiled`): an instance is lowered once to flat integer
arrays -- CSR adjacency, interned certificate codes, dependency balls as
index arrays -- and the game runs on packed integer restriction keys
maintained *incrementally* under assignment deltas, with table-driven leaf
kernels for machines that declare a :mod:`repro.machines.rules` rule.
``GameEngine.for_game`` (the production path) returns a
:class:`~repro.engine.compiled.CompiledGameEngine`; constructing
``GameEngine`` directly gives the self-contained PR-1 tier.

Above the compiled core sits the **vectorized tier** (on by default in
``CompiledGameEngine``; ``use_bitset=False`` restores the previous
behavior): :mod:`repro.engine.bitset` packs per-node acceptance over the
whole interned code alphabet into single integers emitted by the rules
themselves, so the innermost search prunes whole code-blocks with a few
``&`` operations, and a quantifier *collapse* skips subtrees that cannot
change the verdict.  :mod:`repro.engine.canonical` complements it on the
expensive rule-less paths: verdicts are shared under a canonical ball
signature across nodes, instances and (through the verdict store's node
table) sessions.

For graphs that mutate over time, :mod:`repro.engine.dynamic` adds the
incremental-scenario subsystem: :class:`~repro.engine.dynamic.MutableInstance`
applies edge/label/identifier deltas to a compiled instance in place,
repairing only the dirty dependency balls while untouched verdicts survive
in the memo, canonical and store tiers.  The repair-equals-recompute claim
is enforced by the differential harness in ``tests/test_dynamic.py``.

The exhaustive solver is retained, untouched, as the reference oracle; the
equivalence of all tiers is asserted by randomized tests
(``tests/test_engine.py``, ``tests/test_compiled.py``,
``tests/test_bitset.py`` and ``tests/test_dynamic.py``).
"""

from repro.engine.bitset import BitsetKernel
from repro.engine.caching import EvaluatorStats, LRUCache
from repro.engine.canonical import CanonicalVerdictCache, node_ball_signature
from repro.engine.views import BallIndex, RestrictionKey
from repro.engine.compiled import (
    CodedState,
    CompiledGameEngine,
    CompiledInstance,
    InstanceCompiler,
    compile_instance,
)
from repro.engine.dynamic import (
    Delta,
    DeltaError,
    EdgeDelete,
    EdgeInsert,
    MutableInstance,
    RepairReport,
    SetIdentifier,
    SetLabel,
    delta_from_wire,
    delta_to_wire,
    random_trace,
    recompute_verdict,
)
from repro.engine.evaluator import LeafEvaluator, shared_evaluator
from repro.engine.game import GameEngine
from repro.engine.batch import (
    GameInstance,
    IdentityKey,
    decide_batch,
    engine_sharing_key,
    evaluate_batch,
)

__all__ = [
    "BallIndex",
    "RestrictionKey",
    "BitsetKernel",
    "CanonicalVerdictCache",
    "node_ball_signature",
    "EvaluatorStats",
    "LRUCache",
    "CodedState",
    "CompiledGameEngine",
    "CompiledInstance",
    "InstanceCompiler",
    "compile_instance",
    "Delta",
    "DeltaError",
    "EdgeDelete",
    "EdgeInsert",
    "MutableInstance",
    "RepairReport",
    "SetIdentifier",
    "SetLabel",
    "delta_from_wire",
    "delta_to_wire",
    "random_trace",
    "recompute_verdict",
    "LeafEvaluator",
    "shared_evaluator",
    "GameEngine",
    "GameInstance",
    "IdentityKey",
    "decide_batch",
    "engine_sharing_key",
    "evaluate_batch",
]
