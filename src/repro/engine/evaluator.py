"""Memoized per-node verdict evaluation (the engine's leaf layer).

A leaf of the certificate game asks: does ``M(G, id, kappa_1 ... kappa_l)``
accept?  Acceptance is by unanimity, so the leaf value is the conjunction of
per-node verdicts -- and each node's verdict depends only on the certificate
restriction to its dependency ball (:mod:`repro.engine.views`).  The
:class:`LeafEvaluator` exploits this twice:

* **memoization** -- each node caches its verdict keyed by the restriction of
  the certificate-list assignment to its ball.  A changed certificate only
  invalidates (that is, produces a fresh key for) the nodes whose ball
  contains the changed node; every other node answers from cache without any
  simulation.
* **short-circuiting** -- nodes are evaluated one at a time and the leaf is
  rejected the moment a single node rejects.  A last-reject-first heuristic
  moves the most recently rejecting node to the front of the evaluation
  order, so that in reject-heavy regions of the quantifier tree most leaves
  cost a single dictionary lookup.

Since the compiled core landed (:mod:`repro.engine.compiled`) the evaluator
is, by default, a thin dict-facing adapter over a shared
:class:`~repro.engine.compiled.CompiledInstance`: restriction keys are
packed integers over interned certificate codes, and cache misses dispatch
to the instance's kernels (table-driven rules, direct views, or ball
simulation).  Pass ``compiled=False`` to get the self-contained PR-1
implementation -- kept as the mid-tier reference that the compiled core is
benchmarked against and cross-checked with:

* the **direct path** (for plain
  :class:`~repro.machines.local_algorithm.NeighborhoodGatherAlgorithm`
  machines): the node's :class:`LocalView` is rebuilt from the precomputed
  static parts and the machine's ``compute`` function is applied to it
  directly, skipping the round-by-round message simulation entirely;
* the **simulation path** (for arbitrary
  :class:`~repro.machines.interface.NodeMachine` implementations): the
  machine is executed on the induced subgraph of the node's radius-``R``
  ball, where ``R`` is the machine's round bound.  When a ball spans the
  whole graph the single execution is *harvested*: the verdicts of all
  nodes are written to their respective cache slots at once.

Either way the per-node memo is LRU-bounded (hit/miss/eviction counters are
exposed through :meth:`LeafEvaluator.memo_info`), so long sweeps cannot
grow memory without limit.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.machines.interface import NodeMachine, verdict_of
from repro.machines.local_algorithm import NeighborhoodGatherAlgorithm
from repro.machines.simulator import execute
from repro.registry import WeakSharedRegistry

from repro.engine.caching import EvaluatorStats, LRUCache, MISSING
from repro.engine.compiled import CompiledInstance, compile_instance
from repro.engine.views import BallIndex, RestrictionKey

#: Default bound on the legacy-path verdict memo (the compiled path uses the
#: instance's own memo, bounded by ``compiled.DEFAULT_LEAF_MEMO_CAP``).
DEFAULT_MEMO_CAP = 1 << 20

__all__ = [
    "EvaluatorStats",
    "LeafEvaluator",
    "shared_evaluator",
    "DEFAULT_MEMO_CAP",
]


class LeafEvaluator:
    """Per-node memoized evaluation of ``M(G, id, certs) ≡ accept``.

    Parameters
    ----------
    machine:
        The arbiter.  Plain :class:`NeighborhoodGatherAlgorithm` instances
        take the direct path; everything else is simulated on ball subgraphs.
    graph, ids:
        The game instance.  Fixed for the evaluator's lifetime; the
        certificate assignments are the only varying input.
    compiled:
        ``None`` (default) backs the evaluator with the process-shared
        :class:`~repro.engine.compiled.CompiledInstance` for the triple; a
        :class:`CompiledInstance` uses that specific instance; ``False``
        selects the self-contained PR-1 implementation.
    memo_cap:
        LRU bound of the legacy-path verdict memo (ignored on the compiled
        path, whose memo lives on the instance).

    Notes
    -----
    The dependency radius is the gathering radius on the direct path and
    ``max(1, machine.max_rounds())`` on the simulation path (the ``max`` is
    needed so that the center's true degree is visible in the ball
    subgraph).  The direct path additionally requires the identifiers to be
    pairwise distinct inside every radius-``(r + 1)`` ball -- the *gather
    horizon*: the simulated gather runs ``r + 1`` communication rounds, so
    its identifier-keyed knowledge tables span one hop beyond the view
    radius, and a collision anywhere in that horizon can plant phantom
    entries (e.g. an edge between two in-view identifiers reported by an
    out-of-view name-sharing node).  When the horizon check fails the
    evaluator silently falls back to simulation, which reproduces any such
    collision behavior exactly (e.g. on the periodic-identifier cycles of
    Proposition 26).
    """

    def __init__(
        self,
        machine: NodeMachine,
        graph: LabeledGraph,
        ids: Mapping[Node, str],
        compiled: Union[None, bool, CompiledInstance] = None,
        memo_cap: Optional[int] = DEFAULT_MEMO_CAP,
    ) -> None:
        self.machine = machine
        self.graph = graph
        self.ids: Dict[Node, str] = dict(ids)
        self.stats = EvaluatorStats()

        if compiled is False:
            self.compiled: Optional[CompiledInstance] = None
            direct = type(machine) is NeighborhoodGatherAlgorithm
            if direct and not self._ids_unique_in_horizon(graph, ids, machine.radius + 1):
                direct = False
            radius = machine.radius if direct else max(1, machine.max_rounds())
            self._index: Optional[BallIndex] = BallIndex(graph, ids, radius)
            self.direct = direct
            self._memo: LRUCache = LRUCache(memo_cap)
            self._order: List[Node] = list(graph.nodes)
            self._node_index: Dict[Node, int] = {}
        else:
            instance = (
                compiled
                if isinstance(compiled, CompiledInstance)
                else compile_instance(machine, graph, ids)
            )
            self.compiled = instance
            self.direct = instance.direct
            self._index = None
            self._memo = None
            self._order = []
            self._node_index = instance.index

    @property
    def index(self) -> BallIndex:
        """The ball index (built lazily on the compiled path)."""
        if self._index is None:
            self._index = self.compiled.ball_index
        return self._index

    @staticmethod
    def _ids_unique_in_horizon(
        graph: LabeledGraph, ids: Mapping[Node, str], horizon: int
    ) -> bool:
        """Whether identifiers are distinct inside every radius-``horizon`` ball."""
        for u in graph.nodes:
            ball = graph.ball(u, horizon)
            if len({ids[v] for v in ball}) != len(ball):
                return False
        return True

    # ------------------------------------------------------------------
    # Leaf evaluation
    # ------------------------------------------------------------------
    def accepts(self, assignments: Sequence[Mapping[Node, str]]) -> bool:
        """Whether every node accepts under the given certificate assignments.

        Short-circuits on the first rejecting node and moves it to the front
        of the evaluation order for subsequent leaves.
        """
        if self.compiled is not None:
            return self.compiled.accepts_dicts(assignments, self.stats)
        self.stats.leaves += 1
        order = self._order
        for position, node in enumerate(order):
            if not self.node_accepts(node, assignments):
                if position:
                    order.insert(0, order.pop(position))
                return False
        return True

    def node_accepts(self, node: Node, assignments: Sequence[Mapping[Node, str]]) -> bool:
        """The verdict of a single node, memoized by its certificate restriction.

        Only the certificates of the node's dependency ball enter the cache
        key, so assignments that differ outside the ball share one entry.
        The node's ball must be fully covered by *assignments* (any node
        absent from a mapping is read as carrying the empty certificate,
        exactly as :class:`~repro.graphs.certificates.CertificateList` does).
        """
        if self.compiled is not None:
            return self.compiled.node_verdict_dicts(
                self._node_index[node], assignments, self.stats
            )
        key = (node, self.index.restriction(node, assignments))
        verdict = self._memo.get(key, MISSING)
        if verdict is not MISSING:
            self.stats.node_hits += 1
            return verdict
        self.stats.node_misses += 1
        if self.direct:
            verdict = verdict_of(self.machine.compute(self.index.view(node, assignments)))
        else:
            verdict = self._simulate(node, assignments)
        self._memo.put(key, verdict)
        return verdict

    def verdicts(self, assignments: Sequence[Mapping[Node, str]]) -> Dict[Node, bool]:
        """All per-node verdicts (no short-circuiting; for diagnostics and tests)."""
        return {u: self.node_accepts(u, assignments) for u in self.graph.nodes}

    def memo_info(self) -> Dict[str, Optional[int]]:
        """Hit/miss/eviction counters of the verdict memo backing this evaluator."""
        if self.compiled is not None:
            return self.compiled.memo_info()
        return self._memo.info()

    # ------------------------------------------------------------------
    # Simulation path (legacy implementation)
    # ------------------------------------------------------------------
    def _simulate(self, node: Node, assignments: Sequence[Mapping[Node, str]]) -> bool:
        self.stats.simulator_runs += 1
        subgraph = self.index.ball_subgraph(node)
        result = execute(self.machine, subgraph, self.ids, list(assignments))
        outputs = result.outputs
        if subgraph is self.graph:
            # The ball spans the whole graph: one execution determines every
            # node's verdict, so harvest them all into the cache.
            for other, output in outputs.items():
                other_key = (other, self.index.restriction(other, assignments))
                self._memo.put(other_key, verdict_of(output))
        return verdict_of(outputs[node])

    def __repr__(self) -> str:
        if self.compiled is not None:
            return f"LeafEvaluator(compiled, instance={self.compiled!r}, stats={self.stats})"
        mode = "direct" if self.direct else "simulate"
        return (
            f"LeafEvaluator({mode}, radius={self.index.radius}, "
            f"nodes={len(self.graph.nodes)}, stats={self.stats})"
        )


# ----------------------------------------------------------------------
# Evaluator sharing
# ----------------------------------------------------------------------
#: machine -> {(graph, identifier tuple): LeafEvaluator}, weak in the
#: machine and bounded per machine (FIFO eviction), so long sweeps over
#: many graphs do not grow memory without limit.
_SHARED = WeakSharedRegistry(limit=64)


def shared_evaluator(
    machine: NodeMachine, graph: LabeledGraph, ids: Mapping[Node, str]
) -> LeafEvaluator:
    """A :class:`LeafEvaluator` shared across games on the same instance.

    The verdict cache depends only on ``(machine, graph, ids)`` -- not on
    certificate spaces or quantifier prefixes -- so Sigma and Pi games, the
    membership functions and :func:`repro.engine.batch.evaluate_batch` can
    all reuse one evaluator.  Shared evaluators ride on the process-wide
    compiled instance for the triple, so they additionally share every
    cached verdict with the compiled game engines.  Machines that do not
    support weak references simply get a fresh evaluator each time.
    """
    key = (graph, tuple(ids[u] for u in graph.nodes))
    return _SHARED.get_or_build(machine, key, lambda: LeafEvaluator(machine, graph, ids))
