"""The fast certificate-game engine (Section 4, made to scale).

:class:`GameEngine` computes the value of the Eve/Adam certificate game

    Q_1 kappa_1  Q_2 kappa_2  ...  Q_l kappa_l :  M(G, id, kappa_1...kappa_l) ≡ accept

for a fixed arbiter, graph and identifier assignment.  It is observationally
equivalent to the exhaustive reference solver
:func:`repro.hierarchy.game.eve_wins` (which is kept as the oracle the
engine is tested against) but avoids almost all of its work:

* leaves are decided by the memoizing :class:`~repro.engine.evaluator.LeafEvaluator`
  instead of a fresh LOCAL-model simulation -- per-node verdicts are cached
  by the certificate restriction to the node's dependency ball and the leaf
  short-circuits on the first rejecting node;
* a **transposition cache** stores the game value of every evaluated partial
  quantifier assignment, so repeated positions (reached e.g. by
  :meth:`winning_first_move` after :meth:`eve_wins`, or by Sigma and Pi
  games sharing an engine) are answered without re-expansion;
* the **innermost quantifier level is never enumerated as a flat product**:

  - an innermost *existential* level is solved by backtracking search over
    per-node certificate choices, pruning a branch as soon as any node whose
    ball is fully assigned rejects (for the 3-colorability verifier this
    turns ``3^n`` simulator runs into a proper-coloring search);
  - an innermost *universal* level decomposes per node: a rejecting leaf
    exists iff some node rejects under some assignment of *its ball alone*,
    so the engine enumerates each ball's product separately -- exponential
    in the ball size instead of the graph size.

Outer levels still enumerate their assignment space (each assignment leads
to a genuinely different subgame), but with short-circuiting and with every
subgame below them accelerated.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.hierarchy.certificate_spaces import CertificateSpace
from repro.hierarchy.game import Quantifier, pi_prefix, sigma_prefix
from repro.machines.interface import NodeMachine

from repro.engine.caching import LRUCache, MISSING
from repro.engine.evaluator import LeafEvaluator

#: A certificate assignment frozen to a hashable transposition-key component:
#: one certificate per node, in graph node order.
FrozenAssignment = Tuple[str, ...]

#: Default bound on the legacy engine's transposition cache (the compiled
#: engine has its own default in :mod:`repro.engine.compiled`).
DEFAULT_TRANSPOSITION_CAP = 1 << 18


class GameEngine:
    """Fast solver for the certificate game of a fixed ``(M, G, id)`` instance.

    Parameters
    ----------
    machine:
        The locally polynomial arbiter.
    graph, ids:
        The input graph and its identifier assignment.
    spaces:
        One finite :class:`CertificateSpace` per quantifier level.
    evaluator:
        Optionally, a pre-built :class:`LeafEvaluator` for the same
        ``(machine, graph, ids)`` triple.  The default is a fresh
        *legacy-path* evaluator (``compiled=False``): constructing a
        ``GameEngine`` directly gives the self-contained PR-1 engine tier,
        kept as the reference the compiled core is benchmarked against.
    transposition_cap:
        LRU bound of the transposition cache (``None`` for unbounded).

    Use :meth:`for_game` for the production path: it returns a
    :class:`~repro.engine.compiled.CompiledGameEngine` (same API) backed by
    the process-wide shared compiled instance.
    """

    def __init__(
        self,
        machine: NodeMachine,
        graph: LabeledGraph,
        ids: Mapping[Node, str],
        spaces: Sequence[CertificateSpace],
        evaluator: Optional[LeafEvaluator] = None,
        transposition_cap: Optional[int] = DEFAULT_TRANSPOSITION_CAP,
    ) -> None:
        self.machine = machine
        self.graph = graph
        self.ids: Dict[Node, str] = dict(ids)
        self.spaces: List[CertificateSpace] = list(spaces)
        self.evaluator = evaluator or LeafEvaluator(machine, graph, ids, compiled=False)
        self.nodes: List[Node] = list(graph.nodes)
        #: Per level, per node (in graph order): the candidate certificates.
        self._candidates: List[List[List[str]]] = [
            [space.node_candidates(graph, ids, u) for u in self.nodes] for space in self.spaces
        ]
        self._transposition: LRUCache = LRUCache(transposition_cap)
        self._position: Dict[Node, int] = {u: i for i, u in enumerate(self.nodes)}
        # checkable_at[i]: nodes whose ball is contained in nodes[0..i]; used
        # by the innermost-level backtracking search.
        self._checkable_at: List[List[Node]] = [[] for _ in self.nodes]
        for u in self.nodes:
            frontier = max(self._position[v] for v in self.evaluator.index.ball(u))
            self._checkable_at[frontier].append(u)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_game(
        cls,
        machine: NodeMachine,
        graph: LabeledGraph,
        ids: Mapping[Node, str],
        spaces: Sequence[CertificateSpace],
    ):
        """The production engine for an instance: compiled, with shared caches.

        Returns a :class:`~repro.engine.compiled.CompiledGameEngine` (same
        public API as this class) backed by the process-wide compiled
        instance for ``(machine, graph, ids)``, so games on one instance
        share the per-node verdict memo.  Construct :class:`GameEngine`
        directly for the self-contained PR-1 reference tier.
        """
        from repro.engine.compiled import CompiledGameEngine

        return CompiledGameEngine.for_game(machine, graph, ids, spaces)

    # ------------------------------------------------------------------
    # Game values
    # ------------------------------------------------------------------
    def eve_wins(
        self,
        prefix: Sequence[Quantifier],
        fixed: Optional[Sequence[Mapping[Node, str]]] = None,
    ) -> bool:
        """Whether Eve wins the game with the given quantifier prefix.

        Mirrors the signature and semantics of the reference solver
        :func:`repro.hierarchy.game.eve_wins`: *fixed* pins certificate
        assignments for the leading quantifier levels.
        """
        if len(self.spaces) != len(prefix):
            raise ValueError("there must be exactly one certificate space per quantifier")
        chosen = [dict(assignment) for assignment in (fixed or [])]
        return self._value(tuple(prefix), chosen)

    def sigma_value(self) -> bool:
        """Game value with Eve moving first (Sigma^lp membership)."""
        return self.eve_wins(sigma_prefix(len(self.spaces)))

    def pi_value(self) -> bool:
        """Game value with Adam moving first (Pi^lp membership)."""
        return self.eve_wins(pi_prefix(len(self.spaces)))

    def winning_first_move(self, prefix: Sequence[Quantifier]) -> Optional[Dict[Node, str]]:
        """A winning first move for the owner of the first quantifier, if any.

        For an existential first quantifier: an assignment keeping Eve
        winning.  For a universal one: a refuting assignment (a winning move
        for Adam).  ``None`` when the first player has no winning move --
        exactly the semantics of
        :func:`repro.hierarchy.game.winning_first_move`, and the enumeration
        order matches the reference solver's, so both return the same move.
        """
        if not prefix:
            raise ValueError("the game must have at least one quantifier")
        if len(self.spaces) != len(prefix):
            raise ValueError("there must be exactly one certificate space per quantifier")
        prefix = tuple(prefix)
        for assignment in self._assignments(0):
            value = self._value(prefix, [assignment])
            if prefix[0] is Quantifier.EXISTS and value:
                return dict(assignment)
            if prefix[0] is Quantifier.FORALL and not value:
                return dict(assignment)
        return None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _freeze(self, assignment: Mapping[Node, str]) -> FrozenAssignment:
        return tuple(assignment.get(u, "") for u in self.nodes)

    def _assignments(self, level: int) -> Iterator[Dict[Node, str]]:
        """All assignments of one level, in the reference solver's order."""
        for combination in itertools.product(*self._candidates[level]):
            yield dict(zip(self.nodes, combination))

    def _value(self, prefix: Tuple[Quantifier, ...], chosen: List[Dict[Node, str]]) -> bool:
        depth = len(chosen)
        if depth == len(prefix):
            return self.evaluator.accepts(chosen)

        key = (prefix[depth:], tuple(self._freeze(a) for a in chosen))
        cached = self._transposition.get(key, MISSING)
        if cached is not MISSING:
            return cached

        quantifier = prefix[depth]
        if depth == len(prefix) - 1:
            value = self._innermost(quantifier, depth, chosen)
        elif quantifier is Quantifier.EXISTS:
            value = any(
                self._value(prefix, chosen + [assignment])
                for assignment in self._assignments(depth)
            )
        else:
            value = all(
                self._value(prefix, chosen + [assignment])
                for assignment in self._assignments(depth)
            )
        self._transposition.put(key, value)
        return value

    def transposition_info(self) -> Dict[str, Optional[int]]:
        """Hit/miss/eviction counters of the transposition cache."""
        return self._transposition.info()

    # ------------------------------------------------------------------
    # Innermost level: pruned search instead of flat enumeration
    # ------------------------------------------------------------------
    def _innermost(
        self, quantifier: Quantifier, level: int, chosen: List[Dict[Node, str]]
    ) -> bool:
        candidates = self._candidates[level]
        if any(not node_candidates for node_candidates in candidates):
            # No assignment exists at all: the existential player is stuck,
            # the universal statement is vacuously true (matching the empty
            # itertools.product of the reference solver).
            return quantifier is Quantifier.FORALL
        if quantifier is Quantifier.EXISTS:
            return self._exists_accepting(level, chosen, 0, {})
        return self._forall_accepting(level, chosen)

    def _exists_accepting(
        self,
        level: int,
        chosen: List[Dict[Node, str]],
        position: int,
        partial: Dict[Node, str],
    ) -> bool:
        """Backtracking search for one assignment making every node accept.

        Certificates are chosen node by node (in graph order); as soon as all
        of a node's ball is assigned its verdict is checked, and the branch
        is pruned on the first rejection.  This replaces the ``prod_u c_u``
        flat enumeration with a classic constraint-satisfaction search.
        """
        if position == len(self.nodes):
            return True
        node = self.nodes[position]
        assignments = chosen + [partial]
        for certificate in self._candidates[level][position]:
            partial[node] = certificate
            if all(
                self.evaluator.node_accepts(u, assignments)
                for u in self._checkable_at[position]
            ) and self._exists_accepting(level, chosen, position + 1, partial):
                return True
        del partial[node]
        return False

    def _forall_accepting(self, level: int, chosen: List[Dict[Node, str]]) -> bool:
        """Whether every innermost assignment makes every node accept.

        Decomposes per node: a rejecting leaf exists iff some node rejects
        under some assignment of its *ball* (any completion outside the ball
        yields a full assignment with the same verdict, and completions
        exist because every candidate set is nonempty).  Enumerating each
        ball's product separately is exponential in the ball size only.
        """
        for node in self.nodes:
            ball = self.evaluator.index.ball(node)
            ball_candidates = [self._candidates[level][self._position[v]] for v in ball]
            for combination in itertools.product(*ball_candidates):
                partial = dict(zip(ball, combination))
                if not self.evaluator.node_accepts(node, chosen + [partial]):
                    return False
        return True

    def __repr__(self) -> str:
        return (
            f"GameEngine(levels={len(self.spaces)}, nodes={len(self.nodes)}, "
            f"transpositions={len(self._transposition)}, evaluator={self.evaluator!r})"
        )
