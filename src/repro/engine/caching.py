"""Bounded caches and shared counters for the engine layer.

Every cache in the engine used to be an unbounded dict: fine for one game,
a slow leak across a long sweep touching thousands of instances.  This
module provides the one primitive they all share now -- a small LRU cache
built directly on the insertion order of ``dict`` (a hit deletes and
re-inserts its key, eviction pops the oldest key) -- plus the counter
dataclass the leaf layer reports through.

The cache exposes hit/miss/eviction counters so tests and benchmarks can
assert reuse instead of guessing at it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional

#: Sentinel distinguishing "cached False" from "not cached".
MISSING = object()


class LRUCache:
    """A least-recently-used cache with hit/miss/eviction counters.

    Built on the insertion order of ``dict``: a hit moves its key to the
    back by deleting and re-inserting it; when full, the front (least
    recently used) key is evicted.  ``maxsize=None`` disables the bound
    (the counters keep working).
    """

    __slots__ = ("data", "maxsize", "hits", "misses", "evictions", "_metrics")

    def __init__(self, maxsize: Optional[int] = None) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError("maxsize must be positive (or None for unbounded)")
        self.data: Dict[Hashable, Any] = {}
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._metrics = None

    def bind_metrics(self, registry, name: str) -> "LRUCache":
        """Mirror this cache's counters into registry instruments.

        Creates ``<name>_hits_total`` / ``<name>_misses_total`` /
        ``<name>_evictions_total`` counters in *registry* (a
        :class:`repro.obs.metrics.MetricsRegistry`) and increments them
        alongside the plain-int counters, so the cache shows up on the
        ``/metrics`` exposition without changing ``info()`` consumers.
        Returns ``self`` for chaining.
        """
        self._metrics = (
            registry.counter(f"{name}_hits_total"),
            registry.counter(f"{name}_misses_total"),
            registry.counter(f"{name}_evictions_total"),
        )
        return self

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value, refreshed to most-recently-used; *default* on miss."""
        data = self.data
        metrics = self._metrics
        value = data.get(key, MISSING)
        if value is MISSING:
            self.misses += 1
            if metrics is not None:
                metrics[1].inc()
            return default
        self.hits += 1
        if metrics is not None:
            metrics[0].inc()
        del data[key]
        data[key] = value
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) an entry, evicting the oldest when full."""
        data = self.data
        if key in data:
            del data[key]
        elif self.maxsize is not None and len(data) >= self.maxsize:
            del data[next(iter(data))]
            self.evictions += 1
            if self._metrics is not None:
                self._metrics[2].inc()
        data[key] = value

    def clear(self) -> None:
        """Drop every entry (the counters are kept)."""
        self.data.clear()

    def __len__(self) -> int:
        return len(self.data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self.data

    def info(self) -> Dict[str, Optional[int]]:
        """Counters and occupancy, for tests, stats endpoints and reprs."""
        return {
            "size": len(self.data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:
        return (
            f"LRUCache(size={len(self.data)}, maxsize={self.maxsize}, "
            f"hits={self.hits}, misses={self.misses}, evictions={self.evictions})"
        )


@dataclass
class EvaluatorStats:
    """Counters exposed for tests and benchmarks.

    Attributes
    ----------
    leaves:
        Number of leaf (full-assignment) evaluations requested.
    node_hits, node_misses:
        Per-node verdict cache hits and misses.
    simulator_runs:
        Number of times the round-by-round simulator actually ran (zero on
        the direct and table-driven paths).
    bitset_prunes:
        Search positions killed outright by an empty viability mask in the
        bitset tier (whole code-blocks discarded before descending).
    bitset_evaluations:
        Rule-predicate evaluations spent building bitset slot masks (the
        pairwise tables count their builds on the kernel instead).
    """

    leaves: int = 0
    node_hits: int = 0
    node_misses: int = 0
    simulator_runs: int = 0
    bitset_prunes: int = 0
    bitset_evaluations: int = 0

    def hit_rate(self) -> float:
        """Fraction of node-verdict requests answered from cache."""
        total = self.node_hits + self.node_misses
        return self.node_hits / total if total else 0.0
