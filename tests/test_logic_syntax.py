"""Tests for the formula AST, fragments and classification (Section 5.1)."""

import pytest

from repro.logic import examples, shorthands
from repro.logic.fragments import (
    classify_local_second_order,
    classify_second_order,
    is_bounded_fragment,
    is_first_order,
    is_lfo_sentence,
    is_monadic,
    quantifier_alternation_level,
)
from repro.logic.syntax import (
    And,
    BinaryAtom,
    BoundedExists,
    Equal,
    Exists,
    Forall,
    LocalExists,
    Not,
    Or,
    RelationAtom,
    RelationVariable,
    SOExists,
    SOForall,
    UnaryAtom,
    conjunction,
    disjunction,
    free_first_order_variables,
    free_relation_variables,
    is_sentence,
    substitute,
    TOP,
    BOTTOM,
)


class TestAST:
    def test_relation_atom_arity_check(self):
        relation = RelationVariable("R", 2)
        with pytest.raises(ValueError):
            RelationAtom(relation, ("x",))

    def test_bounded_quantifier_needs_distinct_variables(self):
        with pytest.raises(ValueError):
            BoundedExists("x", "x", UnaryAtom(1, "x"))

    def test_relation_variable_arity_positive(self):
        with pytest.raises(ValueError):
            RelationVariable("R", 0)

    def test_operator_sugar(self):
        phi = UnaryAtom(1, "x") & ~BinaryAtom(1, "x", "y")
        assert isinstance(phi, And)
        assert isinstance(phi.right, Not)

    def test_conjunction_and_disjunction_of_empty(self):
        assert conjunction([]) == TOP
        assert disjunction([]) == BOTTOM


class TestFreeVariables:
    def test_atoms(self):
        assert free_first_order_variables(BinaryAtom(1, "x", "y")) == {"x", "y"}
        relation = RelationVariable("R", 1)
        assert free_relation_variables(RelationAtom(relation, ("x",))) == {relation}

    def test_bounded_quantifier_keeps_anchor_free(self):
        phi = BoundedExists("z", "y", Equal("z", "y"))
        assert free_first_order_variables(phi) == {"y"}

    def test_second_order_quantifier_binds_relation(self):
        relation = RelationVariable("R", 1)
        phi = SOExists(relation, Forall("x", RelationAtom(relation, ("x",))))
        assert free_relation_variables(phi) == set()
        assert is_sentence(phi)

    def test_example_formulas_are_sentences(self):
        for formula in examples.all_example_formulas().values():
            assert is_sentence(formula)


class TestSubstitution:
    def test_basic_renaming(self):
        phi = BinaryAtom(1, "x", "y")
        assert substitute(phi, {"x": "z"}) == BinaryAtom(1, "z", "y")

    def test_bound_variables_not_renamed(self):
        phi = BoundedExists("x", "y", Equal("x", "y"))
        renamed = substitute(phi, {"x": "w", "y": "z"})
        assert renamed == BoundedExists("x", "z", Equal("x", "z"))


class TestFragments:
    def test_bf_membership(self):
        bounded = BoundedExists("y", "x", UnaryAtom(1, "y"))
        unbounded = Exists("y", UnaryAtom(1, "y"))
        assert is_bounded_fragment(bounded)
        assert not is_bounded_fragment(unbounded)
        assert is_bounded_fragment(LocalExists("y", "x", 3, UnaryAtom(1, "y")))

    def test_lfo_sentences(self):
        good = Forall("x", BoundedExists("y", "x", Equal("x", "y")))
        bad = Forall("x", Exists("y", Equal("x", "y")))
        assert is_lfo_sentence(good)
        assert not is_lfo_sentence(bad)

    def test_first_order_check(self):
        relation = RelationVariable("R", 1)
        assert is_first_order(Exists("x", RelationAtom(relation, ("x",))))
        assert not is_first_order(SOExists(relation, Forall("x", RelationAtom(relation, ("x",)))))

    def test_monadicity(self):
        assert is_monadic(examples.three_colorable_formula())
        assert not is_monadic(examples.hamiltonian_formula())

    def test_alternation_levels_of_prefixes(self):
        unary = RelationVariable("X", 1)
        binary = RelationVariable("P", 2)
        matrix = Forall("x", BoundedExists("y", "x", Equal("x", "y")))
        assert quantifier_alternation_level(SOExists(unary, matrix)) == 1
        assert quantifier_alternation_level(SOExists(unary, SOExists(binary, matrix))) == 1
        assert quantifier_alternation_level(SOExists(unary, SOForall(binary, matrix))) == 2


class TestPaperClassification:
    """The Section 5.2 formulas land exactly in the classes the paper states."""

    def test_example_classes(self):
        expected = {
            "all-selected": ("Sigma", 0, True),
            "3-colorable": ("Sigma", 1, True),
            "not-all-selected": ("Sigma", 3, False),
            "non-3-colorable": ("Pi", 4, False),
            "one-selected": ("Sigma", 3, False),
            "hamiltonian": ("Sigma", 3, False),
            "non-hamiltonian": ("Pi", 4, False),
        }
        formulas = examples.all_example_formulas()
        for name, (kind, level, monadic) in expected.items():
            logic_class = classify_local_second_order(formulas[name])
            assert logic_class is not None, name
            assert logic_class.kind == kind, name
            assert logic_class.level == level, name
            assert logic_class.monadic == monadic, name

    def test_unbounded_matrix_falls_outside_local_hierarchy(self):
        relation = RelationVariable("X", 1)
        phi = SOExists(relation, Forall("x", Exists("y", Equal("x", "y"))))
        assert classify_local_second_order(phi) is None
        assert classify_second_order(phi) is not None

    def test_shorthands_are_bf(self):
        assert is_bounded_fragment(shorthands.is_node("x"))
        assert is_bounded_fragment(shorthands.is_selected("x"))
        assert is_bounded_fragment(shorthands.is_bit0("x"))
