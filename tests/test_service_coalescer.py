"""Request coalescing: in-flight dedup, the batching window, error paths."""

from __future__ import annotations

import asyncio
import threading
import time
from typing import List, Sequence

import pytest

from repro.engine.batch import GameInstance
from repro.graphs import generators
from repro.graphs.identifiers import sequential_identifier_assignment
from repro.service.coalescer import CoalescerClosed, RequestCoalescer


def _instance(n: int = 5, name: str = "") -> GameInstance:
    from repro.hierarchy.arbiters import eulerian_spec

    spec = eulerian_spec()
    graph = generators.cycle_graph(n)
    return GameInstance(
        machine=spec.machine,
        graph=graph,
        ids=sequential_identifier_assignment(graph),
        spaces=list(spec.spaces),
        prefix=spec.prefix(),
        name=name or f"eulerian|cycle{n}",
    )


class _FakeEvaluator:
    """Counts batches; optionally stalls so concurrent submits overlap."""

    def __init__(self, delay: float = 0.0, fail: bool = False) -> None:
        self.delay = delay
        self.fail = fail
        self.calls: List[int] = []
        self._lock = threading.Lock()

    def __call__(self, instances: Sequence[GameInstance]):
        with self._lock:
            self.calls.append(len(instances))
        if self.delay:
            time.sleep(self.delay)
        if self.fail:
            raise RuntimeError("compute exploded")
        return [True] * len(instances), [0.001] * len(instances)


class TestDedup:
    def test_concurrent_same_key_computes_once(self):
        evaluator = _FakeEvaluator(delay=0.05)

        async def scenario():
            coalescer = RequestCoalescer(evaluator, window_seconds=0.0)
            instance = _instance()
            results = await asyncio.gather(
                coalescer.submit("k1", instance),
                coalescer.submit("k1", instance),
                coalescer.submit("k1", instance),
            )
            await coalescer.close()
            return results

        results = asyncio.run(scenario())
        assert evaluator.calls == [1]
        assert [r.verdict for r in results] == [True, True, True]
        assert sorted(r.deduped for r in results) == [False, True, True]

    def test_late_arrival_during_compute_still_dedupes(self):
        evaluator = _FakeEvaluator(delay=0.1)

        async def scenario():
            coalescer = RequestCoalescer(evaluator, window_seconds=0.0)
            instance = _instance()
            first = asyncio.ensure_future(coalescer.submit("k1", instance))
            # Let the first submit flush and start computing, then arrive late.
            await asyncio.sleep(0.03)
            second = await coalescer.submit("k1", instance)
            stats = coalescer.stats()
            result_first = await first
            await coalescer.close()
            return result_first, second, stats

        first, second, stats = asyncio.run(scenario())
        assert evaluator.calls == [1]
        assert not first.deduped and second.deduped
        assert stats["deduped"] == 1


class TestBatchingWindow:
    def test_same_group_submits_share_one_batch(self):
        evaluator = _FakeEvaluator()
        instance = _instance()

        async def scenario():
            coalescer = RequestCoalescer(evaluator, window_seconds=0.05)
            # Same (machine, graph, ids) group, distinct keys: one batch.
            results = await asyncio.gather(
                coalescer.submit("a", instance),
                coalescer.submit("b", instance),
                coalescer.submit("c", instance),
            )
            stats = coalescer.stats()
            await coalescer.close()
            return results, stats

        results, stats = asyncio.run(scenario())
        assert evaluator.calls == [3]
        assert all(r.batch_size == 3 for r in results)
        assert stats["batches"] == 1
        assert stats["largest_batch"] == 3

    def test_incompatible_groups_split_into_batches(self):
        evaluator = _FakeEvaluator()

        async def scenario():
            coalescer = RequestCoalescer(evaluator, window_seconds=0.05)
            await asyncio.gather(
                coalescer.submit("a", _instance(5)),
                coalescer.submit("b", _instance(6)),
            )
            stats = coalescer.stats()
            await coalescer.close()
            return stats

        stats = asyncio.run(scenario())
        assert sorted(evaluator.calls) == [1, 1]
        assert stats["batches"] == 2

    def test_max_batch_flushes_before_window(self):
        evaluator = _FakeEvaluator()
        instance = _instance()

        async def scenario():
            # A 10-minute window that max_batch must preempt.
            coalescer = RequestCoalescer(evaluator, window_seconds=600.0, max_batch=2)
            started = time.perf_counter()
            await asyncio.gather(
                coalescer.submit("a", instance),
                coalescer.submit("b", instance),
            )
            elapsed = time.perf_counter() - started
            await coalescer.close()
            return elapsed

        assert asyncio.run(scenario()) < 5.0
        assert evaluator.calls == [2]

    def test_on_computed_failure_still_answers_waiters(self):
        # A store that cannot record (disk full, locked database) must not
        # hang the waiters or poison the in-flight map.
        evaluator = _FakeEvaluator()

        def broken_recorder(entries, verdicts, seconds):
            raise OSError("disk full")

        async def scenario():
            coalescer = RequestCoalescer(
                evaluator, window_seconds=0.0, on_computed=broken_recorder
            )
            result = await coalescer.submit("a", _instance())
            stats = coalescer.stats()
            # The key is released: a retry computes again instead of hanging.
            retry = await coalescer.submit("a", _instance())
            await coalescer.close()
            return result, retry, stats

        result, retry, stats = asyncio.run(scenario())
        assert result.verdict is True and retry.verdict is True
        assert stats["record_failures"] == 1
        assert stats["inflight"] == 0

    def test_on_computed_fires_once_per_batch_entry(self):
        evaluator = _FakeEvaluator(delay=0.05)
        recorded = []

        async def scenario():
            coalescer = RequestCoalescer(
                evaluator,
                window_seconds=0.0,
                on_computed=lambda entries, verdicts, seconds: recorded.extend(
                    (key, verdict) for (key, _, _), verdict in zip(entries, verdicts)
                ),
            )
            instance = _instance()
            await asyncio.gather(
                coalescer.submit("a", instance),
                coalescer.submit("a", instance),  # deduped: must not re-record
            )
            await coalescer.close()

        asyncio.run(scenario())
        assert recorded == [("a", True)]


class TestFailureAndShutdown:
    def test_compute_error_propagates_to_every_waiter(self):
        evaluator = _FakeEvaluator(delay=0.02, fail=True)

        async def scenario():
            coalescer = RequestCoalescer(evaluator, window_seconds=0.0)
            instance = _instance()
            results = await asyncio.gather(
                coalescer.submit("a", instance),
                coalescer.submit("a", instance),
                return_exceptions=True,
            )
            await coalescer.close()
            return results

        results = asyncio.run(scenario())
        assert len(results) == 2
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_key_is_retryable_after_a_failed_compute(self):
        evaluator = _FakeEvaluator(fail=True)

        async def scenario():
            coalescer = RequestCoalescer(evaluator, window_seconds=0.0)
            instance = _instance()
            with pytest.raises(RuntimeError):
                await coalescer.submit("a", instance)
            evaluator.fail = False
            result = await coalescer.submit("a", instance)
            await coalescer.close()
            return result

        assert asyncio.run(scenario()).verdict is True

    def test_close_fails_pending_and_rejects_new(self):
        evaluator = _FakeEvaluator()

        async def scenario():
            # A long window, closed before it expires.
            coalescer = RequestCoalescer(evaluator, window_seconds=600.0)
            pending = asyncio.ensure_future(coalescer.submit("a", _instance()))
            await asyncio.sleep(0.01)
            await coalescer.close()
            with pytest.raises(CoalescerClosed):
                await pending
            with pytest.raises(CoalescerClosed):
                await coalescer.submit("b", _instance())

        asyncio.run(scenario())
        assert evaluator.calls == []
