"""The supervised worker pool: store append log, routing, catch-up, chaos.

Three layers of coverage, cheapest first:

* unit tests of the store append log (``last_seq`` / ``entries_since``)
  on every backend, including cross-process SQLite contention -- the
  replication substrate the pool's catch-up rides on;
* unit tests of the router's key extraction and the supervisor's
  stats-merging helpers (pure functions);
* one end-to-end chaos test: a real ``repro serve --workers 2`` pool,
  ``kill -9`` of a worker under a retrying client, zero visible errors,
  and a restarted worker whose stats report a non-empty log replay.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service.loadgen import LoadReport
from repro.service.pool import _merge_latency, _merge_values, _slot, routing_key
from repro.sweep.store import (
    JsonlVerdictStore,
    MemoryVerdictStore,
    SQLiteVerdictStore,
)


@pytest.fixture(params=["memory", "sqlite", "jsonl"])
def store(request, tmp_path):
    if request.param == "memory":
        yield MemoryVerdictStore()
    elif request.param == "sqlite":
        with SQLiteVerdictStore(str(tmp_path / "verdicts.sqlite")) as opened:
            yield opened
    else:
        with JsonlVerdictStore(str(tmp_path / "verdicts.jsonl")) as opened:
            yield opened


# ----------------------------------------------------------------------
# The append log every backend replicates
# ----------------------------------------------------------------------
class TestStoreAppendLog:
    def test_empty_store_is_seq_zero(self, store):
        assert store.last_seq() == 0
        assert list(store.entries_since(0)) == []

    def test_every_append_advances_the_seq(self, store):
        store.put("a", True, name="x", seconds=0.1)
        assert store.last_seq() == 1
        store.put("b", False)
        store.journal_append("sess", 1, {"op": "open"})
        assert store.last_seq() == 3

    def test_entries_since_streams_in_order_with_kinds(self, store):
        store.put("a", True, name="x", seconds=0.25)
        store.journal_append("sess", 1, {"op": "open"})
        store.put("b", False)
        entries = list(store.entries_since(0))
        assert [seq for seq, _, _ in entries] == [1, 2, 3]
        assert [kind for _, kind, _ in entries] == ["verdict", "journal", "verdict"]
        first = entries[0][2]
        assert first["key"] == "a" and first["verdict"] is True
        assert first["name"] == "x" and first["seconds"] == 0.25
        journal = entries[1][2]
        assert journal["session"] == "sess" and journal["seq"] == 1
        assert journal["entry"] == {"op": "open"}

    def test_entries_since_resumes_mid_log(self, store):
        for index in range(5):
            store.put(f"k{index}", True)
        tail = list(store.entries_since(3))
        assert [seq for seq, _, _ in tail] == [4, 5]
        assert [record["key"] for _, _, record in tail] == ["k3", "k4"]

    def test_entries_since_honours_the_limit(self, store):
        for index in range(6):
            store.put(f"k{index}", bool(index % 2))
        window = list(store.entries_since(0, limit=4))
        assert [seq for seq, _, _ in window] == [1, 2, 3, 4]

    def test_put_many_logs_each_record(self, store):
        store.put_many([("a", True, "x", 0.1), ("b", False, "y", 0.2)])
        entries = list(store.entries_since(0))
        assert store.last_seq() == 2
        assert {record["key"] for _, _, record in entries} == {"a", "b"}

    def test_sqlite_entries_since_spans_chunks(self, tmp_path):
        with SQLiteVerdictStore(str(tmp_path / "v.sqlite")) as opened:
            count = opened.GET_MANY_CHUNK * 2 + 7
            opened.put_many((f"k{i}", True, "", 0.0) for i in range(count))
            seqs = [seq for seq, _, _ in opened.entries_since(0)]
            assert seqs == list(range(1, count + 1))

    def test_sqlite_log_survives_reopen_and_keeps_counting(self, tmp_path):
        path = str(tmp_path / "v.sqlite")
        with SQLiteVerdictStore(path) as first:
            first.put("a", True)
            first.put("b", False)
        with SQLiteVerdictStore(path) as second:
            assert second.last_seq() == 2
            second.put("c", True)
            assert second.last_seq() == 3
            assert [r["key"] for _, _, r in second.entries_since(2)] == ["c"]

    def test_jsonl_reload_rebuilds_the_log(self, tmp_path):
        path = str(tmp_path / "v.jsonl")
        with JsonlVerdictStore(path) as first:
            first.put("a", True)
            first.journal_append("sess", 1, {"op": "open"})
        with JsonlVerdictStore(path) as second:
            assert second.last_seq() == 2
            kinds = [kind for _, kind, _ in second.entries_since(0)]
            assert kinds == ["verdict", "journal"]


# ----------------------------------------------------------------------
# Two writer processes, one SQLite file (satellite: contention)
# ----------------------------------------------------------------------
_WRITER_SNIPPET = """
import sys
from repro.sweep.store import SQLiteVerdictStore

path, tag, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
with SQLiteVerdictStore(path) as store:
    for index in range(count):
        store.put(f"{tag}-{index}", index % 2 == 0, name=tag, seconds=0.0)
        store.journal_append(f"sess-{tag}", index, {"op": "delta", "i": index})
"""


class TestMultiProcessContention:
    def test_two_processes_share_the_log_without_losing_appends(self, tmp_path):
        """Two writers hammer one WAL store: every append lands, exactly
        once, and the log sequence is strictly monotonic with no reuse --
        the invariant catch-up depends on (SQLite's busy timeout absorbs
        the lock contention; a lost or duplicated seq would replay wrong).
        """
        path = str(tmp_path / "shared.sqlite")
        count = 60
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _WRITER_SNIPPET, path, tag, str(count)],
                env=env,
            )
            for tag in ("alpha", "beta")
        ]
        for proc in procs:
            assert proc.wait(timeout=120) == 0
        with SQLiteVerdictStore(path) as store:
            entries = list(store.entries_since(0))
            seqs = [seq for seq, _, _ in entries]
            # Strictly monotonic, no duplicates, nothing lost.
            assert seqs == sorted(seqs)
            assert len(set(seqs)) == len(seqs) == 4 * count
            assert store.last_seq() == seqs[-1]
            verdict_keys = [
                record["key"] for _, kind, record in entries if kind == "verdict"
            ]
            expected = {f"{tag}-{i}" for tag in ("alpha", "beta") for i in range(count)}
            assert set(verdict_keys) == expected
            journal_seqs = sorted(
                (record["session"], record["seq"])
                for _, kind, record in entries
                if kind == "journal"
            )
            assert len(journal_seqs) == 2 * count
            assert store.journal_entries("sess-alpha")[-1][1]["i"] == count - 1


# ----------------------------------------------------------------------
# Router key extraction + supervisor stat merging (pure helpers)
# ----------------------------------------------------------------------
class TestRoutingKey:
    def test_session_addressing_wins(self):
        body = {"op": "mutate", "session": "s1", "scenario": "smoke"}
        assert routing_key(body) == "session:s1"

    def test_spec_is_canonical_json(self):
        a = routing_key({"op": "query", "spec": {"n": 4, "arbiter": "x"}})
        b = routing_key({"op": "query", "spec": {"arbiter": "x", "n": 4}})
        assert a == b and a.startswith("spec:")

    def test_scenario_addressing_includes_instance_and_index(self):
        by_index = routing_key({"op": "query", "scenario": "smoke", "index": 3})
        other = routing_key({"op": "query", "scenario": "smoke", "index": 4})
        assert by_index != other

    def test_slot_is_stable_and_in_range(self):
        key = "spec:whatever"
        assert _slot(key, 4) == _slot(key, 4)
        assert all(0 <= _slot(f"k{i}", 3) < 3 for i in range(64))

    def test_slot_spreads_keys(self):
        slots = {_slot(f"key-{i}", 4) for i in range(128)}
        assert slots == {0, 1, 2, 3}


class TestStatsMerging:
    def test_merge_values_adds_numbers_and_recurses(self):
        a = {"errors": 1, "tiers": {"lru": {"hits": 2}}, "draining": False}
        b = {"errors": 2, "tiers": {"lru": {"hits": 3}}, "draining": True}
        merged = _merge_values(_merge_values({}, a), b)
        assert merged["errors"] == 3
        assert merged["tiers"]["lru"]["hits"] == 5
        assert merged["draining"] is True

    def test_merge_latency_adds_counts_and_takes_worst_percentile(self):
        snap = lambda p99, count: {  # noqa: E731 -- local table builder
            "query": {
                "count": count,
                "sum": 1.0,
                "min": 0.001,
                "max": p99,
                "p50": 0.002,
                "p95": 0.003,
                "p99": p99,
                "buckets": [["0.005", count], ["+Inf", count]],
            }
        }
        merged = _merge_latency([snap(0.004, 10), snap(0.009, 5)])
        assert merged["query"]["count"] == 15
        assert merged["query"]["p99"] == 0.009
        assert merged["query"]["buckets"][0] == ["0.005", 15]


# ----------------------------------------------------------------------
# A (re)started worker replays the log before serving
# ----------------------------------------------------------------------
class TestWorkerCatchUp:
    def test_restarted_server_replays_the_log_before_serving(self, tmp_path):
        from repro.service.client import ServiceClient
        from repro.service.server import ServerThread, ServiceConfig

        path = str(tmp_path / "v.sqlite")
        with SQLiteVerdictStore(path) as seed:
            seed.put("k-a", True, name="a", seconds=0.1)
            seed.put("k-b", False, name="b", seconds=0.2)
        config = ServiceConfig(worker_id=7, catch_up_from=0)
        with ServerThread(store="sqlite://" + path, config=config) as server:
            with ServiceClient(server.address) as client:
                stats = client.stats()
        worker = stats["worker"]
        assert worker["id"] == 7
        assert worker["log_seq"] == 2
        catch_up = worker["catch_up"]
        assert catch_up["replayed"] == 2
        assert catch_up["verdicts"] == 2 and catch_up["journal"] == 0
        assert catch_up["from_seq"] == 0 and catch_up["to_seq"] == 2
        # The replay warmed the LRU: both verdicts are already resident.
        assert stats["tiers"]["lru"]["size"] == 2

    def test_catch_up_from_the_tail_replays_nothing(self, tmp_path):
        from repro.service.client import ServiceClient
        from repro.service.server import ServerThread, ServiceConfig

        path = str(tmp_path / "v.sqlite")
        with SQLiteVerdictStore(path) as seed:
            seed.put("k-a", True)
        config = ServiceConfig(catch_up_from=1)
        with ServerThread(store="sqlite://" + path, config=config) as server:
            with ServiceClient(server.address) as client:
                stats = client.stats()
        assert stats["worker"]["catch_up"]["replayed"] == 0


# ----------------------------------------------------------------------
# Loadgen separates transport recovery from service latency
# ----------------------------------------------------------------------
class TestLoadReportReconnects:
    def test_reconnects_field_reaches_the_report_dict(self):
        report = LoadReport(
            label="x",
            clients=1,
            requests=10,
            errors=0,
            overloaded=0,
            seconds=1.0,
            reconnects=3,
        )
        assert report.as_dict()["reconnects"] == 3


# ----------------------------------------------------------------------
# End to end: kill -9 under load, zero visible errors, log catch-up
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestPoolChaos:
    def _start_pool(self, tmp_path):
        sock = str(tmp_path / "pool.sock")
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--workers",
                "2",
                "--socket",
                sock,
                "--store",
                "sqlite://" + str(tmp_path / "pool.sqlite"),
                "--probe-interval",
                "0.15",
                "--restart-backoff",
                "0.1",
                "--log-level",
                "warning",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        deadline = time.time() + 60
        while time.time() < deadline:
            if proc.poll() is not None:
                raise AssertionError(
                    "pool exited early: " + proc.stderr.read().decode()
                )
            if os.path.exists(sock):
                try:
                    from repro.service.client import ServiceClient

                    with ServiceClient("unix:" + sock, timeout=5.0) as client:
                        if client.ping():
                            return proc, sock
                except Exception:  # noqa: BLE001 -- not listening yet
                    pass
            time.sleep(0.1)
        proc.kill()
        raise AssertionError("pool never became ready")

    def test_kill_dash_nine_is_invisible_to_a_retrying_client(self, tmp_path):
        from repro.service.client import ServiceClient
        from repro.service.resilience import RetryPolicy

        proc, sock = self._start_pool(tmp_path)
        try:
            policy = RetryPolicy(max_attempts=12, base_delay=0.05, max_delay=0.5)
            with ServiceClient("unix:" + sock, timeout=10.0, retry=policy) as client:
                # Warm traffic: appends raise the log past zero.
                for n in (4, 5, 6):
                    response = client.query_spec(
                        arbiter="3-colorable", family="cycle", n=n
                    )
                    assert response["ok"], response
                stats = client.stats()
                pool = stats["pool"]
                assert pool["size"] == 2 and pool["live"] == 2
                victim = pool["workers"][0]
                assert victim["pid"]
                os.kill(victim["pid"], signal.SIGKILL)

                # Traffic straight through the outage: new specs force
                # fresh appends, so the restarted worker has log entries
                # to replay; the retrying client must see zero errors.
                for n in range(7, 19):
                    response = client.query_spec(
                        arbiter="3-colorable", family="cycle", n=n
                    )
                    assert response["ok"], response

                # The supervisor notices, restarts, and the newcomer
                # reports a non-empty catch-up before rejoining.
                deadline = time.time() + 60
                revived = None
                while time.time() < deadline:
                    pool = client.stats()["pool"]
                    workers = {w["id"]: w for w in pool["workers"]}
                    candidate = workers[victim["id"]]
                    if (
                        candidate["state"] == "serving"
                        and candidate["restarts"] >= 1
                        and candidate["pid"] != victim["pid"]
                    ):
                        revived = candidate
                        break
                    time.sleep(0.2)
                assert revived is not None, f"worker never rejoined: {pool}"
                catch_up = revived["catch_up"]
                assert catch_up is not None
                assert catch_up["replayed"] > 0
                assert catch_up["to_seq"] > catch_up["from_seq"]
                assert pool["restarts"] >= 1

                # And the revived worker answers again.
                response = client.query_spec(
                    arbiter="3-colorable", family="cycle", n=5
                )
                assert response["ok"], response
        finally:
            proc.send_signal(signal.SIGINT)
            try:
                assert proc.wait(timeout=30) == 0
            except subprocess.TimeoutExpired:
                proc.kill()
                raise

    def test_sigterm_drains_the_pool_cleanly(self, tmp_path):
        proc, sock = self._start_pool(tmp_path)
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
        assert not os.path.exists(sock)
