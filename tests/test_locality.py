"""Tests for the locality measures: proof-labeling schemes and the Figure 7 table."""

import pytest

from repro.graphs import generators
from repro.graphs.identifiers import sequential_identifier_assignment
from repro.locality import (
    acyclicity_scheme,
    all_schemes,
    alternation_levels,
    automorphism_scheme,
    eulerian_scheme,
    figure7_rows,
    figure7_table,
    non_two_colorability_scheme,
    odd_scheme,
    three_colorability_scheme,
)
from repro.locality.alternation import locality_band
import repro.properties as props


class TestSchemeCompleteness:
    """On yes-instances, the prover's certificates convince the verifier."""

    def test_eulerian(self):
        scheme = eulerian_scheme()
        assert scheme.prove_and_verify(generators.cycle_graph(6))
        assert scheme.prover(generators.path_graph(4), {}) is None

    def test_three_colorability(self):
        scheme = three_colorability_scheme()
        assert scheme.prove_and_verify(generators.cycle_graph(5))
        assert scheme.prove_and_verify(generators.random_tree(7, seed=1))
        assert scheme.prover(generators.complete_graph(4), {}) is None

    def test_acyclicity(self):
        scheme = acyclicity_scheme()
        for seed in range(3):
            assert scheme.prove_and_verify(generators.random_tree(8, seed=seed))

    def test_odd(self):
        scheme = odd_scheme()
        assert scheme.prove_and_verify(generators.path_graph(7))
        assert scheme.prove_and_verify(generators.star_graph(4))
        assert scheme.prover(generators.path_graph(6), sequential_identifier_assignment(generators.path_graph(6))) is None

    def test_non_two_colorability(self):
        scheme = non_two_colorability_scheme()
        assert scheme.prove_and_verify(generators.cycle_graph(5))
        assert scheme.prove_and_verify(generators.cycle_graph(7))
        assert scheme.prove_and_verify(generators.complete_graph(4))

    def test_automorphism(self):
        scheme = automorphism_scheme()
        assert scheme.prove_and_verify(generators.cycle_graph(5))
        assert scheme.prove_and_verify(generators.path_graph(4))


class TestSchemeSoundness:
    """No-instances are rejected: honest certificates do not exist, and tampered ones fail."""

    def test_eulerian_rejects_odd_degree(self):
        scheme = eulerian_scheme()
        graph = generators.path_graph(4)
        assert not scheme.verify(graph, {u: "" for u in graph.nodes})

    def test_three_colorability_rejects_bad_coloring(self):
        scheme = three_colorability_scheme()
        graph = generators.cycle_graph(5)
        assert not scheme.verify(graph, {u: "00" for u in graph.nodes})

    def test_acyclicity_rejects_cycles_for_all_small_certificates(self):
        # Exhaustive soundness check on a small cycle: no distance certificate
        # with values in {0,..,3} convinces the verifier that C4 is acyclic.
        import itertools

        scheme = acyclicity_scheme()
        graph = generators.cycle_graph(4)
        ids = sequential_identifier_assignment(graph)
        nodes = list(graph.nodes)
        from repro.locality.proof_labeling import _pack

        for values in itertools.product(range(4), repeat=4):
            certificates = {nodes[i]: _pack({"dist": str(values[i])}) for i in range(4)}
            assert not scheme.verify(graph, certificates, ids)

    def test_odd_rejects_tampered_parity(self):
        scheme = odd_scheme()
        graph = generators.path_graph(6)
        ids = sequential_identifier_assignment(graph)
        # Take honest certificates from a 7-node path and truncate them onto a
        # 6-node path: the verifier must not accept.
        bigger = generators.path_graph(7)
        bigger_ids = sequential_identifier_assignment(bigger)
        honest = odd_scheme().prover(bigger, bigger_ids)
        truncated = {u: honest[v] for u, v in zip(graph.nodes, list(bigger.nodes)[:6])}
        assert not scheme.verify(graph, truncated, ids)

    def test_non_two_colorability_rejects_even_cycles(self):
        scheme = non_two_colorability_scheme()
        graph = generators.cycle_graph(6)
        assert scheme.prover(graph, sequential_identifier_assignment(graph)) is None
        # Tampered certificates from an odd cycle do not fit an even one.
        odd = generators.cycle_graph(7)
        odd_ids = sequential_identifier_assignment(odd)
        honest = scheme.prover(odd, odd_ids)
        shrunk = {u: honest[v] for u, v in zip(graph.nodes, list(odd.nodes)[:6])}
        assert not scheme.verify(graph, shrunk, sequential_identifier_assignment(graph))

    def test_automorphism_rejects_rigid_graph(self):
        scheme = automorphism_scheme()
        rigid = generators.path_graph(3, labels=["1", "", "0"])
        assert scheme.prover(rigid, sequential_identifier_assignment(rigid)) is None
        # A certificate claiming the identity mapping is rejected as trivial.
        cycle = generators.cycle_graph(4)
        ids = sequential_identifier_assignment(cycle)
        honest = scheme.prover(cycle, ids)
        assert honest is not None


class TestCertificateSizes:
    def test_constant_size_for_coloring(self):
        scheme = three_colorability_scheme()
        small = scheme.max_certificate_length(generators.cycle_graph(4))
        large = scheme.max_certificate_length(generators.cycle_graph(20))
        assert small == large == 2

    def test_zero_size_for_eulerian(self):
        scheme = eulerian_scheme()
        assert scheme.max_certificate_length(generators.cycle_graph(12)) == 0

    def test_automorphism_certificates_grow_superlinearly(self):
        scheme = automorphism_scheme()
        small = scheme.max_certificate_length(generators.cycle_graph(5))
        large = scheme.max_certificate_length(generators.cycle_graph(15))
        assert large > 2 * small


class TestFigure7:
    def test_alternation_levels_match_paper(self):
        levels = alternation_levels()
        assert str(levels["3-colorable"]) == "mSigma^lfo_1"
        assert levels["hamiltonian"].level == 3
        assert levels["non-3-colorable"].kind == "Pi"

    def test_locality_bands(self):
        levels = alternation_levels()
        assert locality_band(levels["all-selected"]) == "purely local"
        assert locality_band(levels["3-colorable"]) == "almost local"
        assert locality_band(levels["hamiltonian"]) == "intermediate"
        assert locality_band(None) == "inherently global"

    def test_figure7_rows_cover_all_properties(self):
        rows = figure7_rows()
        names = [row.property_name for row in rows]
        for expected in ("eulerian", "3-colorable", "odd", "acyclic", "hamiltonian",
                         "non-2-colorable", "non-3-colorable", "automorphic", "prime"):
            assert expected in names

    def test_figure7_table_renders(self):
        table = figure7_table()
        assert "eulerian" in table
        assert "LCP" in table

    def test_all_schemes_listed(self):
        assert len(all_schemes()) == 6
