"""Tests for the ground-truth graph property checkers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import generators
import repro.properties as props
from repro.properties.base import get_property, property_registry
from repro.properties.coloring import find_proper_coloring, _coloring_via_sat


class TestSelectionProperties:
    def test_all_selected(self):
        assert props.all_selected(generators.path_graph(3, labels=["1", "1", "1"]))
        assert not props.all_selected(generators.path_graph(3, labels=["1", "11", "1"]))
        assert not props.all_selected(generators.path_graph(3, labels=["1", "", "1"]))

    def test_not_all_selected_is_complement(self):
        for labels in (["1", "1"], ["1", "0"], ["", ""]):
            graph = generators.path_graph(2, labels=labels)
            assert props.not_all_selected(graph) == (not props.all_selected(graph))

    def test_one_selected(self):
        assert props.one_selected(generators.path_graph(3, labels=["", "1", ""]))
        assert not props.one_selected(generators.path_graph(3, labels=["1", "1", ""]))
        assert not props.one_selected(generators.path_graph(3, labels=["", "", ""]))


class TestColoring:
    def test_chromatic_numbers(self):
        assert props.chromatic_number(generators.complete_graph(4)) == 4
        assert props.chromatic_number(generators.cycle_graph(5)) == 3
        assert props.chromatic_number(generators.cycle_graph(6)) == 2
        assert props.chromatic_number(generators.single_node()) == 1

    def test_two_colorable_is_bipartiteness(self):
        assert props.two_colorable(generators.cycle_graph(8))
        assert not props.two_colorable(generators.cycle_graph(9))
        assert props.two_colorable(generators.random_tree(9, seed=2))

    def test_three_colorable(self):
        assert props.three_colorable(generators.cycle_graph(5))
        assert not props.three_colorable(generators.complete_graph(4))

    def test_found_coloring_is_proper(self):
        graph = generators.random_connected_graph(8, seed=5)
        coloring = find_proper_coloring(graph, 3)
        if coloring is not None:
            for u, v in graph.edge_pairs():
                assert coloring[u] != coloring[v]

    def test_sat_based_coloring_agrees_with_backtracking(self):
        for seed in range(3):
            graph = generators.random_connected_graph(7, seed=seed)
            assert (find_proper_coloring(graph, 3) is None) == (_coloring_via_sat(graph, 3) is None)

    def test_labels_form_proper_coloring(self):
        good = generators.cycle_graph(4, labels=["0", "1", "0", "10"])
        bad = generators.cycle_graph(4, labels=["0", "0", "1", "10"])
        missing = generators.cycle_graph(4, labels=["0", "1", "0", ""])
        assert props.labels_form_proper_coloring(good, 3)
        assert not props.labels_form_proper_coloring(bad, 3)
        assert not props.labels_form_proper_coloring(missing, 3)


class TestThreeRoundColoring:
    def test_figure1(self):
        assert not props.three_round_three_colorable(generators.figure1_no_instance())
        assert props.three_round_three_colorable(generators.figure1_yes_instance())

    def test_graph_without_low_degree_nodes_reduces_to_plain_coloring(self):
        # With no degree-1 or degree-2 nodes, Eve colors everything herself.
        k4 = generators.complete_graph(4)
        assert props.three_round_three_colorable(k4) == props.three_colorable(k4)

    def test_three_round_implies_three_colorable(self):
        for graph in (
            generators.figure1_yes_instance(),
            generators.star_graph(3),
            generators.path_graph(4),
        ):
            if props.three_round_three_colorable(graph):
                assert props.three_colorable(graph)


class TestCycleProperties:
    def test_eulerian_iff_all_degrees_even(self):
        assert props.eulerian(generators.cycle_graph(7))
        assert not props.eulerian(generators.path_graph(5))
        assert not props.eulerian(generators.star_graph(3))

    def test_hamiltonian_examples(self):
        assert props.hamiltonian(generators.cycle_graph(5))
        assert props.hamiltonian(generators.complete_graph(4))
        assert not props.hamiltonian(generators.path_graph(4))
        assert not props.hamiltonian(generators.star_graph(3))

    def test_hamiltonian_on_tiny_graphs(self):
        assert not props.hamiltonian(generators.single_node())
        assert not props.hamiltonian(generators.path_graph(2))

    def test_acyclic(self):
        assert props.acyclic(generators.random_tree(8, seed=0))
        assert not props.acyclic(generators.cycle_graph(4))

    def test_odd(self):
        assert props.odd(generators.path_graph(5))
        assert not props.odd(generators.path_graph(6))


class TestMiscProperties:
    def test_automorphic(self):
        assert props.automorphic(generators.cycle_graph(5))
        asym = generators.path_graph(3, labels=["1", "", "0"])
        assert not props.automorphic(asym)

    def test_prime_cardinality(self):
        assert props.prime_cardinality(generators.cycle_graph(7))
        assert not props.prime_cardinality(generators.cycle_graph(9))
        assert not props.prime_cardinality(generators.single_node())

    def test_bounded_structural_degree(self):
        graph = generators.cycle_graph(4, labels=["11", "", "", ""])
        assert props.bounded_structural_degree(graph, 4)
        assert not props.bounded_structural_degree(graph, 3)


class TestRegistry:
    def test_registry_contains_figure7_properties(self):
        for name in ("eulerian", "3-colorable", "hamiltonian", "automorphic", "prime"):
            assert name in property_registry

    def test_get_property_and_complement(self):
        eulerian = get_property("eulerian")
        assert eulerian(generators.cycle_graph(4))
        assert not eulerian.complement()(generators.cycle_graph(4))

    def test_get_property_unknown_name(self):
        with pytest.raises(KeyError):
            get_property("definitely-not-a-property")


@settings(max_examples=20, deadline=None)
@given(size=st.integers(min_value=3, max_value=9))
def test_cycles_are_hamiltonian_and_two_colorable_iff_even(size):
    cycle = generators.cycle_graph(size)
    assert props.hamiltonian(cycle)
    assert props.two_colorable(cycle) == (size % 2 == 0)
    assert props.eulerian(cycle)


@settings(max_examples=20, deadline=None)
@given(size=st.integers(min_value=2, max_value=9), seed=st.integers(min_value=0, max_value=20))
def test_trees_are_acyclic_and_never_hamiltonian(size, seed):
    tree = generators.random_tree(size, seed=seed)
    assert props.acyclic(tree)
    assert not props.hamiltonian(tree)
    assert props.two_colorable(tree)
