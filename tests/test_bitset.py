"""Bitset tier equivalence: masks == compiled == PR-1 engine == oracle.

The vectorized tier (``repro.engine.bitset`` plus the mask-pruned searches
and quantifier collapse in ``CompiledGameEngine``) must be bit-identical to
the PR-3 compiled engine (``use_bitset=False``), the PR-1 engine
(``GameEngine`` constructed directly) and the exhaustive reference solver,
across every builtin rule kind, identifier scheme, certificate space
(including empty ones, which gate the collapse) and quantifier prefix.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import BitsetKernel, CompiledGameEngine, CompiledInstance, GameEngine
from repro.graphs import generators
from repro.graphs.identifiers import (
    random_identifier_assignment,
    sequential_identifier_assignment,
    small_identifier_assignment,
)
from repro.hierarchy.certificate_spaces import (
    bit_space,
    color_space,
    empty_space,
    enumerated_space,
)
from repro.hierarchy.game import Quantifier, eve_wins, pi_prefix, sigma_prefix
from repro.locality.proof_labeling import all_schemes
from repro.machines import builtin
from repro.machines.rules import PairwiseRule, rule_of


def _graph_pool():
    return [
        generators.cycle_graph(3),
        generators.cycle_graph(5),
        generators.path_graph(4, labels=["1", "0", "1", "1"]),
        generators.star_graph(4),
        generators.complete_graph(4),
        generators.random_tree(6, seed=11),
        generators.grid_graph(2, 3),
    ]


def _ruled_machine_pool():
    return [
        builtin.three_colorability_verifier(),
        builtin.two_colorability_verifier(),
        builtin.eulerian_decider(),
        builtin.all_selected_decider(),
        builtin.coloring_label_verifier(2),
        builtin.selected_equals_certificate_verifier(),
        builtin.constant_algorithm("1"),
        builtin.constant_algorithm("0"),
    ]


def _space_pool():
    return [
        bit_space(),
        color_space(2),
        color_space(3),
        empty_space(),
        enumerated_space(("", "1"), name="maybe-one"),
    ]


def _id_schemes(graph, rng):
    yield sequential_identifier_assignment(graph)
    yield small_identifier_assignment(graph, 1)
    yield random_identifier_assignment(graph, 1, rng=random.Random(rng.randrange(100)))


def _engine(machine, graph, ids, spaces, use_bitset):
    return CompiledGameEngine(
        machine,
        graph,
        ids,
        spaces,
        instance=CompiledInstance(machine, graph, ids),
        use_bitset=use_bitset,
    )


class TestMaskTables:
    """Rules emit the mask tables the kernel is built from."""

    def test_own_code_mask_matches_rule(self):
        machine = builtin.three_colorability_verifier()
        rule = rule_of(machine)
        assert isinstance(rule, PairwiseRule)
        alphabet = ["", "00", "01", "10", "junk"]
        mask = rule.own_code_mask("1", 2, alphabet)
        for code, certificate in enumerate(alphabet):
            assert bool((mask >> code) & 1) == bool(rule.own_ok("1", 2, certificate))

    def test_mutual_pair_mask_requires_both_directions(self):
        machine = builtin.three_colorability_verifier()
        rule = rule_of(machine)
        alphabet = ["", "00", "01", "10"]
        mask = rule.mutual_pair_mask("1", "1", "00", alphabet)
        for code, certificate in enumerate(alphabet):
            expected = rule.pair_ok("1", certificate, "1", "00") and rule.pair_ok(
                "1", "00", "1", certificate
            )
            assert bool((mask >> code) & 1) == bool(expected)

    def test_pair_ok_none_yields_all_ones(self):
        machine = builtin.eulerian_decider()
        rule = rule_of(machine)
        assert rule.pair_ok is None
        alphabet = ["", "x", "y"]
        assert rule.mutual_pair_mask("1", "1", "", alphabet) == 0b111

    def test_kernel_snapshot_goes_stale_on_interning(self):
        machine = builtin.three_colorability_verifier()
        graph = generators.cycle_graph(4)
        ids = sequential_identifier_assignment(graph)
        instance = CompiledInstance(machine, graph, ids)
        kernel = instance.bitset_kernel()
        assert isinstance(kernel, BitsetKernel) and kernel.fresh()
        instance.intern("fresh-certificate")
        assert not kernel.fresh()
        rebuilt = instance.bitset_kernel()
        assert rebuilt is not kernel and rebuilt.fresh()

    def test_unruled_instance_has_no_kernel(self):
        machine = builtin.predicate_decider(1, lambda view: True, name="bare")
        graph = generators.cycle_graph(3)
        ids = sequential_identifier_assignment(graph)
        assert CompiledInstance(machine, graph, ids).bitset_kernel() is None


class TestBitsetEquivalence:
    """bitset == PR-3 compiled == PR-1 engine == exhaustive oracle."""

    @pytest.mark.parametrize("level", [0, 1])
    def test_randomized_equivalence(self, level):
        rng = random.Random(170 + level)
        for trial in range(10):
            graph = rng.choice(_graph_pool())
            machine = rng.choice(_ruled_machine_pool())
            spaces = [rng.choice(_space_pool()) for _ in range(level)]
            for ids in _id_schemes(graph, rng):
                for prefix in (sigma_prefix(level), pi_prefix(level)):
                    expected = eve_wins(machine, graph, ids, spaces, prefix)
                    legacy = GameEngine(machine, graph, ids, spaces).eve_wins(prefix)
                    compiled = _engine(machine, graph, ids, spaces, False).eve_wins(prefix)
                    bitset = _engine(machine, graph, ids, spaces, True).eve_wins(prefix)
                    assert expected == legacy == compiled == bitset, (
                        trial, machine, graph, [s.name for s in spaces], prefix, ids,
                    )

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_hypothesis_two_level_collapse(self, data):
        """EA/AE games on ruled machines: the collapse must match the oracle.

        Two-level games with a level-0 rule exercise the quantifier
        collapse (the inner level cannot change the verdict) including its
        vacuity guard (empty candidate spaces flip FORALL levels).
        """
        graphs = [
            generators.path_graph(2, labels=["1", "1"]),
            generators.cycle_graph(3),
            generators.path_graph(3, labels=["1", "0", "1"]),
        ]
        graph = graphs[data.draw(st.integers(min_value=0, max_value=len(graphs) - 1))]
        machines = _ruled_machine_pool()
        machine = machines[
            data.draw(st.integers(min_value=0, max_value=len(machines) - 1))
        ]
        pool = [bit_space(), enumerated_space(("", "1"), name="m1"), empty_space()]
        spaces = [
            pool[data.draw(st.integers(min_value=0, max_value=2))] for _ in range(2)
        ]
        quantifiers = [
            Quantifier.EXISTS if bit else Quantifier.FORALL
            for bit in (data.draw(st.booleans()), data.draw(st.booleans()))
        ]
        ids = sequential_identifier_assignment(graph)
        expected = eve_wins(machine, graph, ids, spaces, quantifiers)
        bitset = _engine(machine, graph, ids, spaces, True).eve_wins(quantifiers)
        compiled = _engine(machine, graph, ids, spaces, False).eve_wins(quantifiers)
        assert expected == bitset == compiled

    def test_star_rules_through_bitset_search(self):
        # Star verifiers (slot masks): honest certificate spaces must accept,
        # arbitrary small spaces must agree with the oracle, both prefixes.
        for scheme in all_schemes():
            graph = generators.cycle_graph(5)
            ids = sequential_identifier_assignment(graph)
            for spaces in ([bit_space()], [enumerated_space(("", "1"), name="m1")]):
                for prefix in (sigma_prefix(1), pi_prefix(1)):
                    expected = eve_wins(scheme.verifier, graph, ids, spaces, prefix)
                    got = _engine(scheme.verifier, graph, ids, spaces, True).eve_wins(prefix)
                    assert expected == got, (scheme.property_name, prefix)

    def test_winning_first_move_parity(self):
        machine = builtin.three_colorability_verifier()
        for graph in (generators.cycle_graph(3), generators.complete_graph(4)):
            ids = sequential_identifier_assignment(graph)
            for prefix in (sigma_prefix(1), pi_prefix(1)):
                bitset = _engine(machine, graph, ids, [color_space(3)], True)
                compiled = _engine(machine, graph, ids, [color_space(3)], False)
                assert bitset.winning_first_move(prefix) == compiled.winning_first_move(
                    prefix
                )

    def test_fixed_prefix_equivalence(self):
        machine = builtin.three_colorability_verifier()
        graph = generators.cycle_graph(3)
        ids = sequential_identifier_assignment(graph)
        fixed = [{u: "00" for u in graph.nodes}]
        expected = eve_wins(machine, graph, ids, [color_space(3)], sigma_prefix(1), fixed)
        engine = _engine(machine, graph, ids, [color_space(3)], True)
        assert engine.eve_wins(sigma_prefix(1), fixed) == expected


class TestPruningBehavior:
    def test_reject_heavy_instance_prunes_blocks(self):
        # K4 is not 3-colorable: the whole search must die in the masks.
        machine = builtin.three_colorability_verifier()
        graph = generators.complete_graph(4)
        ids = sequential_identifier_assignment(graph)
        engine = _engine(machine, graph, ids, [color_space(3)], True)
        assert engine.eve_wins(sigma_prefix(1)) is False
        assert engine.stats.bitset_prunes > 0
        # The pairwise mask search leaves no per-node memo trail at all.
        assert engine.compiled.memo_info()["size"] == 0

    def test_star_masks_are_cached_across_backtracks(self):
        scheme = [s for s in all_schemes() if s.property_name == "acyclic"][0]
        graph = generators.random_tree(6, seed=3)
        ids = sequential_identifier_assignment(graph)
        engine = _engine(scheme.verifier, graph, ids, [bit_space()], True)
        value = engine.eve_wins(sigma_prefix(1))
        kernel = engine.compiled.bitset_kernel()
        assert kernel.star_entries > 0
        # Re-running answers from the transposition cache; the kernel's
        # tables are still those of the first run.
        evaluations = kernel.evaluations
        assert engine.eve_wins(sigma_prefix(1)) == value
        assert kernel.evaluations == evaluations

    def test_uniform_label_fast_path_matches_generic(self):
        machine = builtin.two_colorability_verifier()
        graph = generators.cycle_graph(6)  # uniform labels
        assert len(set(graph.label(u) for u in graph.nodes)) == 1
        ids = sequential_identifier_assignment(graph)
        bitset = _engine(machine, graph, ids, [bit_space()], True).eve_wins(sigma_prefix(1))
        oracle = eve_wins(machine, graph, ids, [bit_space()], sigma_prefix(1))
        assert bitset == oracle is True
