"""Compiled core equivalence: compiled engine vs PR-1 engine vs oracle.

The compiled instance core (``repro.engine.compiled``) must be bit-identical
to both the PR-1 engine (``GameEngine`` constructed directly) and the
exhaustive reference solver ``repro.hierarchy.game.eve_wins`` on every
machine kind (table-driven pairwise rules, star rules, the generic direct
path, ball simulation), every identifier scheme (globally unique, locally
unique, colliding), every quantifier prefix and every certificate space.
These tests assert that three-way equivalence on randomized instances, plus
the compiled-specific machinery: incremental packed restriction keys,
alphabet rebase, memo bounds and counters, and kernel selection.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    CompiledGameEngine,
    CompiledInstance,
    GameEngine,
    LeafEvaluator,
    compile_instance,
    evaluate_batch,
)
from repro.engine.batch import GameInstance
from repro.engine.caching import EvaluatorStats, LRUCache
from repro.graphs import generators
from repro.graphs.identifiers import (
    cyclic_identifier_assignment,
    random_identifier_assignment,
    sequential_identifier_assignment,
    small_identifier_assignment,
)
from repro.hierarchy.certificate_spaces import (
    bit_space,
    color_space,
    empty_space,
    enumerated_space,
    materialize_space,
)
from repro.hierarchy.game import (
    Quantifier,
    eve_wins,
    pi_prefix,
    sigma_prefix,
    winning_first_move,
)
from repro.locality.proof_labeling import all_schemes
from repro.machines import builtin
from repro.machines.local_algorithm import NeighborhoodGatherAlgorithm
from repro.machines.rules import PairwiseRule, StarRule, rule_of
from repro.machines.simulator import execute


class _SubclassedGather(NeighborhoodGatherAlgorithm):
    """Behaviorally identical subclass: forces the simulation fallback."""


def _parity_machine():
    def compute(view):
        ones = sum(
            cert.count("1") for _, certs in view.certificates for cert in certs
        )
        return "1" if ones % 2 == 0 else "0"

    return NeighborhoodGatherAlgorithm(1, compute, name="cert-parity")


def _graph_pool():
    return [
        generators.cycle_graph(3),
        generators.cycle_graph(5),
        generators.cycle_graph(6),
        generators.path_graph(2, labels=["1", "1"]),
        generators.path_graph(4, labels=["1", "0", "1", "1"]),
        generators.star_graph(4),
        generators.complete_graph(4),
        generators.random_tree(6, seed=11),
        generators.grid_graph(2, 3),
    ]


def _ruled_machine_pool():
    """Machines carrying declarative rules (pairwise and star kernels)."""
    return [
        builtin.three_colorability_verifier(),
        builtin.two_colorability_verifier(),
        builtin.eulerian_decider(),
        builtin.all_selected_decider(),
        builtin.coloring_label_verifier(2),
        builtin.selected_equals_certificate_verifier(),
        builtin.constant_algorithm("1"),
        builtin.constant_algorithm("0"),
    ]


def _machine_pool():
    return _ruled_machine_pool() + [
        _parity_machine(),
        _SubclassedGather(1, _parity_machine().compute, name="cert-parity-sub"),
    ]


def _space_pool():
    return [
        bit_space(),
        color_space(2),
        color_space(3),
        empty_space(),
        enumerated_space(("", "1"), name="maybe-one"),
    ]


def _id_schemes(graph, rng):
    yield sequential_identifier_assignment(graph)
    yield small_identifier_assignment(graph, 1)
    yield random_identifier_assignment(graph, 1, rng=random.Random(rng.randrange(100)))


class TestThreeWayEquivalence:
    """compiled == PR-1 engine == exhaustive oracle, on randomized instances."""

    @pytest.mark.parametrize("level", [0, 1])
    def test_randomized_equivalence(self, level):
        rng = random.Random(40 + level)
        for trial in range(10):
            graph = rng.choice(_graph_pool())
            machine = rng.choice(_machine_pool())
            spaces = [rng.choice(_space_pool()) for _ in range(level)]
            for ids in _id_schemes(graph, rng):
                for prefix in (sigma_prefix(level), pi_prefix(level)):
                    expected = eve_wins(machine, graph, ids, spaces, prefix)
                    legacy = GameEngine(machine, graph, ids, spaces).eve_wins(prefix)
                    compiled = CompiledGameEngine(
                        machine, graph, ids, spaces,
                        instance=CompiledInstance(machine, graph, ids),
                    ).eve_wins(prefix)
                    assert expected == legacy == compiled, (
                        trial, machine, graph, [s.name for s in spaces], prefix, ids,
                    )

    @pytest.mark.slow
    def test_randomized_equivalence_level_two(self):
        rng = random.Random(99)
        small_graphs = [
            generators.path_graph(2, labels=["1", "1"]),
            generators.cycle_graph(3),
            generators.path_graph(3, labels=["1", "0", "1"]),
        ]
        small_spaces = [bit_space(), enumerated_space(("", "1"), name="maybe-one")]
        for trial in range(6):
            graph = rng.choice(small_graphs)
            machine = rng.choice(_machine_pool())
            spaces = [rng.choice(small_spaces) for _ in range(2)]
            ids = sequential_identifier_assignment(graph)
            for prefix in (sigma_prefix(2), pi_prefix(2)):
                expected = eve_wins(machine, graph, ids, spaces, prefix)
                compiled = CompiledGameEngine(machine, graph, ids, spaces).eve_wins(prefix)
                assert expected == compiled, (trial, prefix)

    def test_colliding_identifiers_force_simulation_and_agree(self):
        # Cyclic identifiers collide at the gather horizon (Proposition 26):
        # kernels must be refused and the simulator's behavior reproduced.
        machine = builtin.two_colorability_verifier()
        graph = generators.cycle_graph(6)
        ids = cyclic_identifier_assignment(graph, 3)
        instance = CompiledInstance(machine, graph, ids)
        assert not instance.direct
        assert instance.rule is None
        spaces = [bit_space()]
        for prefix in (sigma_prefix(1), pi_prefix(1)):
            expected = eve_wins(machine, graph, ids, spaces, prefix)
            got = CompiledGameEngine(machine, graph, ids, spaces, instance=instance).eve_wins(prefix)
            assert expected == got

    def test_fixed_prefix_equivalence(self):
        machine = builtin.three_colorability_verifier()
        graph = generators.cycle_graph(3)
        ids = sequential_identifier_assignment(graph)
        fixed = [{u: "00" for u in graph.nodes}]
        expected = eve_wins(machine, graph, ids, [color_space(3)], sigma_prefix(1), fixed)
        engine = CompiledGameEngine(machine, graph, ids, [color_space(3)])
        assert engine.eve_wins(sigma_prefix(1), fixed) == expected

    def test_prefix_length_validation(self):
        graph = generators.cycle_graph(3)
        ids = sequential_identifier_assignment(graph)
        engine = CompiledGameEngine(builtin.constant_algorithm(), graph, ids, [bit_space()])
        with pytest.raises(ValueError):
            engine.eve_wins([])
        with pytest.raises(ValueError):
            engine.winning_first_move([])

    def test_winning_first_move_parity(self):
        machine = builtin.three_colorability_verifier()
        for graph in (generators.cycle_graph(3), generators.complete_graph(4)):
            ids = sequential_identifier_assignment(graph)
            for prefix in (sigma_prefix(1), pi_prefix(1)):
                expected = winning_first_move(machine, graph, ids, [color_space(3)], prefix)
                legacy = GameEngine(machine, graph, ids, [color_space(3)]).winning_first_move(prefix)
                compiled = CompiledGameEngine(
                    machine, graph, ids, [color_space(3)],
                    instance=CompiledInstance(machine, graph, ids),
                ).winning_first_move(prefix)
                assert expected == legacy == compiled


class TestProofLabelingKernels:
    """The star-rule verifiers must agree with simulation on real certificates."""

    def test_schemes_verify_through_compiled_kernels(self):
        samples = {
            "eulerian": generators.cycle_graph(8),
            "3-colorable": generators.cycle_graph(9),
            "acyclic": generators.random_tree(8, seed=4),
            "odd": generators.path_graph(7),
            "non-2-colorable": generators.cycle_graph(7),
            "automorphic": generators.cycle_graph(6),
        }
        for scheme in all_schemes():
            graph = samples[scheme.property_name]
            ids = sequential_identifier_assignment(graph)
            certificates = scheme.prover(graph, ids)
            assert certificates is not None, scheme.property_name
            instance = CompiledInstance(scheme.verifier, graph, ids)
            stats = EvaluatorStats()
            got = instance.accepts_dicts([dict(certificates)], stats)
            expected = execute(scheme.verifier, graph, ids, [dict(certificates)]).accepts()
            assert got == expected is True, scheme.property_name

    def test_star_rule_rejections_match_simulator(self):
        # Corrupted certificates must be rejected identically node by node.
        rng = random.Random(7)
        for scheme in all_schemes():
            if scheme.property_name == "eulerian":
                continue
            graph = generators.cycle_graph(5) if scheme.decide(generators.cycle_graph(5)) else generators.path_graph(5)
            ids = sequential_identifier_assignment(graph)
            certificates = scheme.prover(graph, ids) or {u: "" for u in graph.nodes}
            corrupted = dict(certificates)
            victim = rng.choice(list(corrupted))
            corrupted[victim] = "10101010"
            instance = CompiledInstance(scheme.verifier, graph, ids)
            stats = EvaluatorStats()
            got = instance.verdicts_dicts([corrupted], stats)
            expected = execute(scheme.verifier, graph, ids, [corrupted]).verdicts()
            assert got == expected, scheme.property_name

    def test_kernel_selection(self):
        graph = generators.cycle_graph(5)
        ids = sequential_identifier_assignment(graph)
        pairwise = CompiledInstance(builtin.three_colorability_verifier(), graph, ids)
        assert isinstance(pairwise.rule, PairwiseRule)
        star_machine = [s for s in all_schemes() if s.property_name == "acyclic"][0].verifier
        star = CompiledInstance(star_machine, graph, ids)
        assert isinstance(star.rule, StarRule)
        unruled = CompiledInstance(_parity_machine(), graph, ids)
        assert unruled.rule is None and unruled.direct
        simulated = CompiledInstance(
            _SubclassedGather(1, _parity_machine().compute, name="sub"), graph, ids
        )
        assert simulated.rule is None and not simulated.direct

    def test_certificate_free_rules_apply_at_level_zero(self):
        # eulerian's rule reads no certificates, so even the 0-level game
        # runs on the table-driven kernel (no simulator, no local views).
        graph = generators.cycle_graph(6)
        ids = sequential_identifier_assignment(graph)
        instance = CompiledInstance(builtin.eulerian_decider(), graph, ids)
        stats = EvaluatorStats()
        assert instance.accepts_dicts([], stats) is True
        assert stats.simulator_runs == 0
        expected = execute(builtin.eulerian_decider(), graph, ids).accepts()
        assert expected is True


class TestIncrementalKeys:
    """Packed restriction keys under deltas must equal keys rebuilt from dicts."""

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_incremental_keys_match_rebuilt(self, data):
        graph_index = data.draw(st.integers(min_value=0, max_value=len(_graph_pool()) - 1))
        graph = _graph_pool()[graph_index]
        machine = builtin.three_colorability_verifier()
        ids = sequential_identifier_assignment(graph)
        instance = CompiledInstance(machine, graph, ids)
        levels = data.draw(st.integers(min_value=1, max_value=2))
        state = instance.new_state(levels)
        certificates = ["", "0", "1", "00", "01", "10", "11"]
        n = instance.n
        deltas = data.draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=levels - 1),
                    st.integers(min_value=0, max_value=n - 1),
                    st.sampled_from(certificates),
                ),
                max_size=25,
            )
        )
        for level, v, certificate in deltas:
            state.set_code(level, v, instance.intern(certificate))
            state.sync()
        # Rebuild every node's key from the decoded assignment dicts.
        alphabet = instance.alphabet
        assignments = [
            {instance.nodes[v]: alphabet[state.codes[level][v]] for v in range(n)}
            for level in range(levels)
        ]
        for u in range(n):
            assert state.keys[u] == instance.key_from_dicts(u, assignments), (u, deltas)

    def test_rebase_preserves_verdicts_and_keys(self):
        machine = builtin.three_colorability_verifier()
        graph = generators.cycle_graph(5)
        ids = sequential_identifier_assignment(graph)
        instance = CompiledInstance(machine, graph, ids)
        state = instance.new_state(1)
        state.set_code(0, 0, instance.intern("00"))
        before_gen = instance.generation
        # Intern past the initial capacity to force at least one rebase.
        for i in range(2 ** instance.shift + 5):
            instance.intern(format(i, "b").zfill(12))
        assert instance.generation > before_gen
        state.sync()
        assignments = [{instance.nodes[v]: instance.alphabet[state.codes[0][v]] for v in range(instance.n)}]
        for u in range(instance.n):
            assert state.keys[u] == instance.key_from_dicts(u, assignments)
        # Verdicts after the rebase still match the simulator.
        stats = EvaluatorStats()
        expected = execute(machine, graph, ids, [dict(assignments[0])]).accepts()
        assert instance.accepts_dicts(assignments, stats) == expected

    def test_transposition_keys_span_generations(self):
        # An engine queried across a rebase must not serve a stale value.
        machine = builtin.three_colorability_verifier()
        graph = generators.cycle_graph(4)
        ids = sequential_identifier_assignment(graph)
        instance = CompiledInstance(machine, graph, ids)
        engine = CompiledGameEngine(machine, graph, ids, [color_space(3)], instance=instance)
        value = engine.eve_wins(sigma_prefix(1))
        for i in range(2 ** instance.shift + 5):
            instance.intern(format(i, "b").zfill(10))
        assert engine.eve_wins(sigma_prefix(1)) == value


class TestBoundsAndCounters:
    """LRU caps and hit/miss/eviction counters (the memory-bound satellite)."""

    def test_lru_cache_eviction_and_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)  # evicts "b", the least recently used
        assert "b" not in cache
        assert cache.get("b", "miss") == "miss"
        assert cache.get("a") == 1 and cache.get("c") == 3
        info = cache.info()
        assert info["evictions"] == 1
        assert info["hits"] == 3 and info["misses"] == 1
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_compiled_memo_cap_and_counters(self):
        machine = builtin.three_colorability_verifier()
        graph = generators.cycle_graph(6)
        ids = sequential_identifier_assignment(graph)
        instance = CompiledInstance(machine, graph, ids, memo_cap=8)
        # The bitset tier bypasses the per-node memo for pairwise rules, so
        # the cap machinery is exercised through the PR-3 engine behavior.
        engine = CompiledGameEngine(
            machine, graph, ids, [color_space(3)], instance=instance, use_bitset=False
        )
        assert engine.eve_wins(sigma_prefix(1)) is True
        info = instance.memo_info()
        assert info["maxsize"] == 8
        assert info["size"] <= 8 + instance.n  # one segment sweep granularity
        assert info["evictions"] > 0
        assert info["hits"] + info["misses"] > 0
        # Correctness is unaffected by the tiny cap.
        expected = eve_wins(machine, graph, ids, [color_space(3)], sigma_prefix(1))
        assert engine.eve_wins(sigma_prefix(1)) == expected

    def test_simulation_harvest_keeps_memo_accounting_consistent(self):
        # Regression: the whole-graph harvest of the simulation fallback can
        # trigger segment eviction (rebinding the per-node memo dicts) while
        # a verdict is being computed; the caller must not write into a
        # stale dict or count phantom entries.
        import itertools as it

        machine = _SubclassedGather(1, _parity_machine().compute, name="sub")
        graph = generators.cycle_graph(5)
        ids = sequential_identifier_assignment(graph)
        instance = CompiledInstance(machine, graph, ids, memo_cap=6)
        assert not instance.direct  # simulation path, whole-graph balls
        state = instance.new_state(1)
        stats = EvaluatorStats()
        zero, one = instance.intern(""), instance.intern("1")
        for bits in it.product((zero, one), repeat=instance.n):
            for v, code in enumerate(bits):
                state.set_code(0, v, code)
            assignment = {
                instance.nodes[v]: instance.alphabet[bits[v]] for v in range(instance.n)
            }
            expected = execute(machine, graph, ids, [assignment]).verdicts()
            for u in range(instance.n):
                got = instance.node_verdict_state(u, state, stats)
                assert got == expected[instance.nodes[u]], (bits, u)
        info = instance.memo_info()
        live_entries = sum(len(memo) for memo in instance.memo_nodes)
        assert info["size"] == live_entries, (info, live_entries)
        assert info["evictions"] > 0

    def test_engine_transposition_cap_and_counters(self):
        machine = builtin.three_colorability_verifier()
        graph = generators.cycle_graph(4)
        ids = sequential_identifier_assignment(graph)
        engine = CompiledGameEngine(
            machine, graph, ids, [color_space(3)], transposition_cap=4
        )
        value = engine.eve_wins(sigma_prefix(1))
        assert engine.eve_wins(sigma_prefix(1)) == value
        info = engine.transposition_info()
        assert info["maxsize"] == 4
        assert info["size"] <= 4
        assert info["hits"] >= 1  # the repeated root query

    def test_legacy_engine_transposition_cap(self):
        machine = builtin.three_colorability_verifier()
        graph = generators.cycle_graph(4)
        ids = sequential_identifier_assignment(graph)
        engine = GameEngine(machine, graph, ids, [color_space(3)], transposition_cap=2)
        value = engine.eve_wins(sigma_prefix(1))
        assert engine.eve_wins(sigma_prefix(1)) == value
        info = engine.transposition_info()
        assert info["maxsize"] == 2 and info["size"] <= 2

    def test_leaf_evaluator_memo_info_both_paths(self):
        machine = builtin.eulerian_decider()
        graph = generators.cycle_graph(4)
        ids = sequential_identifier_assignment(graph)
        for compiled in (None, False):
            evaluator = LeafEvaluator(machine, graph, ids, compiled=compiled)
            evaluator.accepts([])
            evaluator.accepts([])
            info = evaluator.memo_info()
            assert info["hits"] >= 1
            base = {"size", "maxsize", "hits", "misses", "evictions"}
            # The compiled path also reports rewire invalidations.
            assert base <= set(info) <= base | {"invalidations"}

    def test_legacy_leaf_memo_cap(self):
        machine = builtin.three_colorability_verifier()
        graph = generators.cycle_graph(5)
        ids = sequential_identifier_assignment(graph)
        evaluator = LeafEvaluator(machine, graph, ids, compiled=False, memo_cap=3)
        rng = random.Random(0)
        for _ in range(20):
            assignment = {u: rng.choice(["00", "01", "10"]) for u in graph.nodes}
            expected = execute(machine, graph, ids, [assignment]).accepts()
            assert evaluator.accepts([assignment]) == expected
        info = evaluator.memo_info()
        assert info["maxsize"] == 3 and info["size"] <= 3
        assert info["evictions"] > 0


class TestSharingAndIntegration:
    def test_for_game_returns_compiled_engine(self):
        machine = builtin.three_colorability_verifier()
        graph = generators.cycle_graph(3)
        ids = sequential_identifier_assignment(graph)
        engine = GameEngine.for_game(machine, graph, ids, [color_space(3)])
        assert isinstance(engine, CompiledGameEngine)

    def test_compile_instance_registry_shares(self):
        machine = builtin.eulerian_decider()
        graph = generators.cycle_graph(4)
        ids = sequential_identifier_assignment(graph)
        assert compile_instance(machine, graph, ids) is compile_instance(machine, graph, ids)

    def test_leaf_evaluator_shares_instance_memo_with_engine(self):
        machine = builtin.three_colorability_verifier()
        graph = generators.cycle_graph(4)
        ids = sequential_identifier_assignment(graph)
        instance = CompiledInstance(machine, graph, ids)
        # The bitset search leaves no memo trail for pairwise rules; the
        # shared-memo contract is the PR-3 engine behavior.
        engine = CompiledGameEngine(
            machine, graph, ids, [color_space(3)], instance=instance, use_bitset=False
        )
        assert engine.eve_wins(sigma_prefix(1)) is True
        evaluator = LeafEvaluator(machine, graph, ids, compiled=instance)
        coloring = {u: c for u, c in zip(graph.nodes, ["00", "01", "00", "01"])}
        before = instance.memo_info()["misses"]
        assert evaluator.accepts([coloring]) is True
        # The engine's search already visited this proper coloring.
        assert instance.memo_info()["misses"] == before

    def test_batch_runs_on_compiled_engines(self):
        machine = builtin.three_colorability_verifier()
        graphs = [generators.cycle_graph(3), generators.complete_graph(4), generators.cycle_graph(5)]
        instances = [
            GameInstance(
                machine,
                graph,
                sequential_identifier_assignment(graph),
                [color_space(3)],
                sigma_prefix(1),
            )
            for graph in graphs
        ]
        values = evaluate_batch(instances)
        assert values == [True, False, True]

    def test_materialized_space_is_cached_and_coded(self):
        space = color_space(3)
        graph = generators.cycle_graph(4)
        ids = sequential_identifier_assignment(graph)
        first = materialize_space(space, graph, ids)
        assert materialize_space(space, graph, ids) is first
        assert first.alphabet == ("00", "01", "10")
        assert all(candidates == ("00", "01", "10") for candidates in first.per_node)

    def test_fingerprints_unchanged_by_coded_materialization(self):
        # The store key must still hash the same payload as the per-node
        # candidate functions (warm stores stay valid).
        from repro.sweep.fingerprint import instance_key

        machine = builtin.three_colorability_verifier()
        graph = generators.cycle_graph(4)
        ids = sequential_identifier_assignment(graph)
        key_one = instance_key(machine, graph, ids, [color_space(3)], sigma_prefix(1))
        key_two = instance_key(machine, graph, ids, [color_space(3)], sigma_prefix(1))
        assert key_one == key_two
        other = instance_key(machine, graph, ids, [color_space(2)], sigma_prefix(1))
        assert other != key_one

    def test_rule_of_rejects_foreign_attributes(self):
        machine = builtin.three_colorability_verifier()
        machine.local_rule = object()  # not a rule: must be ignored
        assert rule_of(machine) is None
        graph = generators.cycle_graph(3)
        ids = sequential_identifier_assignment(graph)
        instance = CompiledInstance(machine, graph, ids)
        assert instance.rule is None
        expected = eve_wins(machine, graph, ids, [color_space(3)], sigma_prefix(1))
        engine = CompiledGameEngine(machine, graph, ids, [color_space(3)], instance=instance)
        assert engine.eve_wins(sigma_prefix(1)) == expected
