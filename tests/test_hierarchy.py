"""Tests for the Eve/Adam certificate game and the arbiter specifications (Section 4)."""

import pytest

from repro.graphs import generators
from repro.graphs.identifiers import (
    random_identifier_assignment,
    sequential_identifier_assignment,
    small_identifier_assignment,
)
from repro.hierarchy import (
    ArbiterSpec,
    Quantifier,
    bit_space,
    color_space,
    empty_space,
    enumerated_space,
    eve_wins,
    pi_membership,
    sigma_membership,
    three_colorability_spec,
    two_colorability_spec,
)
from repro.hierarchy.arbiters import all_selected_spec, eulerian_spec, lp_decider_spec, nlp_verifier_spec
from repro.hierarchy.game import sigma_prefix, pi_prefix, winning_first_move
from repro.machines import builtin
import repro.properties as props


class TestCertificateSpaces:
    def test_enumerated_space_assignments(self, triangle):
        ids = sequential_identifier_assignment(triangle)
        space = enumerated_space(("0", "1"))
        assignments = list(space.assignments(triangle, ids))
        assert len(assignments) == 8
        assert space.assignment_count(triangle, ids) == 8

    def test_color_space_widths(self):
        assert set(color_space(3).candidates(None, None, None)) == {"00", "01", "10"}
        assert set(color_space(2).candidates(None, None, None)) == {"0", "1"}

    def test_empty_space(self, triangle):
        ids = sequential_identifier_assignment(triangle)
        assert list(empty_space().assignments(triangle, ids)) == [
            {u: "" for u in triangle.nodes}
        ]

    def test_boundedness_check(self, triangle):
        from repro.graphs.certificates import polynomial

        ids = sequential_identifier_assignment(triangle)
        small = color_space(3)
        huge = enumerated_space(("1" * 1000,))
        assert small.is_bounded(triangle, ids, 1, polynomial(1))
        assert not huge.is_bounded(triangle, ids, 1, polynomial(1))


class TestGamePrefixes:
    def test_sigma_and_pi_prefixes(self):
        assert sigma_prefix(3) == [Quantifier.EXISTS, Quantifier.FORALL, Quantifier.EXISTS]
        assert pi_prefix(2) == [Quantifier.FORALL, Quantifier.EXISTS]

    def test_prefix_and_space_length_must_match(self, triangle):
        ids = sequential_identifier_assignment(triangle)
        with pytest.raises(ValueError):
            eve_wins(builtin.constant_algorithm(), triangle, ids, [bit_space()], [])


class TestNLPGames:
    def test_three_colorability_game(self):
        spec = three_colorability_spec()
        assert spec.decide(generators.cycle_graph(3))
        assert spec.decide(generators.cycle_graph(5))
        assert not spec.decide(generators.complete_graph(4))

    def test_two_colorability_game(self):
        spec = two_colorability_spec()
        assert spec.decide(generators.cycle_graph(4))
        assert not spec.decide(generators.cycle_graph(5))

    def test_game_outcome_independent_of_identifiers(self):
        spec = three_colorability_spec()
        graph = generators.cycle_graph(5)
        outcomes = {
            spec.decide(graph, sequential_identifier_assignment(graph)),
            spec.decide(graph, small_identifier_assignment(graph, 1)),
            spec.decide(graph, random_identifier_assignment(graph, 1)),
        }
        assert outcomes == {True}

    def test_sigma_membership_function(self, triangle):
        ids = sequential_identifier_assignment(triangle)
        assert sigma_membership(
            builtin.three_colorability_verifier(), triangle, ids, [color_space(3)]
        )

    def test_pi_membership_is_dual(self, triangle):
        ids = sequential_identifier_assignment(triangle)
        # With a universal quantifier, the bad colorings make the game false.
        assert not pi_membership(
            builtin.three_colorability_verifier(), triangle, ids, [color_space(3)]
        )

    def test_winning_first_move_is_a_proper_coloring(self, triangle):
        ids = sequential_identifier_assignment(triangle)
        move = winning_first_move(
            builtin.three_colorability_verifier(),
            triangle,
            ids,
            [color_space(3)],
            sigma_prefix(1),
        )
        assert move is not None
        colors = {u: move[u] for u in triangle.nodes}
        assert len(set(colors.values())) == 3

    def test_no_winning_move_on_k4(self, k4):
        ids = sequential_identifier_assignment(k4)
        move = winning_first_move(
            builtin.three_colorability_verifier(), k4, ids, [color_space(3)], sigma_prefix(1)
        )
        assert move is None


class TestLPSpecs:
    def test_all_selected_spec(self):
        spec = all_selected_spec()
        assert spec.class_name() == "LP"
        assert spec.decide(generators.path_graph(3, labels=["1", "1", "1"]))
        assert not spec.decide(generators.path_graph(3, labels=["1", "0", "1"]))

    def test_eulerian_spec_matches_ground_truth(self):
        spec = eulerian_spec()
        for graph in (generators.cycle_graph(4), generators.path_graph(4), generators.star_graph(4)):
            assert spec.decide(graph) == props.eulerian(graph)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ArbiterSpec("broken", builtin.constant_algorithm(), level=1, spaces=())
        with pytest.raises(ValueError):
            ArbiterSpec("broken", builtin.constant_algorithm(), level=0, kind="Delta")

    def test_class_names(self):
        nlp = nlp_verifier_spec("x", builtin.constant_algorithm(), bit_space())
        lp = lp_decider_spec("y", builtin.constant_algorithm())
        assert nlp.class_name() == "NLP"
        assert lp.class_name() == "LP"
        pi2 = ArbiterSpec(
            "z", builtin.constant_algorithm(), level=2, kind="Pi", spaces=(bit_space(), bit_space())
        )
        assert pi2.class_name() == "Pi^lp_2"

    def test_certificates_bounded(self, triangle):
        spec = three_colorability_spec()
        ids = sequential_identifier_assignment(triangle)
        assert spec.certificates_bounded(triangle, ids)


class TestLevelTwoGame:
    def test_toy_sigma2_game(self):
        """A Sigma^lp_2 game: Eve commits a bit, Adam challenges, arbiter compares.

        The arbiter accepts iff Eve's certificate (level 1) equals the node's
        label at every node -- regardless of Adam's certificate.  Hence Eve
        wins exactly on every graph, and the game degenerates as expected.
        """
        from repro.machines.local_algorithm import LocalView, NeighborhoodGatherAlgorithm

        def compute(view: LocalView) -> str:
            certs = view.center_certificates()
            return "1" if certs and certs[0] == view.center_label() else "0"

        arbiter = NeighborhoodGatherAlgorithm(0, compute)
        spec = ArbiterSpec(
            "echo-label", arbiter, level=2, kind="Sigma", spaces=(bit_space(), bit_space())
        )
        graph = generators.path_graph(3, labels=["0", "1", "0"])
        assert spec.decide(graph)

    def test_toy_pi2_game(self):
        """A Pi^lp_2 game where Adam can always break the arbiter.

        The arbiter accepts iff Adam's certificate (level 1) is all zeros;
        since Adam moves first he simply plays a 1 somewhere, so no graph has
        the arbitrated property.
        """
        from repro.machines.local_algorithm import LocalView, NeighborhoodGatherAlgorithm

        def compute(view: LocalView) -> str:
            certs = view.center_certificates()
            return "1" if certs and certs[0] == "0" else "0"

        arbiter = NeighborhoodGatherAlgorithm(0, compute)
        spec = ArbiterSpec(
            "adam-breaks", arbiter, level=2, kind="Pi", spaces=(bit_space(), bit_space())
        )
        assert not spec.decide(generators.path_graph(2))
