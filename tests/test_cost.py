"""Tests for the resource accounting of locally polynomial machines."""

from repro.graphs import generators
from repro.graphs.certificates import polynomial
from repro.machines import builtin
from repro.machines.cost import (
    measure_resources,
    messages_polynomially_bounded,
    round_time_is_constant,
    turing_steps_polynomially_bounded,
)
from repro.machines.turing import label_is_one_machine


def graph_family():
    return [
        generators.cycle_graph(4, labels=["1"] * 4),
        generators.cycle_graph(8, labels=["1"] * 8),
        generators.cycle_graph(16, labels=["1"] * 16),
    ]


class TestConstantRoundTime:
    def test_all_selected_decider(self):
        assert round_time_is_constant(builtin.all_selected_decider(), graph_family())

    def test_eulerian_decider(self):
        assert round_time_is_constant(builtin.eulerian_decider(), graph_family())

    def test_turing_machine(self):
        assert round_time_is_constant(label_is_one_machine(), graph_family())


class TestMessageBounds:
    def test_gathering_messages_are_polynomially_bounded(self):
        # The radius-1 gatherer forwards its known ball: polynomial (here even
        # quasi-linear) in the neighborhood information content.
        bound = polynomial(2, coefficient=32, constant=64)
        assert messages_polynomially_bounded(builtin.eulerian_decider(), graph_family(), bound)

    def test_turing_machine_sends_nothing(self):
        report = measure_resources(label_is_one_machine(), graph_family())
        assert all(length == 0 for length in report.max_message_lengths)

    def test_report_contents(self):
        report = measure_resources(builtin.all_selected_decider(), graph_family())
        assert len(report.rounds_used) == 3
        assert report.constant_rounds()


class TestTuringStepBounds:
    def test_label_machine_steps_are_linear(self):
        graph = generators.cycle_graph(6, labels=["1"] * 6)
        assert turing_steps_polynomially_bounded(
            label_is_one_machine(), graph, polynomial(1, coefficient=4, constant=8)
        )
