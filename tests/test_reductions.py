"""Tests for the locally polynomial reductions of Section 8."""

import pytest

from repro.boolsat import boolean_graph_from_formulas
from repro.graphs import generators
from repro.graphs.identifiers import sequential_identifier_assignment
from repro.machines import builtin
from repro.reductions import (
    AllSelectedToEulerian,
    AllSelectedToHamiltonian,
    LPToAllSelectedReduction,
    NotAllSelectedToHamiltonian,
    SatGraphToThreeSatGraph,
    ThreeSatGraphToThreeColorable,
    decide_through_reduction,
    verify_cluster_map,
    verify_reduction_equivalence,
)
import repro.properties as props


def labeled_test_graphs():
    """Labeled graphs mixing yes- and no-instances of all-selected."""
    return [
        generators.path_graph(3, labels=["1", "1", "1"]),
        generators.path_graph(3, labels=["1", "0", "1"]),
        generators.figure3_graph(),
        generators.figure3_graph().with_uniform_label("1"),
        generators.cycle_graph(4, labels=["1"] * 4),
        generators.cycle_graph(4, labels=["1", "1", "11", "1"]),
        generators.single_node("1"),
        generators.single_node("0"),
        generators.star_graph(3, center_label="1", leaf_label="1"),
        generators.star_graph(3, center_label="0", leaf_label="1"),
    ]


class TestEulerianReduction:
    """Proposition 18 / Figure 9: all-selected -> eulerian."""

    def test_equivalence(self):
        failures = verify_reduction_equivalence(
            AllSelectedToEulerian(), props.all_selected, props.eulerian, labeled_test_graphs()
        )
        assert failures == []

    def test_cluster_map_validity(self):
        reduction = AllSelectedToEulerian()
        for graph in labeled_test_graphs():
            assert verify_cluster_map(reduction.apply(graph))

    def test_figure9_instance(self):
        result = AllSelectedToEulerian().apply(generators.figure9_graph())
        assert not props.eulerian(result.output_graph)
        assert result.output_graph.cardinality() == 6

    def test_output_size_is_linear(self):
        graph = generators.cycle_graph(6, labels=["1"] * 6)
        result = AllSelectedToEulerian().apply(graph)
        assert result.output_graph.cardinality() == 2 * graph.cardinality()

    def test_decide_through_reduction(self):
        reduction = AllSelectedToEulerian()
        for graph in labeled_test_graphs():
            assert decide_through_reduction(reduction, props.eulerian, graph) == props.all_selected(graph)


class TestHamiltonianReduction:
    """Proposition 19 / Figures 3 and 10: all-selected -> hamiltonian."""

    def test_equivalence(self):
        failures = verify_reduction_equivalence(
            AllSelectedToHamiltonian(), props.all_selected, props.hamiltonian, labeled_test_graphs()
        )
        assert failures == []

    def test_cluster_map_validity(self):
        reduction = AllSelectedToHamiltonian()
        for graph in labeled_test_graphs():
            assert verify_cluster_map(reduction.apply(graph))

    def test_figure3_instance_has_bad_node(self):
        result = AllSelectedToHamiltonian().apply(generators.figure3_graph())
        bad_nodes = [w for w in result.output_graph.nodes if w[1] == ("bad",)]
        assert len(bad_nodes) == 1
        assert result.output_graph.degree(bad_nodes[0]) == 1
        assert not props.hamiltonian(result.output_graph)

    def test_all_selected_figure3_variant_is_hamiltonian(self):
        graph = generators.figure3_graph().with_uniform_label("1")
        result = AllSelectedToHamiltonian().apply(graph)
        assert props.hamiltonian(result.output_graph)

    def test_cluster_sizes_follow_degrees(self):
        graph = generators.star_graph(3, center_label="1", leaf_label="1")
        result = AllSelectedToHamiltonian().apply(graph)
        center_cluster = result.cluster_nodes("center")
        leaf_cluster = result.cluster_nodes("leaf0")
        assert len(center_cluster) == 6  # 2 * degree 3
        assert len(leaf_cluster) == 3  # 2 * degree 1 + one dummy


class TestNotAllSelectedReduction:
    """Proposition 20 / Figure 11: not-all-selected -> hamiltonian."""

    def test_equivalence_on_small_graphs(self):
        graphs = [
            generators.path_graph(2, labels=["1", "1"]),
            generators.path_graph(2, labels=["1", "0"]),
            generators.path_graph(3, labels=["1", "0", "1"]),
            generators.cycle_graph(3, labels=["1", "1", "1"]),
            generators.single_node("1"),
            generators.single_node("0"),
        ]
        failures = verify_reduction_equivalence(
            NotAllSelectedToHamiltonian(), props.not_all_selected, props.hamiltonian, graphs
        )
        assert failures == []

    def test_cluster_has_two_layers(self):
        graph = generators.path_graph(2, labels=["1", "0"])
        result = NotAllSelectedToHamiltonian().apply(graph)
        nodes = list(graph.nodes)
        cluster = result.cluster_nodes(nodes[0])
        assert len(cluster) == 2 * (2 * 1 + 3)
        assert verify_cluster_map(result)

    def test_vertical_edges_follow_labels(self):
        graph = generators.path_graph(2, labels=["1", "0"])
        result = NotAllSelectedToHamiltonian().apply(graph)
        output = result.output_graph
        selected, unselected = list(graph.nodes)
        assert output.has_edge((unselected, ("top", "x1")), (unselected, ("bot", "x1")))
        assert not output.has_edge((selected, ("top", "x1")), (selected, ("bot", "x1")))


class TestLPToAllSelected:
    """Remark 17: every LP property reduces to all-selected."""

    def test_eulerian_reduces_to_all_selected(self):
        reduction = LPToAllSelectedReduction(builtin.eulerian_decider())
        graphs = [generators.cycle_graph(4), generators.path_graph(4), generators.star_graph(4)]
        failures = verify_reduction_equivalence(
            reduction, props.eulerian, props.all_selected, graphs
        )
        assert failures == []

    def test_reduction_is_topology_preserving(self):
        reduction = LPToAllSelectedReduction(builtin.eulerian_decider())
        graph = generators.cycle_graph(5)
        result = reduction.apply(graph)
        assert result.output_graph.cardinality() == graph.cardinality()
        assert len(result.output_graph.edges) == len(graph.edges)


class TestSatGraphReductions:
    """Theorem 23: sat-graph -> 3-sat-graph -> 3-colorable."""

    @staticmethod
    def boolean_test_graphs():
        return [
            boolean_graph_from_formulas({"u": "P1 | ~P2", "v": "P2 & P3"}, [("u", "v")]),
            boolean_graph_from_formulas({"u": "P1 & ~P1"}, []),
            boolean_graph_from_formulas({"u": "P1", "v": "~P1"}, [("u", "v")]),
            boolean_graph_from_formulas({"u": "P1", "v": "~P1", "w": "P2"}, [("u", "w"), ("w", "v")]),
        ]

    def test_tseytin_step_equivalence_and_domain(self):
        reduction = SatGraphToThreeSatGraph()
        graphs = self.boolean_test_graphs()
        failures = verify_reduction_equivalence(
            reduction, props.sat_graph, props.three_sat_graph, graphs
        )
        assert failures == []
        for graph in graphs:
            assert props.three_sat_graph_domain(reduction.apply(graph).output_graph)

    def test_tseytin_step_is_topology_preserving(self):
        reduction = SatGraphToThreeSatGraph()
        graph = self.boolean_test_graphs()[0]
        result = reduction.apply(graph)
        assert result.output_graph.cardinality() == graph.cardinality()

    def test_coloring_step_equivalence(self):
        to_three = SatGraphToThreeSatGraph()
        to_coloring = ThreeSatGraphToThreeColorable()
        graphs = [to_three.apply(g).output_graph for g in self.boolean_test_graphs()]
        failures = verify_reduction_equivalence(
            to_coloring, props.sat_graph, props.three_colorable, graphs
        )
        assert failures == []

    def test_coloring_step_cluster_map(self):
        to_three = SatGraphToThreeSatGraph()
        to_coloring = ThreeSatGraphToThreeColorable()
        graph = to_three.apply(self.boolean_test_graphs()[0]).output_graph
        assert verify_cluster_map(to_coloring.apply(graph))

    def test_full_pipeline_matches_sat_graph(self):
        to_three = SatGraphToThreeSatGraph()
        to_coloring = ThreeSatGraphToThreeColorable()
        for graph in self.boolean_test_graphs():
            intermediate = to_three.apply(graph).output_graph
            final = to_coloring.apply(intermediate).output_graph
            assert props.three_colorable(final) == props.sat_graph(graph)
