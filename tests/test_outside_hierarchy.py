"""Tests for the Section 9.3 outside-the-hierarchy witnesses."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines.builtin import constant_algorithm, predicate_decider
from repro.pictures.automata import divisibility_dfa, parity_dfa
from repro.separations.outside_hierarchy import (
    cycle_pumping_report,
    dfa_pumping_contradiction,
    is_perfect_square,
    is_power_of_two,
    is_prime,
    power_of_two_cardinality_fooling,
    prime_cardinality_fooling,
    unary_word,
)


# ----------------------------------------------------------------------
# Cardinality predicates
# ----------------------------------------------------------------------
class TestCardinalityPredicates:
    def test_primes(self):
        primes = [n for n in range(1, 30) if is_prime(n)]
        assert primes == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]

    def test_powers_of_two(self):
        powers = [n for n in range(1, 40) if is_power_of_two(n)]
        assert powers == [1, 2, 4, 8, 16, 32]

    def test_perfect_squares(self):
        squares = [n for n in range(0, 30) if is_perfect_square(n)]
        assert squares == [0, 1, 4, 9, 16, 25]

    @given(st.integers(min_value=2, max_value=500))
    def test_prime_definition(self, value):
        divisors = [d for d in range(2, value) if value % d == 0]
        assert is_prime(value) == (not divisors)

    def test_unary_word(self):
        assert unary_word(4) == "1111"
        with pytest.raises(ValueError):
            unary_word(0)


# ----------------------------------------------------------------------
# Word-level half: no DFA recognizes the prime / power-of-two lengths
# ----------------------------------------------------------------------
class TestDfaPumpingContradiction:
    @pytest.mark.parametrize("modulus", [2, 3, 4, 5])
    def test_divisibility_dfas_fail_on_primes(self, modulus):
        witness = dfa_pumping_contradiction(divisibility_dfa(modulus), is_prime)
        assert witness is not None
        if witness["kind"] == "pumping contradiction":
            assert witness["dfa_accepts_pumped"]
            assert not witness["predicate_holds_pumped"]

    def test_parity_dfa_fails_on_powers_of_two(self):
        witness = dfa_pumping_contradiction(parity_dfa(), is_power_of_two)
        assert witness is not None

    def test_parity_dfa_fails_on_squares(self):
        witness = dfa_pumping_contradiction(parity_dfa(), is_perfect_square)
        assert witness is not None

    def test_correct_dfa_for_its_own_language_gives_no_direct_disagreement(self):
        # A DFA that genuinely recognizes its own (regular) language yields no
        # *direct* disagreement; if a witness is produced at all, it must come
        # from the pumping stage and must not be a refutation of regularity.
        dfa = divisibility_dfa(3)
        predicate = lambda n: n % 3 == 0  # noqa: E731 -- tiny inline predicate
        witness = dfa_pumping_contradiction(dfa, predicate, max_length=30)
        assert witness is None


# ----------------------------------------------------------------------
# Graph-level half: cycle pumping against concrete verifiers
# ----------------------------------------------------------------------
class TestCyclePumping:
    def test_accept_everything_verifier_is_fooled_on_primes(self):
        report = prime_cardinality_fooling(constant_algorithm("1"), prime_length=23)
        assert report.property_holds_originally
        assert report.verifier_accepts_originally
        assert report.fooled
        assert report.pumped_length is not None
        assert not is_prime(report.pumped_length)
        assert report.verifier_accepts_pumped

    def test_accept_everything_verifier_is_fooled_on_powers_of_two(self):
        report = power_of_two_cardinality_fooling(constant_algorithm("1"), exponent=5)
        assert report.fooled
        assert report.pumped_length is not None
        assert not is_power_of_two(report.pumped_length)

    def test_local_window_verifier_is_fooled(self):
        # A verifier that checks an arbitrary radius-1 local condition (here:
        # "the node and its neighbors are all selected") cannot tell prime
        # cycles from pumped composite ones.
        verifier = predicate_decider(
            1,
            lambda view: all(view.label_of(v) == "1" for v in view.nodes),
            name="local-window",
        )
        report = prime_cardinality_fooling(verifier, prime_length=29)
        assert report.verifier_accepts_originally
        assert report.fooled

    def test_report_when_no_pair_exists(self):
        # On a very short cycle there is no pair of indistinguishable nodes far
        # enough apart, so the argument reports that no pumping was possible.
        report = cycle_pumping_report(
            constant_algorithm("1"),
            is_prime,
            cycle_length=5,
            identifier_period=5,
            view_radius=2,
        )
        assert report.pumped_length is None
        assert not report.fooled

    def test_prime_length_validation(self):
        with pytest.raises(ValueError):
            prime_cardinality_fooling(constant_algorithm("1"), prime_length=24)

    def test_exponent_validation(self):
        with pytest.raises(ValueError):
            power_of_two_cardinality_fooling(constant_algorithm("1"), exponent=2)
