"""Structured JSON-lines logging: shape, levels, trace correlation."""

import io
import json

import pytest

from repro.obs import log as obslog
from repro.obs.trace import RequestTrace, active


@pytest.fixture()
def sink():
    """A StringIO sink at debug level, restored to defaults afterwards."""
    stream = io.StringIO()
    obslog.configure(level="debug", stream=stream)
    yield stream
    obslog.configure(level="info")
    obslog._config.stream = None  # back to stderr-at-emit for other tests


def _lines(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestEmission:
    def test_one_json_object_per_line_with_required_keys(self, sink):
        logger = obslog.get_logger("repro.test")
        logger.info("something-happened", count=3, label="x")
        (event,) = _lines(sink)
        assert event["level"] == "info"
        assert event["logger"] == "repro.test"
        assert event["event"] == "something-happened"
        assert event["count"] == 3
        assert event["label"] == "x"
        assert isinstance(event["ts"], float)

    def test_non_serializable_fields_stringify(self, sink):
        logger = obslog.get_logger("repro.test")
        logger.error("store-put-failure", error=ValueError("boom"))
        (event,) = _lines(sink)
        assert "boom" in event["error"]

    def test_get_logger_is_cached(self):
        assert obslog.get_logger("a.b") is obslog.get_logger("a.b")


class TestLevels:
    def test_below_threshold_is_suppressed(self, sink):
        obslog.configure(level="warning")
        logger = obslog.get_logger("repro.test")
        logger.debug("quiet")
        logger.info("quiet-too")
        logger.warning("loud")
        logger.error("louder")
        events = [e["event"] for e in _lines(sink)]
        assert events == ["loud", "louder"]

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError):
            obslog.configure(level="chatty")

    def test_level_name_reports_threshold(self, sink):
        obslog.configure(level="error")
        assert obslog.level_name() == "error"
        obslog.configure(level="debug")
        assert obslog.level_name() == "debug"

    def test_env_var_sets_the_default(self, monkeypatch):
        monkeypatch.setenv(obslog.LEVEL_ENV_VAR, "WARNING")
        assert obslog._Config().threshold == obslog.LEVELS["warning"]
        monkeypatch.setenv(obslog.LEVEL_ENV_VAR, "nonsense")
        assert obslog._Config().threshold == obslog.LEVELS["info"]


class TestCorrelation:
    def test_events_inside_a_trace_carry_its_ids(self, sink):
        logger = obslog.get_logger("repro.test")
        trace = RequestTrace(op="query", request_id=41)
        trace.annotate(session="alpha")
        with active(trace):
            logger.info("inside")
        logger.info("outside")
        inside, outside = _lines(sink)
        assert inside["trace_id"] == trace.trace_id
        assert inside["request_id"] == 41
        assert inside["session"] == "alpha"
        assert "trace_id" not in outside
        assert "request_id" not in outside

    def test_trace_without_session_omits_the_key(self, sink):
        logger = obslog.get_logger("repro.test")
        with active(RequestTrace(op="query", request_id=1)):
            logger.info("inside")
        (event,) = _lines(sink)
        assert "session" not in event

    def test_caller_fields_win_over_correlation(self, sink):
        # A call site that explicitly passes session overrides the
        # ambient annotation -- fields update after correlation.
        logger = obslog.get_logger("repro.test")
        trace = RequestTrace(op="query")
        trace.annotate(session="ambient")
        with active(trace):
            logger.info("inside", session="explicit")
        (event,) = _lines(sink)
        assert event["session"] == "explicit"
