"""Tests for the separation witnesses of Section 9.1 (Propositions 24 and 26)."""

import pytest

from repro.graphs import generators
from repro.graphs.identifiers import is_locally_unique, sequential_identifier_assignment
from repro.machines import builtin, execute
from repro.machines.local_algorithm import NeighborhoodGatherAlgorithm
from repro.separations import (
    decider_is_fooled,
    distance_counter_verifier,
    counter_certificates,
    fooling_pair,
    hierarchy_facts,
    lp_vs_nlp_separation_report,
    nodes_with_equal_views,
    pump_cycle,
    pumping_breaks_verifier,
    separation_table,
)
from repro.separations.lp_vs_nlp import views_coincide
from repro.separations.views import certified_view_signature, corresponding_verdicts_equal
import repro.properties as props


class TestViewSignatures:
    def test_identical_nodes_on_symmetric_cycle(self):
        graph = generators.cycle_graph(9)
        from repro.graphs.identifiers import cyclic_identifier_assignment

        ids = cyclic_identifier_assignment(graph, period=3)
        pairs = nodes_with_equal_views(graph, ids, radius=1)
        assert pairs  # period-3 identifiers on C9 create indistinguishable nodes

    def test_distinct_labels_break_equality(self):
        graph = generators.cycle_graph(6, labels=["1", "0", "1", "1", "1", "1"])
        ids = sequential_identifier_assignment(graph)
        assert nodes_with_equal_views(graph, ids, radius=1) == []

    def test_signature_contains_certificates(self):
        graph = generators.cycle_graph(4)
        ids = sequential_identifier_assignment(graph)
        nodes = list(graph.nodes)
        sig_plain = certified_view_signature(graph, ids, nodes[0], 1)
        sig_cert = certified_view_signature(graph, ids, nodes[0], 1, [{u: "1" for u in nodes}])
        assert sig_plain != sig_cert


class TestLPvsNLP:
    def test_fooling_pair_shape(self):
        pair = fooling_pair(identifier_radius=2)
        assert pair.odd_cycle.cardinality() % 2 == 1
        assert pair.doubled_cycle.cardinality() == 2 * pair.odd_cycle.cardinality()
        assert not props.two_colorable(pair.odd_cycle)
        assert props.two_colorable(pair.doubled_cycle)

    def test_identifier_assignments_are_locally_unique(self):
        pair = fooling_pair(identifier_radius=2)
        assert is_locally_unique(pair.odd_cycle, pair.odd_ids, 2)
        assert is_locally_unique(pair.doubled_cycle, pair.doubled_ids, 2)

    def test_views_coincide_below_half_length(self):
        pair = fooling_pair(identifier_radius=3)  # odd cycle of length 7
        assert views_coincide(pair, radius=1)
        assert views_coincide(pair, radius=2)

    def test_every_constant_round_machine_is_fooled(self):
        pair = fooling_pair(identifier_radius=2)
        machines = [
            builtin.all_selected_decider(),
            builtin.eulerian_decider(),
            NeighborhoodGatherAlgorithm(1, lambda view: "1" if view.size() == 3 else "0"),
        ]
        for machine in machines:
            assert decider_is_fooled(machine, pair)
            assert corresponding_verdicts_equal(
                machine,
                pair.doubled_cycle,
                pair.doubled_ids,
                pair.odd_cycle,
                pair.odd_ids,
                pair.correspondence,
            )

    def test_separation_report(self):
        candidate = NeighborhoodGatherAlgorithm(1, lambda view: "1", name="candidate")
        report = lp_vs_nlp_separation_report(candidate, identifier_radius=2)
        assert report["separation_established"]

    def test_nlp_side_distinguishes_the_pair(self):
        # 2-colorability *is* in NLP: the game arbitrates the two graphs differently.
        from repro.hierarchy import two_colorability_spec

        pair = fooling_pair(identifier_radius=1)
        spec = two_colorability_spec()
        assert not spec.decide(pair.odd_cycle, pair.odd_ids)
        assert spec.decide(pair.doubled_cycle, pair.doubled_ids)

    def test_fooling_pair_validation(self):
        with pytest.raises(ValueError):
            fooling_pair(identifier_radius=0)
        with pytest.raises(ValueError):
            fooling_pair(identifier_radius=2, length=6)


class TestColPvsNLP:
    def test_counter_verifier_is_complete(self):
        graph = generators.cycle_graph(12, labels=["0"] + ["1"] * 11)
        from repro.graphs.identifiers import cyclic_identifier_assignment

        ids = cyclic_identifier_assignment(graph, 3)
        certificates = counter_certificates(graph, modulus=4)
        verifier = distance_counter_verifier(4)
        assert execute(verifier, graph, ids, [certificates]).accepts()

    def test_counter_certificates_require_unselected_node(self):
        with pytest.raises(ValueError):
            counter_certificates(generators.cycle_graph(5, labels=["1"] * 5), 4)

    def test_pump_cycle_removes_the_unselected_node(self):
        graph = generators.cycle_graph(12, labels=["0"] + ["1"] * 11)
        ids = sequential_identifier_assignment(graph)
        certificates = {u: "0" for u in graph.nodes}
        order = list(graph.nodes)
        pumped = pump_cycle(graph, ids, certificates, order[3], order[9], avoid=order[0])
        assert props.all_selected(pumped.graph)
        assert pumped.graph.cardinality() == 6

    def test_pumping_breaks_the_counter_verifier(self):
        report = pumping_breaks_verifier(modulus=4, identifier_period=3)
        assert report["verifier_complete"]
        assert report["pair_found"]
        assert report["pumped_all_selected"]
        assert report["pumped_still_accepted"]
        assert report["soundness_broken"]

    def test_pumping_with_other_parameters(self):
        report = pumping_breaks_verifier(modulus=2, identifier_period=3, cycle_length=24)
        assert report["verifier_complete"]
        if report["pair_found"]:
            assert report["soundness_broken"]


class TestWitnessTable:
    def test_facts_cover_the_figure(self):
        facts = hierarchy_facts()
        statements = " ".join(fact.statement for fact in facts)
        assert "LP ⊊ NLP" in statements
        assert "coLP" in statements
        assert len(facts) >= 8

    def test_executable_witnesses_run(self):
        rows = separation_table()
        evidence_rows = [row for row in rows if "evidence" in row]
        assert len(evidence_rows) >= 3
        lp_nlp = next(row for row in rows if "LP ⊊ NLP" in row["statement"])
        assert lp_nlp["evidence"]["separation_established"]
