"""Tests for identifier assignments and certificate assignments (Section 3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import generators
from repro.graphs.certificates import (
    CertificateList,
    is_rp_bounded,
    neighborhood_information,
    polynomial,
    trivial_certificate_assignment,
)
from repro.graphs.identifiers import (
    cyclic_identifier_assignment,
    is_globally_unique,
    is_locally_unique,
    is_small,
    random_identifier_assignment,
    sequential_identifier_assignment,
    small_identifier_assignment,
)


class TestIdentifierAssignments:
    def test_sequential_ids_are_globally_unique(self, five_cycle):
        ids = sequential_identifier_assignment(five_cycle)
        assert is_globally_unique(five_cycle, ids)
        assert is_locally_unique(five_cycle, ids, radius=3)

    def test_small_assignment_is_locally_unique_and_small(self):
        graph = generators.cycle_graph(9)
        for radius in (1, 2):
            ids = small_identifier_assignment(graph, radius)
            assert is_locally_unique(graph, ids, radius)
            assert is_small(graph, ids, radius)

    def test_remark3_small_assignment_exists_on_random_graphs(self):
        # Remark 3: small locally unique assignments always exist.
        for seed in range(4):
            graph = generators.random_connected_graph(7, seed=seed)
            ids = small_identifier_assignment(graph, 2)
            assert is_locally_unique(graph, ids, 2)
            assert is_small(graph, ids, 2)

    def test_cyclic_assignment_local_uniqueness(self):
        graph = generators.cycle_graph(12)
        ids = cyclic_identifier_assignment(graph, period=3)
        assert is_locally_unique(graph, ids, radius=1)
        assert not is_globally_unique(graph, ids)

    def test_cyclic_assignment_fails_for_too_large_radius(self):
        graph = generators.cycle_graph(12)
        ids = cyclic_identifier_assignment(graph, period=3)
        assert not is_locally_unique(graph, ids, radius=3)

    def test_random_assignment_is_globally_unique(self):
        graph = generators.random_connected_graph(8, seed=1)
        ids = random_identifier_assignment(graph, radius=2)
        assert is_globally_unique(graph, ids)

    def test_missing_node_raises(self, triangle):
        ids = sequential_identifier_assignment(triangle)
        del ids[list(triangle.nodes)[0]]
        with pytest.raises(ValueError):
            is_locally_unique(triangle, ids, 1)


class TestCertificates:
    def test_trivial_assignment_is_bounded(self, path4):
        ids = sequential_identifier_assignment(path4)
        kappa = trivial_certificate_assignment(path4)
        assert is_rp_bounded(path4, ids, kappa, radius=1, bound=polynomial(1))

    def test_neighborhood_information_counts_labels_and_ids(self):
        graph = generators.path_graph(3, labels=["11", "1", ""])
        ids = {u: "0" if i == 0 else "1" for i, u in enumerate(graph.nodes)}
        ids[list(graph.nodes)[2]] = "10"
        center = list(graph.nodes)[1]
        # ball(center, 1) = all 3 nodes: (1+2+1) + (1+1+1) + (1+0+2) = 10
        assert neighborhood_information(graph, ids, center, 1) == 10

    def test_rp_bound_violation_detected(self, triangle):
        ids = sequential_identifier_assignment(triangle)
        nodes = list(triangle.nodes)
        kappa = {nodes[0]: "1" * 500, nodes[1]: "", nodes[2]: ""}
        assert not is_rp_bounded(triangle, ids, kappa, radius=1, bound=polynomial(1))

    def test_certificate_list_combined_string(self, triangle):
        nodes = list(triangle.nodes)
        k1 = {u: "1" for u in nodes}
        k2 = {u: "01" for u in nodes}
        certificate_list = CertificateList([k1, k2])
        assert certificate_list.combined(nodes[0]) == "1#01"
        assert certificate_list.certificate(1, nodes[0]) == "01"

    def test_certificate_list_roundtrip(self, path4):
        nodes = list(path4.nodes)
        k1 = {u: "10" for u in nodes}
        k2 = {u: "" for u in nodes}
        k3 = {u: "111" for u in nodes}
        original = CertificateList([k1, k2, k3])
        combined = {u: original.combined(u) for u in nodes}
        parsed = CertificateList.from_combined(path4, combined)
        assert parsed == original

    def test_append_does_not_mutate(self, triangle):
        base = CertificateList()
        extended = base.append({u: "1" for u in triangle.nodes})
        assert len(base) == 0
        assert len(extended) == 1

    def test_polynomial_constructor_validation(self):
        with pytest.raises(ValueError):
            polynomial(-1)
        bound = polynomial(2, coefficient=3, constant=1)
        assert bound(2) == 13


@settings(max_examples=20, deadline=None)
@given(size=st.integers(min_value=3, max_value=10), radius=st.integers(min_value=0, max_value=2))
def test_small_assignment_always_locally_unique(size, radius):
    graph = generators.cycle_graph(size)
    ids = small_identifier_assignment(graph, radius)
    assert is_locally_unique(graph, ids, radius)
    assert is_small(graph, ids, radius)


@settings(max_examples=20, deadline=None)
@given(
    values=st.lists(st.text(alphabet="01", max_size=4), min_size=3, max_size=3),
    second=st.lists(st.text(alphabet="01", max_size=4), min_size=3, max_size=3),
)
def test_certificate_list_roundtrip_property(values, second):
    graph = generators.cycle_graph(3)
    nodes = list(graph.nodes)
    k1 = dict(zip(nodes, values))
    k2 = dict(zip(nodes, second))
    original = CertificateList([k1, k2])
    combined = {u: original.combined(u) for u in nodes}
    assert CertificateList.from_combined(graph, combined) == original
