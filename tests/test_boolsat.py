"""Tests for the Boolean satisfiability substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.boolsat import (
    And,
    Const,
    Not,
    Or,
    Var,
    boolean_graph_from_formulas,
    decode_formula_text,
    dpll_satisfiable,
    encode_formula_text,
    is_three_cnf,
    parse_formula,
    sat_graph_assignment,
    sat_graph_satisfiable,
    satisfying_assignment,
    to_cnf_tseytin,
)
from repro.boolsat.boolean_graph import is_valid_sat_graph_assignment
from repro.boolsat.cnf import formula_to_cnf_clauses
from repro.boolsat.formulas import all_valuations, brute_force_satisfiable


class TestParser:
    def test_parse_simple(self):
        formula = parse_formula("P1 & ~P2")
        assert formula == And(Var("P1"), Not(Var("P2")))

    def test_parse_precedence(self):
        formula = parse_formula("P1 | P2 & P3")
        assert formula == Or(Var("P1"), And(Var("P2"), Var("P3")))

    def test_parse_parentheses_and_constants(self):
        formula = parse_formula("(P1 | F) & T")
        assert formula.evaluate({"P1": True})
        assert not formula.evaluate({"P1": False})

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            parse_formula("P1 &")
        with pytest.raises(ValueError):
            parse_formula("(P1")
        with pytest.raises(ValueError):
            parse_formula("P1 ? P2")

    def test_str_round_trip(self):
        text = "((P1 & ~P2) | (P3 & T))"
        formula = parse_formula(text)
        again = parse_formula(str(formula))
        for valuation in all_valuations(formula.variables()):
            assert formula.evaluate(valuation) == again.evaluate(valuation)


class TestCNF:
    def test_tseytin_preserves_satisfiability(self):
        satisfiable = parse_formula("(P1 | ~P2) & (P2 | P3)")
        unsatisfiable = parse_formula("P1 & ~P1")
        assert dpll_satisfiable(to_cnf_tseytin(satisfiable))
        assert not dpll_satisfiable(to_cnf_tseytin(unsatisfiable))

    def test_tseytin_produces_three_cnf(self):
        formula = parse_formula("(P1 | P2 | P3 | P4) & ~(P1 & P5)")
        cnf = to_cnf_tseytin(formula)
        assert is_three_cnf(cnf)

    def test_formula_to_cnf_clauses(self):
        cnf = formula_to_cnf_clauses(parse_formula("(P1 | ~P2) & P3"))
        assert len(cnf) == 2
        assert cnf.evaluate({"P1": False, "P2": False, "P3": True})

    def test_formula_to_cnf_rejects_non_cnf(self):
        with pytest.raises(ValueError):
            formula_to_cnf_clauses(parse_formula("~(P1 & P2)"))

    def test_is_three_cnf_on_formula(self):
        assert is_three_cnf(parse_formula("(P1 | P2 | P3) & ~P4"))
        assert not is_three_cnf(parse_formula("P1 | P2 | P3 | P4"))


class TestSolver:
    def test_satisfying_assignment_actually_satisfies(self):
        formula = parse_formula("(P1 | ~P2) & (P2 | P3) & (~P1 | ~P3)")
        model = satisfying_assignment(formula)
        assert model is not None
        assert formula.evaluate(model)

    def test_unsatisfiable_returns_none(self):
        formula = parse_formula("(P1 | P2) & (~P1 | P2) & (P1 | ~P2) & (~P1 | ~P2)")
        assert satisfying_assignment(formula) is None

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_dpll_agrees_with_brute_force(self, data):
        variables = ["A", "B", "C"]
        clause_count = data.draw(st.integers(min_value=1, max_value=5))
        clauses = []
        for _ in range(clause_count):
            literal_count = data.draw(st.integers(min_value=1, max_value=3))
            literals = []
            for _ in range(literal_count):
                name = data.draw(st.sampled_from(variables))
                positive = data.draw(st.booleans())
                literals.append(Var(name) if positive else Not(Var(name)))
            clause = literals[0]
            for item in literals[1:]:
                clause = Or(clause, item)
            clauses.append(clause)
        formula = clauses[0]
        for item in clauses[1:]:
            formula = And(formula, item)
        assert dpll_satisfiable(formula) == brute_force_satisfiable(formula)


class TestBooleanGraphs:
    def test_consistent_shared_variables_required(self):
        graph = boolean_graph_from_formulas({"u": "P1", "v": "~P1"}, [("u", "v")])
        assert not sat_graph_satisfiable(graph)

    def test_disconnected_variables_are_free(self):
        graph = boolean_graph_from_formulas({"u": "P1", "v": "~P2"}, [("u", "v")])
        assert sat_graph_satisfiable(graph)

    def test_non_adjacent_nodes_may_disagree(self):
        # u and w are not adjacent; they share P1 but need not agree on it.
        graph = boolean_graph_from_formulas(
            {"u": "P1", "v": "P2", "w": "~P1"}, [("u", "v"), ("v", "w")]
        )
        assert sat_graph_satisfiable(graph)

    def test_assignment_is_valid(self):
        graph = boolean_graph_from_formulas(
            {"u": "P1 & P2", "v": "P2 | P3", "w": "~P3"}, [("u", "v"), ("v", "w")]
        )
        assignment = sat_graph_assignment(graph)
        assert assignment is not None
        assert is_valid_sat_graph_assignment(graph, assignment)

    def test_single_node_sat_graph_is_classical_sat(self):
        graph = boolean_graph_from_formulas({"u": "(P1 | P2) & ~P1 & ~P2"}, [])
        assert not sat_graph_satisfiable(graph)

    def test_encoding_round_trip(self):
        text = "(P1 & ~P2) | P3"
        assert decode_formula_text(encode_formula_text(text)) == text

    def test_encoding_rejects_unparsable_text(self):
        with pytest.raises(ValueError):
            encode_formula_text("P1 &&& P2")
