"""The continuous sampling profiler: aggregation, lifecycle, admin wiring."""

import threading
import time

import pytest

from repro.obs.prof import SamplingProfiler, _frame_label
from repro.service.client import ServiceClient
from repro.service.server import ServerThread
from repro.sweep.store import MemoryVerdictStore


def _spin_inner(stop):
    while not stop.is_set():
        sum(range(500))


def _spin_outer(stop):
    _spin_inner(stop)


def _spinner():
    """A worker thread burning CPU in a known two-frame stack."""
    stop = threading.Event()
    thread = threading.Thread(target=_spin_outer, args=(stop,), daemon=True)
    thread.start()
    return stop, thread


class TestFoldedAggregation:
    def test_sample_once_folds_worker_stacks_root_first(self):
        profiler = SamplingProfiler(hz=50)
        stop, thread = _spinner()
        try:
            for _ in range(8):
                profiler.sample_once()
        finally:
            stop.set()
            thread.join()
        folded = profiler.folded()
        assert folded, "expected at least one folded stack"
        spinner_lines = [
            line for line in folded.splitlines() if "_spin_inner" in line
        ]
        assert spinner_lines, folded
        stack, count = spinner_lines[0].rsplit(" ", 1)
        assert int(count) >= 1
        frames = stack.split(";")
        # Root-first: the outer caller appears before the inner callee.
        outer = next(i for i, f in enumerate(frames) if "_spin_outer" in f)
        inner = next(i for i, f in enumerate(frames) if "_spin_inner" in f)
        assert outer < inner

    def test_self_vs_cumulative_counts(self):
        profiler = SamplingProfiler(hz=50)
        stop, thread = _spinner()
        try:
            for _ in range(8):
                profiler.sample_once()
        finally:
            stop.set()
            thread.join()
        rows = {row["function"]: row for row in profiler.top(100, sort="cumulative")}
        inner = rows["_spin_inner"]
        outer = rows["_spin_outer"]
        # The inner loop is the executing leaf; the outer frame only
        # accumulates through its callee.
        assert inner["self_samples"] >= 1
        assert outer["self_samples"] == 0
        assert outer["cum_samples"] >= inner["cum_samples"] >= inner["self_samples"]
        # Seconds are samples / hz.
        assert inner["cum_seconds"] == pytest.approx(inner["cum_samples"] / 50.0)

    def test_concurrent_threads_each_contribute_samples(self):
        profiler = SamplingProfiler(hz=50)
        spinners = [_spinner() for _ in range(3)]
        try:
            for _ in range(6):
                profiler.sample_once()
        finally:
            for stop, thread in spinners:
                stop.set()
            for stop, thread in spinners:
                thread.join()
        status = profiler.status()
        assert status["threads"] >= 3
        assert status["samples"] >= 6  # >= one stack per tick, usually 3x

    def test_top_sort_modes_and_bad_sort(self):
        profiler = SamplingProfiler(hz=50)
        stop, thread = _spinner()
        try:
            for _ in range(4):
                profiler.sample_once()
        finally:
            stop.set()
            thread.join()
        by_self = profiler.top(5, sort="self")
        assert by_self == sorted(by_self, key=lambda r: -r["self_samples"])
        with pytest.raises(ValueError):
            profiler.top(5, sort="calls")


class TestBounds:
    def test_max_stacks_bounds_the_fold_but_not_the_tallies(self):
        profiler = SamplingProfiler(hz=50, max_stacks=1)
        stop1, thread1 = _spinner()
        # A second, different stack shape.
        stop2 = threading.Event()

        def other():
            while not stop2.is_set():
                list(map(str, range(50)))

        thread2 = threading.Thread(target=other, daemon=True)
        thread2.start()
        try:
            for _ in range(6):
                profiler.sample_once()
        finally:
            stop1.set()
            stop2.set()
            thread1.join()
            thread2.join()
        status = profiler.status()
        assert status["stacks"] == 1
        assert status["stacks_dropped"] >= 1
        # Per-frame tallies still saw every sample.
        total_self = sum(r["self_samples"] for r in profiler.top(1000, sort="self"))
        assert total_self == status["samples"]

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)
        with pytest.raises(ValueError):
            SamplingProfiler(max_stacks=0)


class TestLifecycle:
    def test_start_samples_in_background_and_stop_keeps_aggregate(self):
        profiler = SamplingProfiler(hz=200)
        stop, thread = _spinner()
        try:
            assert profiler.start() is True
            assert profiler.running
            assert profiler.start() is False  # redundant start is a no-op
            deadline = time.monotonic() + 5.0
            while profiler.status()["samples"] == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            stop.set()
            thread.join()
        assert profiler.stop() is True
        assert not profiler.running
        assert profiler.stop() is False  # already stopped
        status = profiler.status()
        assert status["samples"] >= 1
        assert status["duration_seconds"] > 0
        assert profiler.folded()  # aggregate survives the stop

    def test_restart_resets_the_aggregate(self):
        profiler = SamplingProfiler(hz=100)
        stop, thread = _spinner()
        try:
            for _ in range(5):
                profiler.sample_once()
            assert profiler.status()["samples"] == 5
            assert profiler.start(hz=100) is True
        finally:
            profiler.stop()
            stop.set()
            thread.join()
        # The five pre-start samples are gone; at most a couple of
        # background ticks landed before stop().
        status = profiler.status()
        assert status["hz"] == 100.0
        assert status["samples"] < 5

    def test_start_rejects_bad_hz(self):
        profiler = SamplingProfiler()
        with pytest.raises(ValueError):
            profiler.start(hz=-1)

    def test_snapshot_carries_status_folded_and_tops(self):
        profiler = SamplingProfiler(hz=50)
        stop, thread = _spinner()
        try:
            profiler.sample_once()
        finally:
            stop.set()
            thread.join()
        snapshot = profiler.snapshot(top=5)
        assert snapshot["samples"] >= 1
        assert isinstance(snapshot["folded"], str)
        assert len(snapshot["top_self"]) <= 5
        assert len(snapshot["top_cumulative"]) <= 5


class TestFrameLabel:
    def test_label_is_file_function_firstline(self):
        import sys

        frame = sys._getframe()
        label = _frame_label(frame)
        file, func, line = label.rsplit(":", 2)
        assert file == "test_obs_prof.py"
        assert func == "test_label_is_file_function_firstline"
        assert int(line) > 0


class TestAdminProfileOps:
    def test_profile_start_snapshot_stop_over_the_wire(self):
        with ServerThread(store=MemoryVerdictStore()) as server:
            with ServiceClient(server.address) as client:
                status = client.profile_start(hz=251)
                assert status["running"] is True
                assert status["hz"] == 251.0
                # Redundant start reports the running session, not an error.
                again = client.profile_start()
                assert again["running"] is True
                # Generate some work for the sampler to see.
                for index in range(3):
                    client.query_scenario("smoke", index=0)
                snapshot = client.profile_snapshot()
                assert "folded" in snapshot and "top_cumulative" in snapshot
                stopped = client.profile_stop()
                assert stopped["running"] is False
                # Stats expose the profiler status alongside the tiers.
                stats = client.stats()
                assert stats["profiler"]["running"] is False
                assert stats["profiler"]["hz"] == 251.0

    def test_profile_start_with_bad_hz_is_a_protocol_error(self):
        from repro.service.client import ServiceError

        with ServerThread(store=MemoryVerdictStore()) as server:
            with ServiceClient(server.address) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.profile_start(hz=-5)
                assert excinfo.value.code == "bad-request"
