"""Canonical ball memoization: signatures, sharing, persistence, correctness.

The canonical signature must separate any two dependency balls the engine
could evaluate differently (machine, structure, identifiers, labels,
center, certificates) while identifying balls that are literally the same
computation -- the sharing the sweep executor and the service compute tier
rely on.  Correctness is pinned by evaluating with and without a shared
cache against the exhaustive oracle.
"""

import random

import pytest

from repro.engine import (
    CanonicalVerdictCache,
    CompiledGameEngine,
    CompiledInstance,
    node_ball_signature,
)
from repro.engine.caching import EvaluatorStats
from repro.graphs import generators
from repro.graphs.identifiers import (
    cyclic_identifier_assignment,
    sequential_identifier_assignment,
)
from repro.hierarchy.certificate_spaces import bit_space
from repro.hierarchy.game import eve_wins, pi_prefix, sigma_prefix
from repro.machines import builtin
from repro.machines.local_algorithm import NeighborhoodGatherAlgorithm
from repro.sweep.executor import evaluate_timed, run_instances
from repro.sweep.scenarios import build_instances
from repro.sweep.store import MemoryVerdictStore


class _SimulatedGather(NeighborhoodGatherAlgorithm):
    """Behaviorally identical subclass: forces the simulation fallback."""


def _simulated_two_colorability():
    base = builtin.two_colorability_verifier()
    return _SimulatedGather(base.radius, base.compute, name="two-col-sim")


def _instance(machine, graph, ids=None):
    return CompiledInstance(machine, graph, ids or sequential_identifier_assignment(graph))


class TestSignatures:
    """Distinct balls must not share a signature; identical balls must."""

    def test_identical_balls_share_within_an_instance(self):
        machine = _simulated_two_colorability()
        graph = generators.cycle_graph(12)
        ids = cyclic_identifier_assignment(graph, 3)
        instance = CompiledInstance(machine, graph, ids)
        # Period-3 identifiers on C12 (simulation radius 3, so balls are
        # 7-node sub-paths): interior nodes u and u+3 see identical balls.
        signatures = [node_ball_signature(instance, u) for u in range(instance.n)]
        assert signatures[3] == signatures[6]
        assert signatures[4] == signatures[7]
        # ...but the wrap-around nodes, whose balls sort differently, do not.
        assert signatures[0] != signatures[3]

    def test_identical_balls_share_across_instances_and_machine_builds(self):
        graph_a, graph_b = generators.cycle_graph(12), generators.cycle_graph(15)
        a = CompiledInstance(
            _simulated_two_colorability(), graph_a, cyclic_identifier_assignment(graph_a, 3)
        )
        b = CompiledInstance(
            _simulated_two_colorability(), graph_b, cyclic_identifier_assignment(graph_b, 3)
        )
        # Separately built machines with the same code fingerprint alike;
        # matching local neighborhoods therefore share across graphs.
        assert node_ball_signature(a, 4) == node_ball_signature(b, 4)

    def test_distinct_identifiers_separate(self):
        machine = _simulated_two_colorability()
        graph = generators.cycle_graph(6)
        seq = CompiledInstance(machine, graph, sequential_identifier_assignment(graph))
        cyc = CompiledInstance(machine, graph, cyclic_identifier_assignment(graph, 3))
        assert node_ball_signature(seq, 0) != node_ball_signature(cyc, 0)

    def test_distinct_labels_separate(self):
        machine = _simulated_two_colorability()
        plain = _instance(machine, generators.path_graph(4))
        labeled = _instance(machine, generators.path_graph(4, labels=["1", "0", "1", "1"]))
        assert node_ball_signature(plain, 1) != node_ball_signature(labeled, 1)

    def test_distinct_structure_and_center_separate(self):
        machine = _simulated_two_colorability()
        path = _instance(machine, generators.path_graph(5))
        # Endpoint vs interior: same graph, different ball around the center.
        assert node_ball_signature(path, 0) != node_ball_signature(path, 2)
        cycle = _instance(machine, generators.cycle_graph(5))
        assert node_ball_signature(path, 2) != node_ball_signature(cycle, 2)

    def test_distinct_machines_separate(self):
        graph = generators.cycle_graph(5)
        two = _instance(_simulated_two_colorability(), graph)
        base = builtin.three_colorability_verifier()
        three = _instance(
            _SimulatedGather(base.radius, base.compute, name="three-sim"), graph
        )
        assert node_ball_signature(two, 0) != node_ball_signature(three, 0)

    def test_certificate_restrictions_separate_keys(self):
        machine = _simulated_two_colorability()
        graph = generators.cycle_graph(5)
        instance = _instance(machine, graph)
        empty = [{u: "" for u in graph.nodes}]
        ones = [{u: "1" for u in graph.nodes}]
        assert instance.canonical_key_dicts(0, empty) != instance.canonical_key_dicts(0, ones)
        assert instance.canonical_key_dicts(0, empty) != instance.canonical_key_dicts(0, [])


class TestCacheBehavior:
    def test_ruled_instances_do_not_consult_the_cache(self):
        machine = builtin.three_colorability_verifier()
        graph = generators.cycle_graph(5)
        ids = sequential_identifier_assignment(graph)
        instance = CompiledInstance(machine, graph, ids)
        cache = CanonicalVerdictCache()
        instance.attach_canonical(cache)
        engine = CompiledGameEngine(machine, graph, ids, [bit_space()], instance=instance)
        engine.eve_wins(sigma_prefix(1))
        assert len(cache) == 0 and cache.misses == 0

    def test_cross_instance_sharing_and_correctness(self):
        cache = CanonicalVerdictCache()
        for n in (6, 9, 12):
            graph = generators.cycle_graph(n)
            ids = cyclic_identifier_assignment(graph, 3)
            machine = _simulated_two_colorability()
            instance = CompiledInstance(machine, graph, ids)
            instance.attach_canonical(cache)
            for prefix in (sigma_prefix(1), pi_prefix(1)):
                expected = eve_wins(machine, graph, ids, [bit_space()], prefix)
                got = CompiledGameEngine(
                    machine, graph, ids, [bit_space()], instance=instance
                ).eve_wins(prefix)
                assert expected == got, (n, prefix)
        assert cache.hits > 0
        assert 0 < cache.hit_rate() <= 1

    def test_store_backed_cache_promotes_and_skips_work(self):
        machine = _simulated_two_colorability()
        graph = generators.cycle_graph(6)
        ids = cyclic_identifier_assignment(graph, 3)
        store = MemoryVerdictStore()

        first = CanonicalVerdictCache(store=store)
        instance = CompiledInstance(machine, graph, ids)
        instance.attach_canonical(first)
        value = CompiledGameEngine(
            machine, graph, ids, [bit_space()], instance=instance
        ).eve_wins(sigma_prefix(1))
        assert first.flush() > 0
        assert store.node_count() > 0

        second = CanonicalVerdictCache(store=store)
        fresh = CompiledInstance(_simulated_two_colorability(), graph, ids)
        fresh.attach_canonical(second)
        stats = EvaluatorStats()
        again = CompiledGameEngine(
            machine, graph, ids, [bit_space()], instance=fresh
        ).eve_wins(sigma_prefix(1))
        assert again == value
        assert second.store_hits > 0
        assert stats.simulator_runs == 0

    def test_bounded_cache_evicts_oldest_half(self):
        store = MemoryVerdictStore()
        cache = CanonicalVerdictCache(store=store, max_entries=4)
        for i in range(6):
            cache.put(f"ball:{i}", i % 2 == 0)
        assert len(cache) <= 4
        assert cache.evictions > 0
        cache.flush()
        # Evicted entries are re-promotable from the store, not lost.
        assert cache.get("ball:0") is True
        assert cache.store_hits > 0

    def test_drain_and_merge_records(self):
        cache = CanonicalVerdictCache()
        cache.put("ball:a", True)
        cache.put("ball:b", False)
        records = cache.drain_records()
        assert sorted(records) == [("ball:a", True), ("ball:b", False)]
        assert cache.drain_records() == []
        other = CanonicalVerdictCache()
        other.merge_records(records)
        assert other.get("ball:a") is True and other.get("ball:b") is False


class TestSweepIntegration:
    def test_separations_sweep_reports_positive_hit_rate(self):
        result = run_instances(build_instances("separations"), scenario_name="separations")
        assert result.canonical is not None
        assert result.canonical["hits"] > 0
        assert result.canonical["hit_rate"] > 0
        assert "canonical" in result.as_dict()

    def test_sweep_persists_node_verdicts_and_rereads_them(self):
        store = MemoryVerdictStore()
        instances = build_instances("separations")
        first = run_instances(instances, store=store, scenario_name="separations")
        assert store.node_count() > 0
        # A fresh, fully cold evaluation against the same store answers the
        # eligible per-node work from the persistence tier.
        warm_cache = CanonicalVerdictCache(store=store)
        verdicts, _ = evaluate_timed(build_instances("separations"), canonical=warm_cache)
        assert verdicts == first.verdicts
        assert warm_cache.store_hits > 0

    def test_parallel_sweep_ships_canonical_records_back(self, tmp_path):
        store_path = str(tmp_path / "parallel.sqlite")
        result = run_instances(
            build_instances("separations"),
            jobs=2,
            store=store_path,
            scenario="separations",
        )
        assert result.canonical is not None
        # Whether or not the fork pool was available, node verdicts reach
        # the parent's store and the counters are aggregated.
        from repro.sweep.store import SQLiteVerdictStore

        with SQLiteVerdictStore(store_path) as store:
            assert store.node_count() > 0
        assert result.canonical["puts"] > 0
        if not result.executed_parallel:
            return
        # Second pass, instance verdicts wiped so every shard recomputes:
        # workers must *read* the persisted node verdicts back.
        import sqlite3

        connection = sqlite3.connect(store_path)
        connection.execute("DELETE FROM verdicts")
        connection.commit()
        connection.close()
        warm = run_instances(
            build_instances("separations"),
            jobs=2,
            store=store_path,
            scenario="separations",
        )
        assert warm.verdicts == result.verdicts
        if warm.executed_parallel:
            assert warm.canonical["store_hits"] > 0
