"""Model checking the Section 5.2 example formulas against the ground truth.

The formulas are evaluated with the locality/node-only restrictions of
:class:`repro.logic.semantics.EvaluationOptions`; as discussed in the module
docstrings, these restrictions do not change the truth values of the example
formulas (which only ever relate nearby node elements), and they keep the
exhaustive second-order quantification feasible on the small graphs used here.
"""

import pytest

from repro.graphs import generators
from repro.logic import EvaluationOptions, graph_satisfies
from repro.logic.examples import (
    all_selected_formula,
    exists_unselected_node_formula,
    hamiltonian_formula,
    k_colorable_formula,
    one_selected_formula,
    three_colorable_formula,
    two_colorable_formula,
)
import repro.properties as props

OPTIONS = EvaluationOptions(second_order_locality=1, second_order_node_only=True, candidate_limit=40)


class TestAllSelectedFormula:
    def test_paths(self):
        formula = all_selected_formula()
        assert graph_satisfies(generators.path_graph(4, labels=["1"] * 4), formula)
        assert not graph_satisfies(generators.path_graph(4, labels=["1", "0", "1", "1"]), formula)

    def test_label_must_be_exactly_one(self):
        formula = all_selected_formula()
        assert not graph_satisfies(generators.path_graph(2, labels=["1", "11"]), formula)
        assert not graph_satisfies(generators.path_graph(2, labels=["1", ""]), formula)

    def test_agrees_with_ground_truth_on_small_graphs(self):
        formula = all_selected_formula()
        for labels in (["1", "1", "1"], ["1", "0", "1"], ["0", "0", "0"], ["1", "1", "11"]):
            graph = generators.cycle_graph(3, labels=labels)
            assert graph_satisfies(graph, formula) == props.all_selected(graph)


class TestColorabilityFormulas:
    def test_three_colorable_formula(self):
        formula = three_colorable_formula()
        assert graph_satisfies(generators.cycle_graph(3), formula, options=OPTIONS)
        assert graph_satisfies(generators.cycle_graph(5), formula, options=OPTIONS)
        assert not graph_satisfies(generators.complete_graph(4), formula, options=OPTIONS)

    def test_two_colorable_formula(self):
        formula = two_colorable_formula()
        assert graph_satisfies(generators.cycle_graph(4), formula, options=OPTIONS)
        assert not graph_satisfies(generators.cycle_graph(5), formula, options=OPTIONS)

    def test_one_colorable_formula(self):
        formula = k_colorable_formula(1)
        assert graph_satisfies(generators.single_node(), formula, options=OPTIONS)
        assert not graph_satisfies(generators.path_graph(2), formula, options=OPTIONS)

    def test_agreement_with_ground_truth(self):
        formula = three_colorable_formula()
        for graph in (
            generators.path_graph(4),
            generators.complete_graph(4),
            generators.star_graph(3),
        ):
            assert graph_satisfies(graph, formula, options=OPTIONS) == props.three_colorable(graph)


class TestSpanningForestFormulas:
    """The Sigma^lfo_3 constructions of Examples 6, 8 and 9 (small graphs only)."""

    def test_not_all_selected_formula(self):
        formula = exists_unselected_node_formula()
        yes = generators.path_graph(3, labels=["1", "0", "1"])
        no = generators.path_graph(3, labels=["1", "1", "1"])
        assert graph_satisfies(yes, formula, options=OPTIONS)
        assert not graph_satisfies(no, formula, options=OPTIONS)

    def test_not_all_selected_on_triangle(self):
        formula = exists_unselected_node_formula()
        yes = generators.cycle_graph(3, labels=["1", "1", "0"])
        assert graph_satisfies(yes, formula, options=OPTIONS)

    def test_one_selected_formula(self):
        formula = one_selected_formula()
        yes = generators.path_graph(3, labels=["", "1", ""])
        two = generators.path_graph(3, labels=["1", "", "1"])
        assert graph_satisfies(yes, formula, options=OPTIONS)
        assert not graph_satisfies(two, formula, options=OPTIONS)

    def test_hamiltonian_formula(self):
        formula = hamiltonian_formula()
        assert graph_satisfies(generators.cycle_graph(3), formula, options=OPTIONS)
        assert not graph_satisfies(generators.path_graph(3), formula, options=OPTIONS)

    def test_hamiltonian_formula_agrees_with_ground_truth(self):
        formula = hamiltonian_formula()
        star = generators.star_graph(2)
        assert graph_satisfies(star, formula, options=OPTIONS) == props.hamiltonian(star)
