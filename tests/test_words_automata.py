"""Tests for words-as-pictures and finite automata (Section 9.3 machinery)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pictures.automata import (
    all_ones_dfa,
    complement_dfa,
    contains_factor_nfa,
    dfa_from_nfa,
    divisibility_dfa,
    enumerate_words,
    parity_dfa,
    product_dfa,
    pumped_words,
    pumping_decomposition,
)
from repro.pictures.words import (
    is_word_picture,
    path_graph_to_word,
    picture_to_word,
    pump_word,
    rotations,
    word_to_cycle_graph,
    word_to_path_graph,
    word_to_picture,
)

words = st.text(alphabet="01", min_size=1, max_size=12)


# ----------------------------------------------------------------------
# Words <-> pictures <-> graphs
# ----------------------------------------------------------------------
class TestWordConversions:
    @given(words)
    def test_picture_round_trip(self, word):
        assert picture_to_word(word_to_picture(word)) == word

    @given(words)
    def test_word_picture_has_one_row(self, word):
        picture = word_to_picture(word)
        assert is_word_picture(picture)
        assert picture.size() == (1, len(word))

    def test_multi_bit_pixels(self):
        picture = word_to_picture("0110", bits=2)
        assert picture.size() == (1, 2)
        assert picture.entry(0, 0) == "01"
        assert picture.entry(0, 1) == "10"

    def test_multi_bit_requires_divisible_length(self):
        with pytest.raises(ValueError):
            word_to_picture("011", bits=2)

    def test_empty_word_rejected(self):
        with pytest.raises(ValueError):
            word_to_picture("")

    def test_non_bit_word_rejected(self):
        with pytest.raises(ValueError):
            word_to_picture("01a")

    @given(words)
    def test_path_graph_round_trip(self, word):
        assert path_graph_to_word(word_to_path_graph(word)) == word

    def test_path_graph_structure(self):
        graph = word_to_path_graph("0101")
        assert graph.cardinality() == 4
        assert sorted(graph.degree(u) for u in graph.nodes) == [1, 1, 2, 2]

    def test_cycle_graph_structure(self):
        graph = word_to_cycle_graph("01011")
        assert graph.cardinality() == 5
        assert all(graph.degree(u) == 2 for u in graph.nodes)

    def test_cycle_graph_needs_three_nodes(self):
        with pytest.raises(ValueError):
            word_to_cycle_graph("01")

    def test_rotations(self):
        assert set(rotations("011")) == {"011", "110", "101"}

    def test_pump_word_basic(self):
        # word = x y z with x = "0", y = "11", z = "00"
        assert pump_word("01100", 1, 2, 0) == "000"
        assert pump_word("01100", 1, 2, 1) == "01100"
        assert pump_word("01100", 1, 2, 3) == "011111100"

    def test_pump_word_validates_bounds(self):
        with pytest.raises(ValueError):
            pump_word("0110", 3, 2, 2)
        with pytest.raises(ValueError):
            pump_word("0110", 0, 0, 2)


# ----------------------------------------------------------------------
# DFAs and NFAs
# ----------------------------------------------------------------------
class TestAutomata:
    @given(words)
    def test_parity_dfa(self, word):
        assert parity_dfa().accepts(word) == (word.count("1") % 2 == 1)

    @given(words)
    def test_divisibility_dfa(self, word):
        assert divisibility_dfa(3).accepts(word) == (word.count("1") % 3 == 0)

    @given(words)
    def test_all_ones_dfa(self, word):
        assert all_ones_dfa().accepts(word) == (set(word) == {"1"})

    @given(words)
    def test_contains_factor_nfa(self, word):
        assert contains_factor_nfa("010").accepts(word) == ("010" in word)

    @given(words)
    def test_subset_construction_preserves_language(self, word):
        nfa = contains_factor_nfa("11")
        assert dfa_from_nfa(nfa).accepts(word) == nfa.accepts(word)

    @given(words)
    def test_complement_dfa(self, word):
        dfa = parity_dfa()
        assert complement_dfa(dfa).accepts(word) == (not dfa.accepts(word))

    @given(words)
    def test_product_intersection(self, word):
        first, second = parity_dfa(), divisibility_dfa(3)
        product = product_dfa(first, second, mode="intersection")
        assert product.accepts(word) == (first.accepts(word) and second.accepts(word))

    @given(words)
    def test_product_union(self, word):
        first, second = parity_dfa(), all_ones_dfa()
        product = product_dfa(first, second, mode="union")
        assert product.accepts(word) == (first.accepts(word) or second.accepts(word))

    def test_product_requires_same_width(self):
        with pytest.raises(ValueError):
            product_dfa(parity_dfa(), parity_dfa(), mode="xor")

    def test_dfa_trace_length(self):
        dfa = parity_dfa()
        assert len(dfa.trace("0101")) == 5

    def test_enumerate_words(self):
        assert sorted(enumerate_words(2)) == ["00", "01", "10", "11"]
        assert len(list(enumerate_words(3))) == 8


# ----------------------------------------------------------------------
# The pumping lemma, executably
# ----------------------------------------------------------------------
class TestPumpingLemma:
    def test_short_words_give_no_decomposition(self):
        dfa = divisibility_dfa(5)
        assert pumping_decomposition(dfa, "1") is None

    def test_decomposition_shape(self):
        dfa = divisibility_dfa(3)
        word = "1" * 9
        decomposition = pumping_decomposition(dfa, word)
        assert decomposition is not None
        x, y, z = decomposition
        assert x + y + z == word
        assert y != ""
        assert len(x + y) <= len(dfa.states)

    @given(st.integers(min_value=0, max_value=5))
    def test_pumped_words_stay_in_language(self, repetitions):
        dfa = divisibility_dfa(3)
        word = "1" * 9
        decomposition = pumping_decomposition(dfa, word)
        (pumped,) = pumped_words(decomposition, [repetitions])
        assert dfa.accepts(pumped)

    def test_pumping_preserves_acceptance_for_parity(self):
        dfa = parity_dfa()
        word = "10101"
        assert dfa.accepts(word)
        decomposition = pumping_decomposition(dfa, word)
        for pumped in pumped_words(decomposition, [0, 1, 2, 3, 4]):
            assert dfa.accepts(pumped)

    def test_pumped_words_require_nonempty_factor(self):
        with pytest.raises(ValueError):
            pumped_words(("0", "", "1"), [2])
