"""Tests for the graph generators, including the paper's figure instances."""

import pytest

from repro.graphs import generators
import repro.properties as props


class TestBasicGenerators:
    def test_path_and_cycle_shapes(self):
        path = generators.path_graph(5)
        cycle = generators.cycle_graph(5)
        assert len(path.edges) == 4
        assert len(cycle.edges) == 5
        assert path.max_degree() == 2
        assert cycle.max_degree() == 2

    def test_cycle_requires_three_nodes(self):
        with pytest.raises(ValueError):
            generators.cycle_graph(2)

    def test_star_graph(self):
        star = generators.star_graph(4, center_label="1")
        assert star.degree("center") == 4
        assert star.label("center") == "1"

    def test_complete_graph(self):
        k5 = generators.complete_graph(5)
        assert len(k5.edges) == 10
        assert k5.max_degree() == 4

    def test_grid_graph(self):
        grid = generators.grid_graph(3, 4)
        assert grid.cardinality() == 12
        assert grid.degree((0, 0)) == 2
        assert grid.degree((1, 1)) == 4

    def test_labels_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            generators.path_graph(3, labels=["1", "1"])

    def test_random_connected_graph_is_connected(self):
        for seed in range(5):
            graph = generators.random_connected_graph(9, seed=seed)
            assert graph.cardinality() == 9  # constructor enforces connectivity

    def test_string_graph_is_single_node(self):
        graph = generators.string_graph("0101")
        assert graph.is_single_node()
        assert graph.label(list(graph.nodes)[0]) == "0101"


class TestFigureInstances:
    def test_figure1_instances_differ_in_one_edge(self):
        no_instance = generators.figure1_no_instance()
        yes_instance = generators.figure1_yes_instance()
        assert len(no_instance.edges) == len(yes_instance.edges) + 1
        assert yes_instance.edges <= no_instance.edges

    def test_figure1_degree_structure(self):
        graph = generators.figure1_no_instance()
        assert graph.degree("u") == 1
        assert graph.degree("v1") == 2
        assert graph.degree("v2") == 2
        assert all(graph.degree(w) >= 3 for w in ("w1", "w2", "w3"))

    def test_figure1_reproduces_example1(self):
        # Figure 1a: 3-colorable but not 3-round 3-colorable.
        no_instance = generators.figure1_no_instance()
        assert props.three_colorable(no_instance)
        assert not props.three_round_three_colorable(no_instance)
        # Figure 1b: both.
        yes_instance = generators.figure1_yes_instance()
        assert props.three_colorable(yes_instance)
        assert props.three_round_three_colorable(yes_instance)

    def test_figure3_graph_labels(self):
        graph = generators.figure3_graph()
        assert graph.label("u2") == "0"
        assert props.not_all_selected(graph)

    def test_figure9_graph(self):
        graph = generators.figure9_graph()
        assert graph.cardinality() == 3
        assert props.not_all_selected(graph)

    def test_boolean_graph_generator_round_trips(self):
        from repro.boolsat.boolean_graph import decode_boolean_graph

        graph = generators.boolean_graph({"u": "P1 & P2", "v": "~P1"}, [("u", "v")])
        decoded = decode_boolean_graph(graph)
        assert str(decoded["u"]) == "(P1 & P2)"
