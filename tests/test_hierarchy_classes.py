"""Tests for the Figure 2 / Figure 13 class registry."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hierarchy.classes import (
    HierarchyClass,
    bounded_degree_chain,
    class_name,
    figure2_rows,
    hierarchy_classes,
    includes,
    incomparable,
    inclusion_edges,
    parse_class,
    strictly_includes,
)

levels = st.integers(min_value=0, max_value=6)
kinds = st.sampled_from(["Sigma", "Pi"])
complements = st.booleans()
classes = st.builds(HierarchyClass, kind=kinds, level=levels, complement=complements)


class TestNamesAndParsing:
    def test_special_names(self):
        assert class_name("Sigma", 0) == "LP"
        assert class_name("Pi", 0) == "LP"
        assert class_name("Sigma", 1) == "NLP"
        assert class_name("Sigma", 0, complement=True) == "coLP"
        assert class_name("Sigma", 1, complement=True) == "coNLP"
        assert class_name("Pi", 3) == "Pi^lp_3"

    @given(classes)
    def test_parse_round_trip(self, cls):
        parsed = parse_class(cls.name())
        assert parsed.level == cls.level
        assert parsed.complement == cls.complement
        # Level 0 collapses Sigma and Pi into the single name LP/coLP.
        if cls.level > 0:
            assert parsed.kind == cls.kind

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_class("Delta^lp_2")

    def test_dual(self):
        assert parse_class("NLP").dual().name() == "coNLP"
        assert parse_class("coPi^lp_2").dual().name() == "Pi^lp_2"

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HierarchyClass("Gamma", 1)
        with pytest.raises(ValueError):
            HierarchyClass("Sigma", -1)


class TestInclusions:
    @given(classes)
    def test_reflexive(self, cls):
        assert includes(cls, cls)

    @given(classes, classes)
    def test_antisymmetric_up_to_level0(self, a, b):
        if includes(a, b) and includes(b, a) and a != b:
            # Only the two names of level 0 are mutually included.
            assert a.level == b.level == 0

    @given(classes, classes, classes)
    def test_transitive(self, a, b, c):
        if includes(b, a) and includes(c, b):
            assert includes(c, a)

    def test_definitional_inclusions(self):
        assert includes("NLP", "LP")
        assert includes("Pi^lp_1", "LP")
        assert includes("Sigma^lp_3", "Pi^lp_2")
        assert includes("Pi^lp_3", "NLP")
        assert includes("coNLP", "coLP")
        assert not includes("NLP", "coLP")
        assert not includes("Pi^lp_1", "NLP")
        assert not includes("NLP", "Pi^lp_1")

    def test_strictness(self):
        assert strictly_includes("NLP", "LP")
        assert strictly_includes("Sigma^lp_4", "Pi^lp_2")
        assert not strictly_includes("LP", "LP")
        assert not strictly_includes("LP", "NLP")

    def test_incomparability(self):
        assert incomparable("NLP", "Pi^lp_1")
        assert incomparable("coNLP", "coPi^lp_1")
        assert incomparable("Sigma^lp_3", "Pi^lp_3")
        assert not incomparable("LP", "NLP")
        assert not incomparable("LP", "LP")

    @given(st.integers(min_value=1, max_value=5))
    def test_same_level_classes_incomparable(self, level):
        assert incomparable(HierarchyClass("Sigma", level), HierarchyClass("Pi", level))


class TestFigureData:
    def test_bounded_degree_chain(self):
        chain = bounded_degree_chain(4)
        assert chain == ["LP", "NLP", "Pi^lp_2", "Sigma^lp_3", "Pi^lp_4"]

    def test_hierarchy_classes_count(self):
        # Levels 0..3 of both hierarchies: (1 + 2*3) classes per hierarchy.
        assert len(hierarchy_classes(3)) == 2 * (1 + 2 * 3)

    def test_inclusion_edges_are_covering_and_strict(self):
        edges = inclusion_edges(3)
        assert edges, "there must be at least one edge"
        for lower, higher, label in edges:
            assert strictly_includes(higher, lower)
            assert label == "strict"
        # A concrete covering edge from Figure 13.
        assert ("LP", "NLP", "strict") in edges
        # Non-covering inclusions (skipping a level) must not appear.
        assert all(not (lower == "LP" and higher == "Sigma^lp_2") for lower, higher, _ in edges)

    def test_figure2_rows(self):
        rows = figure2_rows(3)
        assert [row["level"] for row in rows] == [0, 1, 2, 3]
        assert rows[0]["sigma"] == "LP"
        assert rows[1]["sigma"] == "NLP"
        assert not rows[0]["sigma_pi_incomparable"]
        assert all(row["sigma_pi_incomparable"] for row in rows[1:])
        assert all(row["strict_step_up"] for row in rows)
        assert rows[2]["bounded_degree_representative"] == "Pi^lp_2"
