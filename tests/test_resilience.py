"""Fault injection, circuit breaking, retries, journals, crash recovery.

Unit tests drive the resilience primitives with fake clocks; the
end-to-end tests arm failpoints on a live daemon and assert it answers
every request either correctly (possibly ``degraded``) or with a typed
error -- never by dying or hanging.
"""

from __future__ import annotations

import asyncio
import os
import socket
import threading
import time

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.loadgen import inline_cycle_payloads, run_load
from repro.service.resilience import (
    FAILPOINTS,
    CircuitBreaker,
    FaultInjector,
    FaultingStore,
    InjectedFault,
    RetryPolicy,
    parse_fault_spec,
)
from repro.service.server import ServerThread, ServiceConfig, VerdictService
from repro.sweep.store import (
    JsonlVerdictStore,
    MemoryVerdictStore,
    SQLiteVerdictStore,
)

SPEC = {"arbiter": "2-colorable", "family": "cycle", "n": 6, "scheme": "sequential"}


def _query(client, n=6, **kwargs):
    return client.query_spec(
        check=False, arbiter="3-colorable", family="cycle", n=n, scheme="sequential"
    )


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# Fault spec parsing + injector
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_parse_entries(self):
        parsed = parse_fault_spec(
            "store-get-error, store-put-error=0.5:times=3,"
            "slow-response=1.0:latency=0.2:for=5, conn-drop=off"
        )
        assert parsed["store-get-error"] == {}
        assert parsed["store-put-error"] == {"rate": 0.5, "times": 3}
        assert parsed["slow-response"] == {"rate": 1.0, "latency": 0.2, "for_seconds": 5.0}
        assert parsed["conn-drop"] == {"off": True}

    @pytest.mark.parametrize(
        "bad",
        [
            "no-such-failpoint",
            "store-get-error=abc",
            "store-get-error:latency",
            "store-get-error:budget=3",
        ],
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)


class TestFaultInjector:
    def test_unarmed_is_quiet(self):
        faults = FaultInjector()
        for name in FAILPOINTS:
            assert not faults.should_fire(name)
            assert faults.delay(name) == 0.0
            faults.check(name)  # must not raise

    def test_check_raises_injected_fault(self):
        faults = FaultInjector()
        faults.configure("store-get-error")
        with pytest.raises(InjectedFault) as excinfo:
            faults.check("store-get-error")
        assert excinfo.value.failpoint == "store-get-error"
        assert isinstance(excinfo.value, OSError)  # real-error handling applies

    def test_times_budget(self):
        faults = FaultInjector()
        faults.configure("conn-drop", times=2)
        assert faults.should_fire("conn-drop")
        assert faults.should_fire("conn-drop")
        assert not faults.should_fire("conn-drop")
        assert faults.fired["conn-drop"] == 2
        assert "conn-drop" not in faults.active()

    def test_for_window_with_fake_clock(self):
        clock = FakeClock()
        faults = FaultInjector(clock=clock)
        faults.configure("store-get-error", for_seconds=5.0)
        assert faults.should_fire("store-get-error")
        clock.advance(5.1)
        assert not faults.should_fire("store-get-error")
        assert "store-get-error" not in faults.active()

    def test_rate_is_deterministic_under_seed(self):
        def fires(seed):
            faults = FaultInjector(seed=seed)
            faults.configure("store-get-error", rate=0.5)
            return [faults.should_fire("store-get-error") for _ in range(40)]

        pattern = fires(7)
        assert pattern == fires(7)  # same seed, same chaos
        assert any(pattern) and not all(pattern)  # rate actually bites

    def test_off_and_clear(self):
        faults = FaultInjector()
        faults.configure_spec("store-get-error,slow-response:latency=0.1")
        faults.configure_spec("store-get-error=off")
        assert sorted(faults.active()) == ["slow-response"]
        faults.clear()
        assert faults.active() == {}


class TestFaultingStore:
    def test_faults_bite_and_passthrough(self):
        inner = MemoryVerdictStore()
        inner.put("k", True, name="x")
        faults = FaultInjector()
        store = FaultingStore(inner, faults)
        assert store.get("k") is True
        faults.configure("store-get-error", times=1)
        with pytest.raises(InjectedFault):
            store.get("k")
        assert store.get("k") is True  # budget spent
        faults.configure("store-put-error", times=1)
        with pytest.raises(InjectedFault):
            store.put("k2", False)
        store.put("k2", False)
        assert len(store) == 2

    def test_journal_reads_are_never_faulted(self):
        """Recovery must read what a healthy daemon journaled earlier."""
        inner = MemoryVerdictStore()
        inner.journal_append("s", 0, {"kind": "open", "address": {}})
        faults = FaultInjector()
        faults.configure("store-get-error")  # armed, but reads pass
        store = FaultingStore(inner, faults)
        assert store.journal_sessions() == ["s"]
        assert store.journal_entries("s")[0][0] == 0
        faults.configure("store-put-error")
        with pytest.raises(InjectedFault):
            store.journal_append("s", 1, {"kind": "deltas", "deltas": []})

    def test_latency_failpoint_sleeps(self):
        store = FaultingStore(MemoryVerdictStore(), FaultInjector())
        store.faults.configure("store-get-latency", latency=0.05, times=1)
        started = time.perf_counter()
        store.get("missing")
        assert time.perf_counter() - started >= 0.04


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_after_consecutive_failures_only(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        for _ in range(2):
            breaker.record_failure()
        breaker.record_success()  # streak broken
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_half_open_single_probe_recloses(self):
        clock = FakeClock()
        transitions = []
        breaker = CircuitBreaker(
            failure_threshold=1,
            reset_seconds=5.0,
            clock=clock,
            on_transition=lambda old, new: transitions.append((old, new)),
        )
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        clock.advance(5.1)
        assert breaker.allow()  # the probe
        assert breaker.state == "half-open"
        assert not breaker.allow()  # second caller is NOT admitted
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()
        assert transitions == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()  # timer restarted
        assert breaker.opened == 2
        snapshot = breaker.snapshot()
        assert snapshot["state"] == "open" and snapshot["probes"] == 1


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def _policy(self, **kwargs):
        clock = FakeClock()
        slept = []

        def sleep(seconds):
            slept.append(seconds)
            clock.advance(seconds)

        policy = RetryPolicy(clock=clock, sleep=sleep, jitter=0.0, **kwargs)
        return policy, clock, slept

    def test_backoff_schedule(self):
        policy, _, _ = self._policy(base_delay=0.1, multiplier=2.0, max_delay=0.5)
        assert [policy.backoff(a) for a in range(4)] == [0.1, 0.2, 0.4, 0.5]

    def test_jitter_stretches_within_bounds(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.5)
        for _ in range(50):
            assert 1.0 <= policy.backoff(0) <= 1.5

    def test_attempt_budget(self):
        policy, clock, _ = self._policy(max_attempts=3)
        started = clock()
        assert policy.may_retry(0, started)
        assert policy.may_retry(1, started)
        assert not policy.may_retry(2, started)  # attempts exhausted

    def test_overall_deadline(self):
        policy, clock, slept = self._policy(
            max_attempts=100, base_delay=1.0, multiplier=1.0, deadline=2.5
        )
        started = clock()
        attempts = 0
        while policy.may_retry(attempts, started):
            policy.sleep_for(attempts, started)
            attempts += 1
        assert attempts == 3  # 1.0 + 1.0 + clamped 0.5, then out of budget
        assert sum(slept) == pytest.approx(2.5)

    def test_retryable_codes(self):
        policy, _, _ = self._policy()
        assert policy.retryable("overloaded")
        assert policy.retryable("transport")
        assert policy.retryable("timeout")
        assert not policy.retryable("bad-request")
        assert not policy.retryable("draining")


# ----------------------------------------------------------------------
# Session journal on every backend
# ----------------------------------------------------------------------
class TestJournalBackends:
    def _roundtrip(self, store):
        entries = [
            (0, {"kind": "open", "address": {"spec": dict(SPEC)}}),
            (1, {"kind": "deltas", "deltas": [{"kind": "edge-insert", "u": 0, "v": 2}],
                 "applied": 1, "dirty": 3, "token": "t1"}),
        ]
        for seq, entry in entries:
            store.journal_append("wb", seq, entry)
        store.journal_append("other", 0, {"kind": "open", "address": {}})
        assert store.journal_sessions() == ["other", "wb"]
        assert store.journal_entries("wb") == entries
        store.journal_clear("wb")
        assert store.journal_sessions() == ["other"]
        assert store.journal_entries("wb") == []

    def test_memory(self):
        self._roundtrip(MemoryVerdictStore())

    def test_sqlite(self, tmp_path):
        store = SQLiteVerdictStore(str(tmp_path / "v.sqlite"))
        try:
            self._roundtrip(store)
        finally:
            store.close()

    def test_sqlite_journal_survives_reopen(self, tmp_path):
        path = str(tmp_path / "v.sqlite")
        store = SQLiteVerdictStore(path)
        store.journal_append("wb", 0, {"kind": "open", "address": {}})
        store.close()
        reopened = SQLiteVerdictStore(path)
        try:
            assert reopened.journal_sessions() == ["wb"]
        finally:
            reopened.close()

    def test_jsonl(self, tmp_path):
        store = JsonlVerdictStore(str(tmp_path / "v.jsonl"))
        try:
            self._roundtrip(store)
        finally:
            store.close()

    def test_jsonl_journal_and_tombstone_survive_reopen(self, tmp_path):
        path = str(tmp_path / "v.jsonl")
        store = JsonlVerdictStore(path)
        store.journal_append("wb", 0, {"kind": "open", "address": {}})
        store.journal_append("gone", 0, {"kind": "open", "address": {}})
        store.journal_clear("gone")
        store.close()
        reopened = JsonlVerdictStore(path)
        try:
            assert reopened.journal_sessions() == ["wb"]
        finally:
            reopened.close()


class TestJsonlCrashSafety:
    def test_truncated_trailing_line_is_recovered(self, tmp_path):
        path = str(tmp_path / "v.jsonl")
        store = JsonlVerdictStore(path)
        store.put("k1", True, name="a")
        store.put("k2", False, name="b")
        store.close()
        good_size = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(b'{"key": "k3", "verd')  # the crash artifact
        recovered = JsonlVerdictStore(path)
        try:
            assert recovered.get("k1") is True and recovered.get("k2") is False
            assert recovered.truncated_bytes > 0
            # The partial line was physically truncated away: appends go
            # after the last *good* record, not after garbage.
            assert os.path.getsize(path) == good_size
            recovered.put("k3", True, name="c")
        finally:
            recovered.close()
        clean = JsonlVerdictStore(path)
        try:
            assert clean.get("k3") is True and clean.truncated_bytes == 0
        finally:
            clean.close()

    def test_mid_file_corruption_still_raises(self, tmp_path):
        path = str(tmp_path / "v.jsonl")
        store = JsonlVerdictStore(path)
        store.put("k1", True)
        store.close()
        with open(path, "ab") as handle:
            handle.write(b"garbage\n")
            handle.write(b'{"key": "k2", "verdict": true, "name": "", "seconds": 0}\n')
        with pytest.raises(Exception):
            JsonlVerdictStore(path)

    def test_close_is_idempotent_and_fsyncs(self, tmp_path):
        store = JsonlVerdictStore(str(tmp_path / "v.jsonl"))
        store.put("k", True)
        store.close()
        store.close()  # second close must be a no-op, not ValueError


# ----------------------------------------------------------------------
# Failpoints end to end (live daemon)
# ----------------------------------------------------------------------
class TestFailpointsEndToEnd:
    def test_store_error_degrades_instead_of_failing(self):
        store = MemoryVerdictStore()
        with ServerThread(store=store, config=ServiceConfig(window_seconds=0.0)) as server:
            with ServiceClient(server.address) as client:
                healthy = _query(client, n=5)
                assert healthy["ok"] and healthy["degraded"] is False
                client.set_faults("store-get-error,store-put-error")
                faulted = _query(client, n=6)
                # Still a correct verdict -- just without the store tier.
                assert faulted["ok"] is True
                assert faulted["degraded"] is True
                assert faulted["source"] in ("compute", "coalesced")
                client.clear_faults()
                stats = client.stats()
                assert stats["tiers"]["store"]["errors"] >= 1
                assert stats["resilience"]["degraded"] >= 1
                fired = stats["resilience"]["faults"]["fired"]
                assert fired.get("store-get-error", 0) >= 1

    def test_compute_error_is_typed_internal_not_a_dead_daemon(self):
        with ServerThread(store=None) as server:
            with ServiceClient(server.address) as client:
                client.set_faults("compute-error=1.0:times=1")
                response = _query(client, n=7)
                assert response["ok"] is False
                assert response["error"]["code"] == "internal"
                assert client.ping()  # the daemon survived
                again = _query(client, n=7)
                assert again["ok"] is True

    def test_conn_drop_mid_request_keeps_daemon_serving(self):
        with ServerThread(store=None) as server:
            with ServiceClient(server.address) as client:
                client.set_faults("conn-drop=1.0:times=1")
                with pytest.raises(ServiceError) as excinfo:
                    client.query_spec(**SPEC)
                assert excinfo.value.code == "transport"
                # The same client transparently reconnects...
                assert client.ping()
            # ...and a brand-new connection works too.
            with ServiceClient(server.address) as fresh:
                assert fresh.ping()
                assert _query(fresh, n=8)["ok"]

    def test_slow_response_hits_request_deadline(self):
        with ServerThread(store=None) as server:
            with ServiceClient(server.address) as client:
                client.set_faults("slow-response=1.0:latency=0.5")
                response = client.request(
                    {"v": 1, "op": "query", "spec": dict(SPEC), "deadline_ms": 50}
                )
                assert response["ok"] is False
                assert response["error"]["code"] == "deadline-exceeded"
                client.clear_faults()
                stats = client.stats()
                assert stats["resilience"]["deadline_exceeded"] >= 1
                assert _query(client)["ok"]  # still serving

    def test_default_deadline_from_config(self):
        config = ServiceConfig(default_deadline_seconds=0.05)
        with ServerThread(store=None, config=config) as server:
            with ServiceClient(server.address) as client:
                client.set_faults("slow-response=1.0:latency=0.5:times=1")
                response = _query(client)
                assert response["error"]["code"] == "deadline-exceeded"

    def test_admin_op_rejects_bad_specs(self):
        with ServerThread(store=None) as server:
            with ServiceClient(server.address) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.set_faults("no-such-failpoint")
                assert excinfo.value.code == "bad-request"
                with pytest.raises(ServiceError) as excinfo:
                    client.admin("reboot")
                assert excinfo.value.code == "bad-request"
                assert client.faults()["active"] == {}


# ----------------------------------------------------------------------
# Breaker end to end
# ----------------------------------------------------------------------
class TestBreakerEndToEnd:
    def test_breaker_opens_sheds_and_recloses(self):
        config = ServiceConfig(
            window_seconds=0.0, breaker_threshold=2, breaker_reset_seconds=0.2
        )
        with ServerThread(store=MemoryVerdictStore(), config=config) as server:
            with ServiceClient(server.address) as client:
                client.set_faults("store-get-error,store-put-error")
                for n in (4, 5, 6, 7):
                    response = _query(client, n=n)
                    assert response["ok"] is True, response
                    assert response["degraded"] is True
                stats = client.stats()
                breaker = stats["resilience"]["breaker"]
                assert breaker["state"] == "open"
                assert breaker["opened"] >= 1
                assert stats["tiers"]["store"]["put_failures_by_error"].get(
                    "InjectedFault", 0
                ) >= 1
                # Heal the store and wait out the reset window: the next
                # query is the half-open probe and re-closes the breaker.
                client.clear_faults()
                time.sleep(0.3)
                probe = _query(client, n=8)
                assert probe["ok"] is True and probe["degraded"] is False
                assert client.stats()["resilience"]["breaker"]["state"] == "closed"

    def test_open_breaker_skips_store_reads(self):
        config = ServiceConfig(
            window_seconds=0.0, breaker_threshold=1, breaker_reset_seconds=60.0
        )
        with ServerThread(store=MemoryVerdictStore(), config=config) as server:
            with ServiceClient(server.address) as client:
                client.set_faults("store-get-error=1.0:times=1,store-put-error")
                _query(client, n=4)  # trips the breaker
                client.clear_faults()
                before = client.stats()["tiers"]["store"]
                response = _query(client, n=5)
                assert response["ok"] and response["degraded"] is True
                after = client.stats()["tiers"]["store"]
                # The read was skipped, not attempted-and-failed.
                assert after["skipped"] > before["skipped"]
                assert after["errors"] == before["errors"]


# ----------------------------------------------------------------------
# Client-side: timeout typing, idempotent close, retries
# ----------------------------------------------------------------------
class _SilentServer:
    """Accepts connections and never replies (for timeout tests)."""

    def __init__(self):
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(4)
        self.port = self._sock.getsockname()[1]
        self._accepted = []
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._thread.start()

    def _accept_loop(self):
        try:
            while True:
                conn, _ = self._sock.accept()
                self._accepted.append(conn)  # hold it open, never answer
        except OSError:
            pass

    def close(self):
        self._sock.close()
        for conn in self._accepted:
            try:
                conn.close()
            except OSError:
                pass


class TestClientResilience:
    def test_socket_timeout_maps_to_typed_timeout(self):
        silent = _SilentServer()
        try:
            client = ServiceClient(("tcp", "127.0.0.1", silent.port), timeout=0.1)
            with pytest.raises(ServiceError) as excinfo:
                client.ping()
            assert excinfo.value.code == "timeout"
            client.close()
        finally:
            silent.close()

    def test_close_is_idempotent_after_broken_connection(self):
        silent = _SilentServer()
        try:
            client = ServiceClient(("tcp", "127.0.0.1", silent.port), timeout=0.1)
            with pytest.raises(ServiceError):
                client.ping()
            client.close()
            client.close()  # second close after teardown must not raise
            with pytest.raises(ServiceError) as excinfo:
                client.ping()  # using a closed client is a typed error
            assert excinfo.value.code == "transport"
        finally:
            silent.close()

    def test_retry_policy_rides_out_conn_drops(self):
        with ServerThread(store=None) as server:
            policy = RetryPolicy(max_attempts=4, base_delay=0.01, jitter=0.0)
            with ServiceClient(server.address, retry=policy) as client:
                client.set_faults("conn-drop=1.0:times=2")
                response = _query(client, n=9)
                assert response["ok"] is True
                assert client.retries >= 1

    def test_mutate_retry_needs_token_and_dedupes(self):
        with ServerThread(store=MemoryVerdictStore()) as server:
            with ServiceClient(server.address) as client:
                client.mutate("wb", spec=SPEC)
                first = client.mutate(
                    "wb",
                    deltas=[{"kind": "edge-insert", "u": 0, "v": 2}],
                    token="tok-1",
                )
                assert first["applied"] == 1 and first["deduped"] is False
                key_after = client.query_session("wb")["key"]
                # The "lost reply" retry: same token, applied exactly once.
                retry = client.mutate(
                    "wb",
                    deltas=[{"kind": "edge-insert", "u": 0, "v": 2}],
                    token="tok-1",
                )
                assert retry["deduped"] is True
                assert retry["applied"] == first["applied"]
                assert client.query_session("wb")["key"] == key_after

    def test_retrying_client_autogenerates_mutate_tokens(self):
        with ServerThread(store=MemoryVerdictStore()) as server:
            policy = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0)
            with ServiceClient(server.address, retry=policy) as client:
                client.mutate("wb", spec=SPEC)
                client.set_faults("conn-drop=1.0:times=1")
                response = client.mutate(
                    "wb", deltas=[{"kind": "edge-insert", "u": 0, "v": 2}]
                )
                # The drop ate the first reply; the retry carried the same
                # auto-token, so the batch applied exactly once.
                assert response["deduped"] is True
                assert client.retries >= 1
                info = client.stats()["dynamic"]["by_session"]["wb"]
                assert info["mutate_batches"] == 2  # open + one batch


# ----------------------------------------------------------------------
# Crash recovery: the journal replays to identical verdicts
# ----------------------------------------------------------------------
class TestSessionRecovery:
    def _mutate_and_snapshot(self, server):
        with ServiceClient(server.address) as client:
            client.mutate("wb", spec=SPEC)
            client.mutate(
                "wb",
                deltas=[{"kind": "edge-insert", "u": 0, "v": 2}],
                token="tok-1",
            )
            client.mutate("wb", deltas=[{"kind": "set-label", "node": 1, "label": "1"}])
            response = client.query_session("wb")
            return response["verdict"], response["key"]

    def test_kill_and_restart_replays_to_identical_verdicts(self, tmp_path):
        """The acceptance test: journaled sessions survive a daemon death.

        The first daemon is never closed cleanly -- journal writes happen
        synchronously at mutate time, so an abandoned service models a
        ``kill -9`` exactly (nothing is flushed on the way down).
        """
        store_url = "sqlite://" + str(tmp_path / "v.sqlite")
        first = ServerThread(store=store_url)
        first.start()
        try:
            verdict, key = self._mutate_and_snapshot(first)
        finally:
            # Stop the listener thread but never service.close(): the
            # store sees exactly what a crashed daemon left behind.
            first.service._closed = True  # suppress the clean-close flush
            first.stop()
        with ServerThread(store=store_url) as second:
            assert second.service.sessions_recovered == 1
            with ServiceClient(second.address) as client:
                recovered = client.query_session("wb")
                assert recovered["verdict"] == verdict
                assert recovered["key"] == key
                info = client.stats()["dynamic"]["by_session"]["wb"]
                assert info["recovered"] is True
                # Token memory was rebuilt from the journal: the pre-crash
                # batch does not re-apply.
                retry = client.mutate(
                    "wb",
                    deltas=[{"kind": "edge-insert", "u": 0, "v": 2}],
                    token="tok-1",
                )
                assert retry["deduped"] is True
                assert client.query_session("wb")["key"] == key

    def test_recovery_with_shared_memory_store(self):
        """Same story without touching disk: two services, one store."""
        store = MemoryVerdictStore()
        first = ServerThread(store=store)
        first.start()
        try:
            verdict, key = self._mutate_and_snapshot(first)
        finally:
            first.service._closed = True
            first.stop()
        with ServerThread(store=store) as second:
            with ServiceClient(second.address) as client:
                recovered = client.query_session("wb")
                assert (recovered["verdict"], recovered["key"]) == (verdict, key)

    def test_unjournaled_sessions_do_not_resurrect(self):
        """A store with no journal recovers nothing (and does not crash)."""
        service = VerdictService(store=MemoryVerdictStore())
        try:
            assert service.recover_sessions() == 0
        finally:
            asyncio.run(service.close())


# ----------------------------------------------------------------------
# Drain + chaos load
# ----------------------------------------------------------------------
class TestDrainAndChaos:
    def test_draining_daemon_rejects_new_work_typed(self):
        with ServerThread(store=None) as server:
            with ServiceClient(server.address) as client:
                assert _query(client)["ok"]
                server.service.begin_drain()
                refused = _query(client)
                assert refused["error"]["code"] == "draining"
                mutate = client.mutate("wb", spec=SPEC, check=False)
                assert mutate["error"]["code"] == "draining"
                # The control plane still answers while draining.
                assert client.ping()
                assert client.stats()["resilience"]["draining"] is True

    def test_chaos_load_no_crashes_all_requests_answered(self):
        """ISSUE acceptance: 100% store faults under load -- every request
        is answered (degraded or typed), the daemon never dies, and the
        breaker opens and re-closes."""
        config = ServiceConfig(
            window_seconds=0.0, breaker_threshold=3, breaker_reset_seconds=0.2
        )
        with ServerThread(store=MemoryVerdictStore(), config=config) as server:
            report = run_load(
                server.address,
                inline_cycle_payloads(sizes=(4, 5, 6, 7)),
                clients=4,
                total=60,
                label="chaos",
                retries=2,
                chaos="store-get-error,store-put-error",
            )
            # Every request answered: no transport losses, no hangs.
            assert report.errors == 0, report.as_dict()
            assert report.requests == 60
            assert report.degraded > 0
            assert report.chaos and report.chaos["fired"]
            stats = server.service.stats()
            assert stats["resilience"]["breaker"]["opened"] >= 1
            # Faults were cleared by the run; after the reset window the
            # breaker probe re-closes the store tier.
            time.sleep(0.3)
            with ServiceClient(server.address) as client:
                probe = _query(client, n=11)
                assert probe["ok"] and probe["degraded"] is False
                assert client.stats()["resilience"]["breaker"]["state"] == "closed"
