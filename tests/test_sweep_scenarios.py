"""The scenario registry: built-ins, determinism, cross-product helpers."""

from __future__ import annotations

import pytest

from repro.graphs import generators
from repro.graphs.identifiers import is_locally_unique, sequential_identifier_assignment
from repro.hierarchy.arbiters import three_colorability_spec
from repro.hierarchy.game import Quantifier
from repro.sweep import (
    build_instances,
    fixed_certificate_space,
    get_scenario,
    instances_for_spec,
    register_scenario,
    scenario_names,
)
from repro.sweep.fingerprint import game_instance_key

BUILTIN_SCENARIOS = [
    "smoke",
    "separations",
    "locality",
    "fagin",
    "coloring-cycles",
    "random-regular",
    "grids-trees",
]


class TestRegistry:
    def test_builtins_registered(self):
        names = scenario_names()
        for name in BUILTIN_SCENARIOS:
            assert name in names

    def test_unknown_scenario_lists_known(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("no-such-scenario")

    def test_registration_and_shadowing(self):
        @register_scenario("test-tiny", "one instance")
        def build():
            spec = three_colorability_spec()
            return instances_for_spec(spec, [("c3", generators.cycle_graph(3))])

        assert len(build_instances("test-tiny")) == 1

        @register_scenario("test-tiny", "two instances now")
        def rebuild():
            spec = three_colorability_spec()
            return instances_for_spec(
                spec, [("c3", generators.cycle_graph(3)), ("c4", generators.cycle_graph(4))]
            )

        assert len(build_instances("test-tiny")) == 2
        assert get_scenario("test-tiny").description == "two instances now"


@pytest.mark.parametrize("name", BUILTIN_SCENARIOS)
class TestBuiltinScenarios:
    def test_builds_well_formed_instances(self, name):
        instances = build_instances(name)
        assert len(instances) >= 5
        seen_names = set()
        for instance in instances:
            assert instance.name, "every instance carries a diagnostic name"
            seen_names.add(instance.name)
            assert len(instance.spaces) == len(instance.prefix)
            assert set(instance.ids) >= set(instance.graph.nodes)
        assert len(seen_names) == len(instances), "instance names are unique"

    def test_rebuild_is_deterministic(self, name):
        # The parallel workers and the persistent store both rely on the
        # builder producing the same instances (same content keys) again.
        first = build_instances(name)
        second = build_instances(name)
        assert [i.name for i in first] == [i.name for i in second]
        assert [game_instance_key(i) for i in first] == [
            game_instance_key(i) for i in second
        ]


class TestHelpers:
    def test_instances_for_spec_cross_product(self):
        spec = three_colorability_spec()
        graphs = [("c3", generators.cycle_graph(3)), ("c5", generators.cycle_graph(5))]
        instances = instances_for_spec(spec, graphs, id_schemes=("small", "sequential"))
        assert len(instances) == 4
        assert instances[0].name == "3-colorable|c3|small"
        for instance in instances:
            assert is_locally_unique(
                instance.graph, instance.ids, spec.identifier_radius
            )

    def test_fixed_certificate_space_pins_assignment(self):
        graph = generators.path_graph(3)
        ids = sequential_identifier_assignment(graph)
        certificates = {node: format(i, "b") for i, node in enumerate(graph.nodes)}
        space = fixed_certificate_space(certificates)
        for node in graph.nodes:
            assert space.node_candidates(graph, ids, node) == [certificates[node]]
        assignments = list(space.assignments(graph, ids))
        assert assignments == [certificates]

    def test_random_regular_generator(self):
        graph = generators.random_regular_graph(3, 8, seed=1)
        assert graph.cardinality() == 8
        assert all(graph.degree(u) == 3 for u in graph.nodes)
        again = generators.random_regular_graph(3, 8, seed=1)
        assert graph == again, "same seed, same graph"
        with pytest.raises(ValueError):
            generators.random_regular_graph(3, 9, seed=0)  # odd degree sum
        with pytest.raises(ValueError):
            generators.random_regular_graph(1, 5, seed=0)

    def test_gadget_prefix_quantifiers(self):
        for instance in build_instances("locality"):
            assert list(instance.prefix) == [Quantifier.EXISTS]
