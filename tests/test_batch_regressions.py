"""Regression tests for the batch API's cache keys and input validation."""

from __future__ import annotations

import gc

import pytest

from repro.engine.batch import GameInstance, IdentityKey, decide_batch, evaluate_batch
from repro.graphs import generators
from repro.graphs.identifiers import sequential_identifier_assignment
from repro.hierarchy.arbiters import three_colorability_spec
from repro.machines import builtin


class TestIdentityKey:
    def test_same_objects_equal(self):
        machine = builtin.constant_algorithm("1")
        assert IdentityKey(machine) == IdentityKey(machine)
        assert hash(IdentityKey(machine)) == hash(IdentityKey(machine))

    def test_equal_but_distinct_objects_differ(self):
        # Identity, not structural equality: two equal-looking machines get
        # separate engines (their caches are not interchangeable a priori).
        assert IdentityKey(builtin.constant_algorithm("1")) != IdentityKey(
            builtin.constant_algorithm("1")
        )

    def test_key_pins_referents(self):
        import weakref

        machine = builtin.constant_algorithm("1")
        finalized = []
        weakref.finalize(machine, finalized.append, True)
        key = IdentityKey(machine)
        del machine
        gc.collect()
        assert not finalized, "a live cache key must keep its machine alive"
        del key
        gc.collect()
        assert finalized


class TestEvaluateBatchLazy:
    def test_lazy_generator_with_dying_machines(self):
        """Machines created and dropped mid-iteration must not alias caches.

        The old ``id(machine)``-based keys could hand a freshly allocated
        machine a dead machine's engine -- and its cached game value.  The
        identity keys hold strong references, so every engine's machine
        stays alive for the duration of the batch.
        """
        graph = generators.path_graph(3)
        ids = sequential_identifier_assignment(graph)

        def lazy_instances():
            for round_index in range(6):
                verdict = "1" if round_index % 2 == 0 else "0"
                machine = builtin.constant_algorithm(verdict)
                yield GameInstance(
                    machine=machine, graph=graph, ids=ids, spaces=[], prefix=[]
                )
                del machine
                gc.collect()

        assert evaluate_batch(lazy_instances()) == [True, False, True, False, True, False]

    def test_list_input_still_works(self):
        spec = three_colorability_spec()
        graphs = [generators.cycle_graph(3), generators.complete_graph(4)]
        assert decide_batch(spec, graphs) == [True, False]


class TestDecideBatchValidation:
    def test_short_ids_list_rejected(self):
        """A truncated ids_list used to silently fall back to generated ids."""
        spec = three_colorability_spec()
        graphs = [generators.cycle_graph(3), generators.cycle_graph(5)]
        ids = sequential_identifier_assignment(graphs[0])
        with pytest.raises(ValueError, match="one entry per graph"):
            decide_batch(spec, graphs, ids_list=[ids])

    def test_long_ids_list_rejected(self):
        spec = three_colorability_spec()
        graphs = [generators.cycle_graph(3)]
        ids = sequential_identifier_assignment(graphs[0])
        with pytest.raises(ValueError, match="one entry per graph"):
            decide_batch(spec, graphs, ids_list=[ids, ids])

    def test_none_entries_still_generate(self):
        spec = three_colorability_spec()
        graphs = [generators.cycle_graph(3), generators.complete_graph(4)]
        ids = sequential_identifier_assignment(graphs[0])
        assert decide_batch(spec, graphs, ids_list=[ids, None]) == [True, False]
