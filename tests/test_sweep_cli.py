"""CLI smoke tests for ``python -m repro sweep``."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.sweep.cli import main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestInProcess:
    def test_scenarios_listing(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "separations" in out

    def test_sweep_smoke_with_store_and_json(self, tmp_path, capsys):
        store = str(tmp_path / "verdicts.sqlite")
        out_json = str(tmp_path / "result.json")
        assert main(["sweep", "smoke", "--jobs", "2", "--store", store, "--json", out_json]) == 0
        table = capsys.readouterr().out
        assert "instances:" in table.splitlines()[-1]
        payload = json.loads(open(out_json).read())
        assert payload["scenario"] == "smoke"
        assert payload["summary"]["instances"] == len(payload["instances"])
        assert payload["summary"]["cold"] == payload["summary"]["instances"]
        assert all(isinstance(i["verdict"], bool) for i in payload["instances"])
        assert all(i["key"] for i in payload["instances"])

        # Second run: everything answered from the store.
        assert main(["sweep", "smoke", "--store", store, "--json", out_json]) == 0
        capsys.readouterr()
        warm = json.loads(open(out_json).read())
        assert warm["summary"]["cached"] == warm["summary"]["instances"]
        assert [i["verdict"] for i in warm["instances"]] == [
            i["verdict"] for i in payload["instances"]
        ]

    def test_limit(self, tmp_path, capsys):
        assert main(["sweep", "smoke", "--limit", "3", "--quiet"]) == 0

    def test_unknown_scenario_fails(self, capsys):
        assert main(["sweep", "definitely-not-registered"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_profile_prints_hot_spots(self, capsys):
        assert main(["profile", "smoke", "--limit", "3", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "profiled scenario 'smoke': 3 instances" in out
        assert "cumulative" in out  # pstats sort header
        assert "ncalls" in out

    def test_profile_sort_and_store(self, tmp_path, capsys):
        store = str(tmp_path / "profile.sqlite")
        assert main(["profile", "smoke", "--limit", "2", "--store", store,
                     "--sort", "tottime", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "2 solved, 0 from store" in out
        # Warm profile: the store answers everything.
        assert main(["profile", "smoke", "--limit", "2", "--store", store]) == 0
        assert "0 solved, 2 from store" in capsys.readouterr().out

    def test_profile_unknown_scenario_fails(self, capsys):
        assert main(["profile", "nope-not-registered"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_json_to_stdout(self, capsys):
        assert main(["sweep", "smoke", "--limit", "2", "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["instances"] == 2


@pytest.mark.slow
class TestSubprocess:
    def test_python_dash_m_repro(self, tmp_path):
        env = dict(os.environ)
        src = os.path.join(REPO_ROOT, "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        out_json = str(tmp_path / "out.json")
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "sweep",
                "smoke",
                "--jobs",
                "2",
                "--store",
                str(tmp_path / "store.sqlite"),
                "--json",
                out_json,
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
            cwd=REPO_ROOT,
        )
        assert completed.returncode == 0, completed.stderr
        payload = json.loads(open(out_json).read())
        assert payload["summary"]["instances"] > 10


class TestBenchCommand:
    def _snapshots(self, tmp_path, qps=500.0):
        (tmp_path / "BENCH_fig02.json").write_text(json.dumps({
            "compiled_vs_engine": {"speedup_median": 20.0},
            "engine_vs_naive": {"speedup_median": 50.0},
            "bitset_vs_compiled": {"speedup_median": 8.0},
        }))
        (tmp_path / "BENCH_service.json").write_text(json.dumps({
            "speedup_hot_vs_cold": 80.0,
            "speedup_warm_vs_cold": 40.0,
            "hot_cache": {
                "requests_per_second": qps,
                "latency_ms": {"p99": 2.0},
                "cache_hit_rate": 0.99,
            },
        }))

    def test_bench_list_names_every_suite(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig02", "fig07", "canonical", "service", "dynamic"):
            assert name in out

    def test_bench_unknown_suite_fails(self, capsys):
        assert main(["bench", "nope"]) == 2
        assert "unknown suite" in capsys.readouterr().err

    def test_bench_collect_appends_a_record_and_checks(
        self, tmp_path, monkeypatch, capsys
    ):
        self._snapshots(tmp_path)
        monkeypatch.setenv("BENCH_OUTPUT_DIR", str(tmp_path))
        out_json = tmp_path / "bench.json"
        assert main(["bench", "--collect", "--check", "--json", str(out_json)]) == 0
        captured = capsys.readouterr()
        assert "appended record 1" in captured.err
        assert "bench check passed" in captured.out
        history = (tmp_path / "BENCH_history.jsonl").read_text().splitlines()
        assert len(history) == 1
        record = json.loads(history[0])
        assert record["metrics"]["service.hot_qps"] == 500.0
        assert record["git_sha"] and record["git_sha"] != ""
        payload = json.loads(out_json.read_text())
        assert payload["check"]["ok"] is True

    def test_bench_check_trips_on_a_2x_regression(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("BENCH_OUTPUT_DIR", str(tmp_path))
        for qps in (500.0, 510.0, 490.0):
            self._snapshots(tmp_path, qps=qps)
            assert main(["bench", "--collect", "--check"]) == 0
            capsys.readouterr()
        self._snapshots(tmp_path, qps=200.0)  # > 2x below the ~500 median
        assert main(["bench", "--collect", "--check"]) == 1
        captured = capsys.readouterr()
        assert "FAIL service.hot_qps" in captured.out.replace("  ", " ")
        assert "bench check FAILED" in captured.err

    def test_bench_no_append_checks_without_writing(
        self, tmp_path, monkeypatch, capsys
    ):
        self._snapshots(tmp_path)
        monkeypatch.setenv("BENCH_OUTPUT_DIR", str(tmp_path))
        assert main(["bench", "--collect", "--check", "--no-append"]) == 0
        assert not (tmp_path / "BENCH_history.jsonl").exists()

    def test_bench_collect_with_no_snapshots_fails(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("BENCH_OUTPUT_DIR", str(tmp_path))
        assert main(["bench", "--collect"]) == 1
        assert "no tracked metrics" in capsys.readouterr().err


class TestProfileLive:
    def test_profile_without_scenario_or_live_fails(self, capsys):
        assert main(["profile"]) == 2
        assert "--live" in capsys.readouterr().err

    def test_profile_live_unreachable_returns_one(self, capsys):
        assert main(["profile", "--live", "127.0.0.1:1"]) == 1
        assert "cannot fetch" in capsys.readouterr().err

    def test_profile_live_reads_a_real_daemon(self, tmp_path, capsys):
        from repro.service.client import ServiceClient
        from repro.service.server import ServerThread
        from repro.sweep.store import MemoryVerdictStore

        with ServerThread(store=MemoryVerdictStore(), http_port=0) as server:
            host, port = server.http_address
            with ServiceClient(server.address) as client:
                client.profile_start(hz=397)
                try:
                    import time as _time

                    deadline = _time.monotonic() + 5.0
                    while _time.monotonic() < deadline:
                        client.query_scenario("smoke", index=0)
                        if client.profile_snapshot()["samples"]:
                            break
                finally:
                    client.profile_stop()
            out_json = tmp_path / "live.json"
            assert main([
                "profile", "--live", f"{host}:{port}",
                "--top", "5", "--json", str(out_json),
            ]) == 0
        captured = capsys.readouterr()
        assert "sampling profiler stopped" in captured.out
        payload = json.loads(out_json.read_text())
        assert payload["profiler"]["hz"] == 397.0
        assert payload["profiler"]["samples"] >= 1
        assert len(payload["rows"]) <= 5


class TestTraceExportCommand:
    def test_trace_export_writes_a_loadable_document(self, tmp_path, capsys):
        from repro.service.client import ServiceClient
        from repro.service.server import ServerThread
        from repro.sweep.store import MemoryVerdictStore

        with ServerThread(store=MemoryVerdictStore(), http_port=0) as server:
            with ServiceClient(server.address) as client:
                client.query_scenario("smoke", index=0)
                client.query_scenario("smoke", index=0)
            host, port = server.http_address
            out = tmp_path / "trace.json"
            assert main([
                "trace", "--connect", f"{host}:{port}", "--export", str(out),
            ]) == 0
        assert "trace events" in capsys.readouterr().err
        document = json.loads(out.read_text())
        assert document["traceEvents"][0]["ph"] == "M"
        assert any(event["ph"] == "X" for event in document["traceEvents"])

    def test_trace_export_to_stdout(self, capsys):
        from repro.service.server import ServerThread
        from repro.sweep.store import MemoryVerdictStore

        with ServerThread(store=MemoryVerdictStore(), http_port=0) as server:
            host, port = server.http_address
            assert main(["trace", "--connect", f"{host}:{port}"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert "traceEvents" in document

    def test_trace_unreachable_returns_one(self, capsys):
        assert main(["trace", "--connect", "127.0.0.1:1"]) == 1
        assert "cannot fetch" in capsys.readouterr().err
