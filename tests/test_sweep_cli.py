"""CLI smoke tests for ``python -m repro sweep``."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.sweep.cli import main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestInProcess:
    def test_scenarios_listing(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "separations" in out

    def test_sweep_smoke_with_store_and_json(self, tmp_path, capsys):
        store = str(tmp_path / "verdicts.sqlite")
        out_json = str(tmp_path / "result.json")
        assert main(["sweep", "smoke", "--jobs", "2", "--store", store, "--json", out_json]) == 0
        table = capsys.readouterr().out
        assert "instances:" in table.splitlines()[-1]
        payload = json.loads(open(out_json).read())
        assert payload["scenario"] == "smoke"
        assert payload["summary"]["instances"] == len(payload["instances"])
        assert payload["summary"]["cold"] == payload["summary"]["instances"]
        assert all(isinstance(i["verdict"], bool) for i in payload["instances"])
        assert all(i["key"] for i in payload["instances"])

        # Second run: everything answered from the store.
        assert main(["sweep", "smoke", "--store", store, "--json", out_json]) == 0
        capsys.readouterr()
        warm = json.loads(open(out_json).read())
        assert warm["summary"]["cached"] == warm["summary"]["instances"]
        assert [i["verdict"] for i in warm["instances"]] == [
            i["verdict"] for i in payload["instances"]
        ]

    def test_limit(self, tmp_path, capsys):
        assert main(["sweep", "smoke", "--limit", "3", "--quiet"]) == 0

    def test_unknown_scenario_fails(self, capsys):
        assert main(["sweep", "definitely-not-registered"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_profile_prints_hot_spots(self, capsys):
        assert main(["profile", "smoke", "--limit", "3", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "profiled scenario 'smoke': 3 instances" in out
        assert "cumulative" in out  # pstats sort header
        assert "ncalls" in out

    def test_profile_sort_and_store(self, tmp_path, capsys):
        store = str(tmp_path / "profile.sqlite")
        assert main(["profile", "smoke", "--limit", "2", "--store", store,
                     "--sort", "tottime", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "2 solved, 0 from store" in out
        # Warm profile: the store answers everything.
        assert main(["profile", "smoke", "--limit", "2", "--store", store]) == 0
        assert "0 solved, 2 from store" in capsys.readouterr().out

    def test_profile_unknown_scenario_fails(self, capsys):
        assert main(["profile", "nope-not-registered"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_json_to_stdout(self, capsys):
        assert main(["sweep", "smoke", "--limit", "2", "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["instances"] == 2


@pytest.mark.slow
class TestSubprocess:
    def test_python_dash_m_repro(self, tmp_path):
        env = dict(os.environ)
        src = os.path.join(REPO_ROOT, "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        out_json = str(tmp_path / "out.json")
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "sweep",
                "smoke",
                "--jobs",
                "2",
                "--store",
                str(tmp_path / "store.sqlite"),
                "--json",
                out_json,
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
            cwd=REPO_ROOT,
        )
        assert completed.returncode == 0, completed.stderr
        payload = json.loads(open(out_json).read())
        assert payload["summary"]["instances"] > 10
