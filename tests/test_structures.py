"""Tests for relational structures and structural representations (Figure 5)."""

import pytest

from repro.graphs import generators
from repro.graphs.structures import (
    Structure,
    bit_element,
    node_elements,
    structural_representation,
)


class TestStructure:
    def test_requires_nonempty_domain(self):
        with pytest.raises(ValueError):
            Structure([])

    def test_signature(self):
        structure = Structure([1, 2], unary=[{1}], binary=[{(1, 2)}, set()])
        assert structure.signature == (1, 2)

    def test_relations_are_validated(self):
        with pytest.raises(ValueError):
            Structure([1], unary=[{2}])
        with pytest.raises(ValueError):
            Structure([1], binary=[{(1, 2)}])

    def test_connected_is_symmetric_closure(self):
        structure = Structure([1, 2, 3], binary=[{(1, 2)}])
        assert structure.connected(1, 2)
        assert structure.connected(2, 1)
        assert not structure.connected(1, 3)

    def test_ball(self):
        structure = Structure([1, 2, 3, 4], binary=[{(1, 2), (2, 3), (3, 4)}])
        assert structure.ball(1, 0) == {1}
        assert structure.ball(1, 2) == {1, 2, 3}

    def test_restriction(self):
        structure = Structure([1, 2, 3], unary=[{1, 3}], binary=[{(1, 2), (2, 3)}])
        sub = structure.restriction([1, 2])
        assert set(sub.domain) == {1, 2}
        assert sub.unary(1) == frozenset({1})
        assert sub.binary(1) == frozenset({(1, 2)})


class TestStructuralRepresentation:
    def test_figure5_element_count(self):
        # The Figure 5 graph: 4 nodes with labels 010, 10, 1101, 001 -> 4 + 12 elements.
        graph = generators.cycle_graph(4, labels=["010", "10", "1101", "001"])
        structure = structural_representation(graph)
        assert structure.cardinality() == 4 + 3 + 2 + 4 + 3
        assert structure.signature == (1, 2)

    def test_unary_relation_marks_one_bits(self):
        graph = generators.single_node("101")
        structure = structural_representation(graph)
        node = list(graph.nodes)[0]
        assert bit_element(node, 1) in structure.unary(1)
        assert bit_element(node, 2) not in structure.unary(1)
        assert bit_element(node, 3) in structure.unary(1)

    def test_edges_are_symmetric_in_relation_one(self, triangle):
        structure = structural_representation(triangle)
        nodes = list(triangle.nodes)
        assert structure.in_binary(1, nodes[0], nodes[1])
        assert structure.in_binary(1, nodes[1], nodes[0])

    def test_bit_successor_chain(self):
        graph = generators.single_node("0011")
        structure = structural_representation(graph)
        node = list(graph.nodes)[0]
        for i in range(1, 4):
            assert structure.in_binary(1, bit_element(node, i), bit_element(node, i + 1))
        assert not structure.in_binary(1, bit_element(node, 4), bit_element(node, 1))

    def test_ownership_relation(self):
        graph = generators.path_graph(2, labels=["1", "0"])
        structure = structural_representation(graph)
        a, b = list(graph.nodes)
        assert structure.in_binary(2, a, bit_element(a, 1))
        assert not structure.in_binary(2, a, bit_element(b, 1))

    def test_node_elements_helper(self):
        graph = generators.path_graph(3, labels=["11", "", "1"])
        structure = structural_representation(graph)
        assert set(node_elements(structure)) == set(graph.nodes)

    def test_neighborhood_cardinalities_from_paper(self):
        # From Section 3: for the upper-right node u of the Figure 5 graph,
        # card(N^$G_0(u)) = 4, card(N^$G_1(u)) = 8, N^$G_2(u) = $G.
        graph = generators.cycle_graph(4, labels=["010", "10", "1101", "001"])
        nodes = list(graph.nodes)
        u = nodes[2]  # label 1101 -> 1 + 4 elements in its own representation... adjust below
        # Choose the node with the 3-bit label "001" adjacent to the node with "1101":
        # we simply verify the general principle on the node labeled "001".
        target = nodes[3]
        from repro.graphs.structures import neighborhood_representation

        assert neighborhood_representation(graph, target, 0).cardinality() == 1 + 3
        assert neighborhood_representation(graph, target, 2).cardinality() == structural_representation(graph).cardinality()
