"""Tests for formula evaluation on structures (Table 1 semantics)."""

import pytest

from repro.graphs import generators
from repro.graphs.structures import Structure, structural_representation
from repro.logic import EvaluationOptions, evaluate, graph_satisfies
from repro.logic.semantics import EvaluationBudgetExceeded
from repro.logic.shorthands import is_bit1, is_node, is_selected
from repro.logic.syntax import (
    And,
    BinaryAtom,
    BoundedExists,
    BoundedForall,
    Equal,
    Exists,
    Forall,
    Iff,
    Implies,
    LocalExists,
    Not,
    Or,
    RelationAtom,
    RelationVariable,
    SOExists,
    SOForall,
    TruthConstant,
    UnaryAtom,
)


@pytest.fixture
def chain_structure():
    """A 3-element chain 1 -> 2 -> 3 with element 2 in the unary relation."""
    return Structure([1, 2, 3], unary=[{2}], binary=[{(1, 2), (2, 3)}])


class TestAtomsAndConnectives:
    def test_unary_and_binary_atoms(self, chain_structure):
        assert evaluate(chain_structure, UnaryAtom(1, "x"), {"x": 2})
        assert not evaluate(chain_structure, UnaryAtom(1, "x"), {"x": 1})
        assert evaluate(chain_structure, BinaryAtom(1, "x", "y"), {"x": 1, "y": 2})
        assert not evaluate(chain_structure, BinaryAtom(1, "x", "y"), {"x": 2, "y": 1})

    def test_equality_and_constants(self, chain_structure):
        assert evaluate(chain_structure, Equal("x", "y"), {"x": 3, "y": 3})
        assert evaluate(chain_structure, TruthConstant(True), {})
        assert not evaluate(chain_structure, TruthConstant(False), {})

    def test_connectives(self, chain_structure):
        t, f = TruthConstant(True), TruthConstant(False)
        assert evaluate(chain_structure, Or(f, t), {})
        assert not evaluate(chain_structure, And(t, f), {})
        assert evaluate(chain_structure, Implies(f, f), {})
        assert evaluate(chain_structure, Iff(t, t), {})
        assert not evaluate(chain_structure, Iff(t, f), {})

    def test_missing_variable_raises(self, chain_structure):
        with pytest.raises(KeyError):
            evaluate(chain_structure, UnaryAtom(1, "x"), {})


class TestFirstOrderQuantifiers:
    def test_unbounded_quantifiers(self, chain_structure):
        assert evaluate(chain_structure, Exists("x", UnaryAtom(1, "x")))
        assert not evaluate(chain_structure, Forall("x", UnaryAtom(1, "x")))

    def test_bounded_quantifier_ranges_over_connections(self, chain_structure):
        # Element 1 is connected to 2 only; element 2 to both 1 and 3.
        phi = BoundedExists("y", "x", UnaryAtom(1, "y"))
        assert evaluate(chain_structure, phi, {"x": 1})
        assert not evaluate(chain_structure, phi, {"x": 2})  # neighbors of 2 are 1 and 3

    def test_bounded_forall(self, chain_structure):
        phi = BoundedForall("y", "x", Not(UnaryAtom(1, "y")))
        assert evaluate(chain_structure, phi, {"x": 2})
        assert not evaluate(chain_structure, phi, {"x": 1})

    def test_local_quantifier_includes_anchor(self, chain_structure):
        phi = LocalExists("y", "x", 0, UnaryAtom(1, "y"))
        assert evaluate(chain_structure, phi, {"x": 2})
        assert not evaluate(chain_structure, phi, {"x": 1})
        phi1 = LocalExists("y", "x", 1, UnaryAtom(1, "y"))
        assert evaluate(chain_structure, phi1, {"x": 1})


class TestSecondOrderQuantifiers:
    def test_exists_monadic(self, chain_structure):
        X = RelationVariable("X", 1)
        # There is a set containing exactly the elements in the unary relation.
        phi = SOExists(X, Forall("x", Iff(RelationAtom(X, ("x",)), UnaryAtom(1, "x"))))
        assert evaluate(chain_structure, phi)

    def test_forall_monadic(self, chain_structure):
        X = RelationVariable("X", 1)
        # Not every set contains element 1.
        phi = SOForall(X, RelationAtom(X, ("x",)))
        assert not evaluate(chain_structure, phi, {"x": 1})

    def test_binary_relation_quantification(self):
        structure = Structure([1, 2], binary=[{(1, 2)}])
        R = RelationVariable("R", 2)
        # There is a relation equal to the edge relation.
        phi = SOExists(
            R,
            Forall(
                "x",
                Forall("y", Iff(RelationAtom(R, ("x", "y")), BinaryAtom(1, "x", "y"))),
            ),
        )
        assert evaluate(structure, phi)

    def test_candidate_limit_guard(self):
        structure = Structure(list(range(8)), binary=[set()])
        R = RelationVariable("R", 2)
        phi = SOExists(R, Forall("x", TruthConstant(True)))
        with pytest.raises(EvaluationBudgetExceeded):
            evaluate(structure, phi, options=EvaluationOptions(candidate_limit=10))

    def test_locality_restriction_shrinks_candidates(self):
        structure = Structure(list(range(6)), binary=[{(i, i + 1) for i in range(5)}])
        R = RelationVariable("R", 2)
        phi = SOExists(R, Forall("x", TruthConstant(True)))
        options = EvaluationOptions(second_order_locality=1, candidate_limit=20)
        assert evaluate(structure, phi, options=options)

    def test_node_only_restriction(self):
        graph = generators.path_graph(2, labels=["1", "1"])
        structure = structural_representation(graph)
        X = RelationVariable("X", 1)
        # "There is a set containing every element" is false under the
        # node-only restriction (bits can never be included) but true without it.
        phi = SOExists(X, Forall("x", RelationAtom(X, ("x",))))
        assert evaluate(structure, phi)
        assert not evaluate(
            structure, phi, options=EvaluationOptions(second_order_node_only=True)
        )


class TestGraphSatisfaction:
    def test_shorthand_predicates(self):
        graph = generators.path_graph(2, labels=["1", "0"])
        structure = structural_representation(graph)
        nodes = list(graph.nodes)
        assert evaluate(structure, is_node("x"), {"x": nodes[0]})
        assert evaluate(structure, is_selected("x"), {"x": nodes[0]})
        assert not evaluate(structure, is_selected("x"), {"x": nodes[1]})
        from repro.graphs.structures import bit_element

        assert evaluate(structure, is_bit1("x"), {"x": bit_element(nodes[0], 1)})
        assert not evaluate(structure, is_node("x"), {"x": bit_element(nodes[0], 1)})

    def test_selected_requires_label_exactly_one(self):
        graph = generators.path_graph(2, labels=["11", "1"])
        structure = structural_representation(graph)
        nodes = list(graph.nodes)
        assert not evaluate(structure, is_selected("x"), {"x": nodes[0]})
        assert evaluate(structure, is_selected("x"), {"x": nodes[1]})

    def test_graph_satisfies_wrapper(self):
        from repro.logic.examples import all_selected_formula

        assert graph_satisfies(generators.path_graph(2, labels=["1", "1"]), all_selected_formula())
        assert not graph_satisfies(generators.path_graph(2, labels=["1", "0"]), all_selected_formula())
