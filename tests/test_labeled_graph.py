"""Tests for the labeled-graph substrate (Section 3 preliminaries)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import generators
from repro.graphs.labeled_graph import LabeledGraph


class TestConstruction:
    def test_requires_at_least_one_node(self):
        with pytest.raises(ValueError):
            LabeledGraph([], [])

    def test_rejects_duplicate_nodes(self):
        with pytest.raises(ValueError):
            LabeledGraph(["a", "a"], [])

    def test_rejects_self_loops(self):
        with pytest.raises(ValueError):
            LabeledGraph(["a", "b"], [("a", "a"), ("a", "b")])

    def test_rejects_disconnected_graphs(self):
        with pytest.raises(ValueError):
            LabeledGraph(["a", "b", "c"], [("a", "b")])

    def test_rejects_unknown_edge_endpoints(self):
        with pytest.raises(ValueError):
            LabeledGraph(["a", "b"], [("a", "c")])

    def test_rejects_non_bitstring_labels(self):
        with pytest.raises(ValueError):
            LabeledGraph(["a"], [], {"a": "abc"})

    def test_missing_labels_default_to_empty(self):
        graph = LabeledGraph(["a", "b"], [("a", "b")], {"a": "101"})
        assert graph.label("a") == "101"
        assert graph.label("b") == ""

    def test_single_node_graph_is_allowed(self):
        graph = generators.single_node("0110")
        assert graph.cardinality() == 1
        assert graph.is_single_node()


class TestAccessors:
    def test_degree_and_neighbors(self, path4):
        nodes = list(path4.nodes)
        assert path4.degree(nodes[0]) == 1
        assert path4.degree(nodes[1]) == 2
        assert path4.neighbors(nodes[0]) == frozenset({nodes[1]})

    def test_structural_degree_adds_label_length(self):
        graph = generators.path_graph(3, labels=["111", "", "1"])
        nodes = list(graph.nodes)
        assert graph.structural_degree(nodes[0]) == 1 + 3
        assert graph.structural_degree(nodes[1]) == 2

    def test_has_edge_is_symmetric(self, square):
        nodes = list(square.nodes)
        assert square.has_edge(nodes[0], nodes[1])
        assert square.has_edge(nodes[1], nodes[0])
        assert not square.has_edge(nodes[0], nodes[2])

    def test_cardinality_and_len(self, five_cycle):
        assert five_cycle.cardinality() == 5
        assert len(five_cycle) == 5

    def test_edge_pairs_cover_all_edges(self, k4):
        assert len(list(k4.edge_pairs())) == 6


class TestDistances:
    def test_distances_on_a_path(self, path4):
        nodes = list(path4.nodes)
        distances = path4.distances_from(nodes[0])
        assert distances == {nodes[0]: 0, nodes[1]: 1, nodes[2]: 2, nodes[3]: 3}

    def test_diameter_of_cycle(self):
        assert generators.cycle_graph(6).diameter() == 3
        assert generators.cycle_graph(7).diameter() == 3

    def test_ball_growth(self, five_cycle):
        center = list(five_cycle.nodes)[0]
        assert len(five_cycle.ball(center, 0)) == 1
        assert len(five_cycle.ball(center, 1)) == 3
        assert len(five_cycle.ball(center, 2)) == 5

    def test_neighborhood_is_induced_subgraph(self):
        graph = generators.star_graph(4)
        sub = graph.neighborhood("center", 1)
        assert sub.cardinality() == 5
        leaf_view = graph.neighborhood("leaf0", 1)
        assert leaf_view.cardinality() == 2


class TestTransformations:
    def test_relabel_replaces_only_given_nodes(self, path4):
        nodes = list(path4.nodes)
        relabeled = path4.relabel({nodes[0]: "1"})
        assert relabeled.label(nodes[0]) == "1"
        assert relabeled.label(nodes[1]) == ""
        assert path4.label(nodes[0]) == ""  # original unchanged

    def test_with_uniform_label(self, triangle):
        labeled = triangle.with_uniform_label("1")
        assert all(labeled.label(u) == "1" for u in labeled.nodes)

    def test_networkx_round_trip(self, five_cycle):
        graph = five_cycle.with_uniform_label("01")
        back = LabeledGraph.from_networkx(graph.to_networkx())
        assert back == graph

    def test_induced_subgraph_keeps_labels(self):
        graph = generators.path_graph(4, labels=["1", "0", "1", "0"])
        nodes = list(graph.nodes)
        sub = graph.induced_subgraph(nodes[:2])
        assert sub.cardinality() == 2
        assert sub.label(nodes[0]) == "1"


class TestEqualityAndIsomorphism:
    def test_equality_ignores_node_order(self):
        a = LabeledGraph(["x", "y"], [("x", "y")], {"x": "1"})
        b = LabeledGraph(["y", "x"], [("y", "x")], {"x": "1"})
        assert a == b
        assert hash(a) == hash(b)

    def test_isomorphism_respects_labels(self):
        a = generators.path_graph(3, labels=["1", "0", "1"])
        b = generators.path_graph(3, labels=["1", "1", "0"])
        c = generators.path_graph(3, labels=["1", "0", "1"])
        assert a.is_isomorphic_to(c)
        assert not a.is_isomorphic_to(b)


@settings(max_examples=25, deadline=None)
@given(size=st.integers(min_value=1, max_value=9), seed=st.integers(min_value=0, max_value=50))
def test_random_trees_have_tree_edge_count(size, seed):
    graph = generators.random_tree(size, seed=seed)
    assert len(graph.edges) == size - 1


@settings(max_examples=25, deadline=None)
@given(size=st.integers(min_value=2, max_value=8), seed=st.integers(min_value=0, max_value=50))
def test_distance_is_symmetric(size, seed):
    graph = generators.random_connected_graph(size, seed=seed)
    nodes = list(graph.nodes)
    u, v = nodes[0], nodes[-1]
    assert graph.distance(u, v) == graph.distance(v, u)


@settings(max_examples=25, deadline=None)
@given(size=st.integers(min_value=2, max_value=8), radius=st.integers(min_value=0, max_value=4))
def test_balls_are_monotone_in_radius(size, radius):
    graph = generators.random_connected_graph(size, seed=size)
    center = list(graph.nodes)[0]
    assert graph.ball(center, radius) <= graph.ball(center, radius + 1)
