"""End-to-end daemon tests: concurrency, correctness, backpressure, speedup."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.graphs import generators
from repro.hierarchy.game import eve_wins
from repro.machines.local_algorithm import NeighborhoodGatherAlgorithm
from repro.service.client import ServiceClient, ServiceError, format_address, parse_address
from repro.service.loadgen import run_load, scenario_payloads
from repro.service.server import ServerThread, ServiceConfig
from repro.sweep.executor import evaluate_timed
from repro.sweep.scenarios import build_instances, instances_for_spec, register_scenario
from repro.sweep.store import MemoryVerdictStore

#: The Figure-2 workload the acceptance criteria are phrased over.
FIG2_SCENARIO = "separations"


@pytest.fixture(scope="module")
def fig2_server():
    """One daemon over a shared in-memory store, used by the module's tests."""
    with ServerThread(store=MemoryVerdictStore()) as server:
        yield server


class TestAddresses:
    def test_parse_and_format(self):
        assert parse_address("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")
        assert parse_address("10.0.0.1:81") == ("tcp", "10.0.0.1", 81)
        assert parse_address(":81") == ("tcp", "127.0.0.1", 81)
        assert format_address(("unix", "/a")) == "unix:/a"
        assert format_address(("tcp", "h", 9)) == "h:9"
        with pytest.raises(ValueError):
            parse_address("unix:")
        with pytest.raises(ValueError):
            parse_address("no-port")


class TestEndToEnd:
    def test_concurrent_clients_match_oracle(self, fig2_server):
        """>= 8 concurrent clients; every answer identical and engine-correct."""
        instances = build_instances(FIG2_SCENARIO)
        expected, _ = evaluate_timed(instances)
        client_count = 8
        answers = [None] * client_count
        errors = []

        def worker(slot: int) -> None:
            try:
                with ServiceClient(fig2_server.address) as client:
                    rows = []
                    for index in range(len(instances)):
                        response = client.query_scenario(FIG2_SCENARIO, index=index)
                        rows.append(
                            (response["verdict"], response["winner"], response["key"],
                             response["name"])
                        )
                    answers[slot] = rows
            except Exception as error:  # noqa: BLE001 -- surfaced by the assert
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(slot,)) for slot in range(client_count)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert all(rows is not None for rows in answers)
        # Byte-identical across clients: every client saw the same rows.
        reference = answers[0]
        assert all(rows == reference for rows in answers[1:])
        # And the rows carry the engine's verdicts.
        assert [row[0] for row in reference] == expected

    def test_small_instances_match_exhaustive_oracle(self, fig2_server):
        """Cross-check the daemon against the reference solver where affordable."""
        instances = build_instances(FIG2_SCENARIO)
        checked = 0
        with ServiceClient(fig2_server.address) as client:
            for index, instance in enumerate(instances):
                if len(instance.graph.nodes) > 6:
                    continue
                response = client.query_scenario(FIG2_SCENARIO, index=index)
                oracle = eve_wins(
                    instance.machine,
                    instance.graph,
                    instance.ids,
                    list(instance.spaces),
                    list(instance.prefix),
                )
                assert response["verdict"] == oracle, instance.name
                checked += 1
        assert checked >= 3

    def test_warm_queries_hit_the_lru(self, fig2_server):
        with ServiceClient(fig2_server.address) as client:
            first = client.query_scenario(FIG2_SCENARIO, index=0)
            second = client.query_scenario(FIG2_SCENARIO, index=0)
        assert second["source"] == "lru"
        assert second["verdict"] == first["verdict"]

    def test_store_tier_survives_lru_restart(self):
        store = MemoryVerdictStore()
        with ServerThread(store=store) as first:
            with ServiceClient(first.address) as client:
                cold = client.query_scenario("smoke", index=0)
        assert cold["source"] in ("compute", "coalesced")
        assert len(store) >= 1
        # A fresh daemon (empty LRU) over the same store answers from tier 2.
        with ServerThread(store=store) as second:
            with ServiceClient(second.address) as client:
                warm = client.query_scenario("smoke", index=0)
        assert warm["source"] == "store"
        assert warm["verdict"] == cold["verdict"]

    def test_first_scenario_store_miss_promotes_all_siblings(self):
        """A scenario's first store lookup bulk-promotes every sibling key.

        The daemon routes the multi-key read through the store's
        ``get_many``: after one store-sourced answer, the scenario's other
        stored verdicts are already tier-1 hits, without ever having been
        queried individually.
        """
        store = MemoryVerdictStore()
        from repro.sweep.executor import run_instances

        run_instances(build_instances("smoke"), store=store, scenario_name="smoke")
        with ServerThread(store=store) as server:
            with ServiceClient(server.address) as client:
                first = client.query_scenario("smoke", index=0)
                siblings = [
                    client.query_scenario("smoke", index=i) for i in range(1, 4)
                ]
        assert first["source"] == "store"
        assert all(sibling["source"] == "lru" for sibling in siblings)

    def test_inline_spec_and_scenario_key_agree(self, fig2_server):
        """The same game addressed both ways maps to one store key."""
        with ServiceClient(fig2_server.address) as client:
            inline = client.query_spec(
                arbiter="3-colorable", family="cycle", n=4, scheme="small"
            )
            named = client.query_scenario("smoke", instance="3-colorable|cycle4|small")
        assert inline["key"] == named["key"]
        assert inline["verdict"] == named["verdict"]

    def test_malformed_line_keeps_connection_alive(self, fig2_server):
        with ServiceClient(fig2_server.address) as client:
            client._sock.sendall(b"this is not json\n")
            answer = json.loads(client._reader.readline())
            assert answer["ok"] is False
            assert answer["error"]["code"] == "bad-json"
            # The connection survives and still answers real queries.
            assert client.ping()

    def test_oversized_inline_spec_is_rejected_before_building(self, fig2_server):
        # complete(200000) would materialize ~2e10 edges; the size bound
        # must fire on the raw parameters, so this answers instantly.
        started = time.perf_counter()
        with ServiceClient(fig2_server.address) as client:
            response = client.query_spec(
                check=False, arbiter="3-colorable", family="complete", n=200_000
            )
            grid = client.query_spec(
                check=False, arbiter="eulerian", family="grid", rows=10_000, cols=10_000
            )
        assert time.perf_counter() - started < 5.0
        assert response["error"]["code"] == "bad-spec"
        assert grid["error"]["code"] == "bad-spec"

    def test_failing_store_does_not_hang_queries(self):
        class BrokenPutStore(MemoryVerdictStore):
            def put_many(self, records):
                raise OSError("disk full")

        with ServerThread(store=BrokenPutStore()) as server:
            with ServiceClient(server.address) as client:
                first = client.query_scenario("smoke", index=0)
                second = client.query_scenario("smoke", index=0)
                stats = client.stats()
        assert first["ok"] and second["ok"]
        assert second["source"] == "lru"  # tier 1 still works
        assert stats["tiers"]["store"]["async_put_failures"] >= 1

    def test_unknown_scenario_and_instance_errors(self, fig2_server):
        with ServiceClient(fig2_server.address) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.query_scenario("no-such-scenario", index=0)
            assert excinfo.value.code == "unknown-scenario"
            response = client.query_scenario(FIG2_SCENARIO, index=10_000, check=False)
            assert response["error"]["code"] == "unknown-instance"

    def test_stats_expose_engine_telemetry(self, fig2_server):
        with ServiceClient(fig2_server.address) as client:
            client.query_scenario(FIG2_SCENARIO, index=1)
            stats = client.stats()
        tiers = stats["tiers"]
        assert tiers["lru"]["maxsize"] == 4096
        compute = tiers["compute"]
        assert compute["computed"] >= 1
        # The compiled core's memo_info / transposition_info counters,
        # aggregated over live engines (the operator-facing telemetry).
        for cache_info in (compute["memo"], compute["transposition"]):
            for field in ("size", "hits", "misses", "evictions", "caches"):
                assert isinstance(cache_info[field], int)
        assert compute["compiled_instances"] >= 1
        assert stats["requests"]["query"] >= 1


def _register_slow_scenario(name: str, count: int, delay: float) -> None:
    """A scenario of *count* independent slow instances (distinct graphs)."""

    def build():
        from repro.hierarchy.arbiters import lp_decider_spec

        def sleepy(view):
            time.sleep(delay)
            return "1"

        spec = lp_decider_spec("sleepy", NeighborhoodGatherAlgorithm(1, sleepy))
        graphs = [(f"path{n}", generators.path_graph(n)) for n in range(3, 3 + count)]
        return instances_for_spec(spec, graphs)

    register_scenario(name, "slow instances for backpressure tests", tags=("test",))(build)


class TestCoalescingOverSockets:
    def test_concurrent_same_query_computes_once(self):
        _register_slow_scenario("service-test-dedup", 1, delay=0.05)
        config = ServiceConfig(window_seconds=0.005)
        with ServerThread(store=None, config=config) as server:
            sources = []
            lock = threading.Lock()

            def worker():
                with ServiceClient(server.address) as client:
                    response = client.query_scenario("service-test-dedup", index=0)
                    with lock:
                        sources.append(response["source"])

            threads = [threading.Thread(target=worker) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert len(sources) == 6
            service = server.service
            # One compute; everyone else coalesced onto it (or read the LRU
            # if they arrived after it finished).
            assert service.compute.computed == 1
            assert sources.count("compute") == 1
            assert all(source in ("compute", "coalesced", "lru") for source in sources)

    def test_batching_window_groups_compatible_queries(self):
        # Sigma and Pi games on ONE (machine, graph, ids) instance are
        # compatible: they share an evaluator group, so a single batch must
        # carry both when they land inside one window.
        config = ServiceConfig(window_seconds=0.05)
        with ServerThread(store=None, config=config) as server:
            results = []
            lock = threading.Lock()

            def worker(prefix):
                with ServiceClient(server.address) as client:
                    response = client.query_spec(
                        arbiter="2-colorable",
                        family="cycle",
                        n=6,
                        scheme="sequential",
                        prefix=prefix,
                    )
                    with lock:
                        results.append(response)

            threads = [threading.Thread(target=worker, args=(p,)) for p in ("E", "A")]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert len(results) == 2
            service = server.service
            assert service.coalescer.stats()["largest_batch"] == 2
            assert service.compute.batches == 1
        by_prefix = {r["name"]: r["verdict"] for r in results}
        assert len(by_prefix) == 2


class TestBackpressure:
    def test_overload_is_explicit_and_bounded(self):
        _register_slow_scenario("service-test-slow", 12, delay=0.1)
        config = ServiceConfig(max_pending=2, window_seconds=0.0)
        with ServerThread(store=None, config=config) as server:
            outcomes = []
            lock = threading.Lock()

            def worker(index):
                with ServiceClient(server.address) as client:
                    response = client.query_scenario(
                        "service-test-slow", index=index, check=False
                    )
                    with lock:
                        outcomes.append(response)

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(10)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)

            assert len(outcomes) == 10
            ok = [r for r in outcomes if r.get("ok")]
            rejected = [r for r in outcomes if not r.get("ok")]
            # Under 10 concurrent slow queries with max_pending=2 some must
            # be rejected, every rejection is the explicit overload signal,
            # and admission never exceeded the bound.
            assert ok and rejected
            assert all(r["error"]["code"] == "overloaded" for r in rejected)
            service = server.service
            assert service.peak_pending <= 2
            assert service.overloaded_count == len(rejected)
            # Ping/stats stay admitted during overload.
            with ServiceClient(server.address) as client:
                assert client.ping()
                assert client.stats()["max_pending"] == 2


class TestWarmThroughputSpeedup:
    def test_warm_service_is_10x_faster_than_cold_compute(self):
        """Acceptance: warm loadgen sustains >= 10x cold single-query compute
        on the Figure-2 workload."""
        # Cold single-query baseline: fresh machines, graphs and engines per
        # run (build_instances constructs new objects, so nothing is shared
        # with the daemon or earlier tests).
        cold_instances = build_instances(FIG2_SCENARIO)
        started = time.perf_counter()
        evaluate_timed(cold_instances)
        cold_seconds = time.perf_counter() - started
        cold_qps = len(cold_instances) / cold_seconds

        store = MemoryVerdictStore()
        with ServerThread(store=store) as server:
            payloads = scenario_payloads(FIG2_SCENARIO)
            # Warm the store and LRU once, then measure closed-loop.
            run_load(server.address, payloads, clients=1, label="warmup")
            report = run_load(
                server.address,
                payloads,
                clients=4,
                total=max(200, 4 * len(payloads)),
                label="hot-cache",
            )
        assert report.errors == 0 and report.overloaded == 0
        assert report.cache_hit_rate == 1.0
        assert report.qps >= 10 * cold_qps, (
            f"warm service at {report.qps:.0f} qps is below 10x the cold "
            f"single-query rate of {cold_qps:.1f} qps"
        )


class TestDynamicSessions:
    """The mutations stream end to end: open, mutate, query, and fail typed."""

    INSTANCE = "2-colorable|cycle6|sequential"
    SESSION_SCENARIO = FIG2_SCENARIO

    def _open(self, client, session):
        return client.mutate(
            session, scenario=self.SESSION_SCENARIO, instance=self.INSTANCE
        )

    def test_mutate_query_flip_and_revert(self):
        """A chord flips the verdict; reverting re-hits the original LRU
        entry -- the content-addressed key makes stale answers impossible."""
        with ServerThread(store=MemoryVerdictStore()) as server:
            with ServiceClient(server.address) as client:
                opened = self._open(client, "workbench")
                assert opened["opened"] is True and opened["applied"] == 0

                first = client.query_session("workbench")
                assert first["verdict"] is True  # even cycle: 2-colorable
                base_key = first["key"]

                chord = {"kind": "edge-insert", "u": 0, "v": 2}
                response = client.mutate("workbench", deltas=[chord])
                assert response["opened"] is False
                assert response["applied"] == 1 and response["dirty"] > 0

                mutated = client.query_session("workbench")
                assert mutated["verdict"] is False  # the chord closes a triangle
                assert mutated["key"] != base_key
                assert mutated["source"] == "dynamic"

                client.mutate(
                    "workbench", deltas=[{"kind": "edge-delete", "u": 0, "v": 2}]
                )
                reverted = client.query_session("workbench")
                assert reverted["verdict"] is True
                assert reverted["key"] == base_key
                # The reverted state legitimately re-hits its old cache entry.
                assert reverted["source"] in ("lru", "store")

    def test_unknown_session_and_reopen_are_typed_errors(self):
        with ServerThread(store=None) as server:
            with ServiceClient(server.address) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.query_session("ghost")
                assert excinfo.value.code == "unknown-session"

                with pytest.raises(ServiceError) as excinfo:
                    client.mutate("ghost", deltas=[])  # no opening address
                assert excinfo.value.code == "unknown-session"

                self._open(client, "w")
                with pytest.raises(ServiceError) as excinfo:
                    self._open(client, "w")  # re-addressing an open session
                assert excinfo.value.code == "bad-request"

    def test_bad_delta_batches_are_atomic(self):
        """A failing batch is rolled back wholesale: the later query sees
        the pre-batch state and the failure is the typed bad-delta error."""
        with ServerThread(store=None) as server:
            with ServiceClient(server.address) as client:
                self._open(client, "w")
                before = client.query_session("w")
                with pytest.raises(ServiceError) as excinfo:
                    client.mutate(
                        "w",
                        deltas=[
                            {"kind": "set-label", "node": 1, "label": "1"},  # valid
                            {"kind": "edge-insert", "u": 0, "v": 1},  # duplicate
                        ],
                    )
                assert excinfo.value.code == "bad-delta"
                after = client.query_session("w")
                assert after["key"] == before["key"]  # label flip rolled back
                session = server.service.sessions["w"]
                assert session.deltas_applied == 0

    def test_semantically_bad_deltas_are_typed(self):
        with ServerThread(store=None) as server:
            with ServiceClient(server.address) as client:
                self._open(client, "w")
                for delta in (
                    {"kind": "edge-insert", "u": 0, "v": 99},  # out of range
                    {"kind": "edge-insert", "u": 0, "v": 1},  # duplicate edge
                    {"kind": "edge-delete", "u": 0, "v": 3},  # missing edge
                    {"kind": "set-label", "node": 0, "label": "2x"},  # not bits
                ):
                    with pytest.raises(ServiceError) as excinfo:
                        client.mutate("w", deltas=[delta])
                    assert excinfo.value.code == "bad-delta", delta

    def test_session_limit(self):
        config = ServiceConfig(max_sessions=1)
        with ServerThread(store=None, config=config) as server:
            with ServiceClient(server.address) as client:
                self._open(client, "first")
                with pytest.raises(ServiceError) as excinfo:
                    self._open(client, "second")
                assert excinfo.value.code == "session-limit"

    def test_concurrent_mutates_and_queries_serialize(self):
        """Racing mutates and queries on one session never corrupt it: every
        response is well-formed and the final state verifies differentially."""
        with ServerThread(store=None) as server:
            with ServiceClient(server.address) as opener:
                self._open(opener, "race")
                assert opener.query_session("race")["verdict"] is True
            errors = []

            def mutator():
                try:
                    with ServiceClient(server.address) as client:
                        for _ in range(6):
                            client.mutate(
                                "race",
                                deltas=[{"kind": "set-label", "node": 1, "label": "1"}],
                            )
                            client.mutate(
                                "race",
                                deltas=[{"kind": "set-label", "node": 1, "label": ""}],
                            )
                except Exception as error:  # noqa: BLE001 -- surfaced below
                    errors.append(error)

            def querier():
                try:
                    with ServiceClient(server.address) as client:
                        for _ in range(12):
                            response = client.query_session("race")
                            # Labels never affect 2-colorability.
                            assert response["verdict"] is True
                except Exception as error:  # noqa: BLE001 -- surfaced below
                    errors.append(error)

            threads = [threading.Thread(target=mutator) for _ in range(2)]
            threads += [threading.Thread(target=querier) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors

            session = server.service.sessions["race"]
            mutable = session.mutable
            from repro.engine.dynamic import recompute_verdict

            assert mutable.verdict() == recompute_verdict(mutable.as_game_instance())
            assert session.deltas_applied == 24

    def test_dynamic_stats(self):
        with ServerThread(store=None) as server:
            with ServiceClient(server.address) as client:
                self._open(client, "s1")
                client.mutate(
                    "s1", deltas=[{"kind": "set-label", "node": 0, "label": "1"}]
                )
                client.query_session("s1")
                stats = client.stats()
            dynamic = stats["dynamic"]
            assert dynamic["sessions"] == 1
            assert dynamic["opened"] == 1
            info = dynamic["by_session"]["s1"]
            assert info["mutations"] == 1
            assert info["queries"] == 1
            assert stats["requests"]["mutate"] == 2
