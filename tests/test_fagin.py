"""Tests for the Fagin compiler and the Cook-Levin construction (Sections 7 and 8)."""

import pytest

from repro.fagin import compile_sentence, cook_levin_boolean_graph, cook_levin_reduction_check
from repro.fagin.compiler import bounded_quantifier_depth, quantifier_blocks
from repro.fagin.encoding import (
    decode_relation_content,
    encode_relation_content,
    safe_decode_relation_content,
)
from repro.graphs import generators
from repro.graphs.identifiers import sequential_identifier_assignment
from repro.logic import examples
from repro.logic.syntax import (
    BoundedExists,
    Equal,
    Forall,
    LocalExists,
    RelationVariable,
    SOExists,
    UnaryAtom,
)
import repro.properties as props


class TestCertificateEncoding:
    def test_round_trip(self):
        content = {
            "C0": frozenset({(("01", None),), (("01", 2),)}),
            "P": frozenset({(("01", None), ("10", None))}),
        }
        bits = encode_relation_content(content)
        assert decode_relation_content(bits) == content

    def test_empty_content(self):
        assert decode_relation_content(encode_relation_content({})) == {}

    def test_safe_decode_on_garbage(self):
        assert safe_decode_relation_content("10101") == {}


class TestStaticAnalysis:
    def test_bounded_quantifier_depth(self):
        phi = BoundedExists("y", "x", BoundedExists("z", "y", Equal("z", "y")))
        assert bounded_quantifier_depth(phi) == 2
        assert bounded_quantifier_depth(LocalExists("y", "x", 3, Equal("y", "x"))) == 3
        assert bounded_quantifier_depth(UnaryAtom(1, "x")) == 0

    def test_quantifier_blocks(self):
        X = RelationVariable("X", 1)
        Y = RelationVariable("Y", 1)
        matrix = Forall("x", UnaryAtom(1, "x"))
        blocks, inner = quantifier_blocks(SOExists(X, SOExists(Y, matrix)))
        assert [(kind, [r.name for r in rels]) for kind, rels in blocks] == [("E", ["X", "Y"])]
        assert inner == matrix


class TestCompiledArbiters:
    def test_all_selected_compiles_to_lp_decider(self):
        spec = compile_sentence(examples.all_selected_formula()).spec("all-selected")
        assert spec.class_name() == "LP"
        assert spec.decide(generators.path_graph(3, labels=["1", "1", "1"]))
        assert not spec.decide(generators.path_graph(3, labels=["1", "0", "1"]))

    def test_three_colorable_compiles_to_nlp_verifier(self):
        compiled = compile_sentence(examples.three_colorable_formula())
        assert [kind for kind, _ in compiled.blocks] == ["E"]
        spec = compiled.spec("3-colorable")
        assert spec.class_name() == "NLP"
        assert spec.decide(generators.cycle_graph(3))

    def test_compiled_game_rejects_non_three_colorable(self):
        spec = compile_sentence(examples.three_colorable_formula()).spec("3-colorable")
        assert not spec.decide(generators.complete_graph(4))

    def test_compiled_game_matches_ground_truth_on_paths(self):
        spec = compile_sentence(examples.three_colorable_formula()).spec("3-colorable")
        graph = generators.path_graph(3)
        assert spec.decide(graph) == props.three_colorable(graph)

    def test_rejects_non_lfo_matrix(self):
        from repro.logic.syntax import Exists

        X = RelationVariable("X", 1)
        bad = SOExists(X, Exists("x", UnaryAtom(1, "x")))
        with pytest.raises(ValueError):
            compile_sentence(bad)

    def test_certificate_space_blowup_is_reported(self):
        # Binary relation variables on labeled graphs exceed the candidate cap.
        compiled = compile_sentence(examples.hamiltonian_formula(), candidate_limit=4)
        graph = generators.cycle_graph(4, labels=["1"] * 4)
        ids = sequential_identifier_assignment(graph)
        with pytest.raises(ValueError):
            compiled.spaces[0].node_candidates(graph, ids, list(graph.nodes)[0])


class TestCookLevin:
    def test_three_colorability_equivalence(self):
        graphs = [
            generators.cycle_graph(3),
            generators.complete_graph(4),
            generators.path_graph(3),
            generators.cycle_graph(5),
        ]
        failures = cook_levin_reduction_check(
            examples.three_colorable_formula(), graphs, props.three_colorable
        )
        assert failures == []

    def test_all_selected_equivalence(self):
        graphs = [
            generators.path_graph(3, labels=["1", "1", "1"]),
            generators.path_graph(3, labels=["1", "0", "1"]),
            generators.single_node("1"),
            generators.single_node("0"),
        ]
        failures = cook_levin_reduction_check(
            examples.all_selected_formula(), graphs, props.all_selected
        )
        assert failures == []

    def test_output_is_boolean_graph_with_same_topology(self):
        graph = generators.cycle_graph(4)
        boolean_graph = cook_levin_boolean_graph(examples.three_colorable_formula(), graph)
        assert boolean_graph.cardinality() == graph.cardinality()
        assert len(boolean_graph.edges) == len(graph.edges)
        from repro.boolsat.boolean_graph import decode_boolean_graph

        decode_boolean_graph(boolean_graph)  # must not raise

    def test_rejects_non_sigma1_sentences(self):
        with pytest.raises(ValueError):
            cook_levin_boolean_graph(
                examples.non_three_colorable_formula(), generators.cycle_graph(3)
            )

    def test_single_node_case_recovers_classical_cook_levin(self):
        # On single-node graphs the construction specializes to NP's Cook-Levin:
        # a string satisfies the property iff the produced formula is satisfiable.
        yes = generators.single_node("1")
        no = generators.single_node("0")
        formula = examples.all_selected_formula()
        assert props.sat_graph(cook_levin_boolean_graph(formula, yes))
        assert not props.sat_graph(cook_levin_boolean_graph(formula, no))
