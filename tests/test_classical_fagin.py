"""Tests for classical Turing machines and the space-time encoding of Theorem 12."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fagin.space_time import (
    diagram_relations,
    fagin_theorem_check,
    index_tuple,
    tuple_degree,
    verify_acceptance,
    verify_ground_rules,
    verify_initial_configuration,
    verify_transitions,
    verify_witness,
)
from repro.graphs.generators import string_graph
from repro.graphs.structures import structural_representation
from repro.machines.classical import (
    ClassicalTuringMachine,
    all_ones_machine,
    contains_zero_machine,
    even_length_machine,
)

words = st.text(alphabet="01", min_size=1, max_size=10)


# ----------------------------------------------------------------------
# Classical machines
# ----------------------------------------------------------------------
class TestClassicalMachines:
    @given(words)
    def test_all_ones_machine(self, word):
        assert all_ones_machine().accepts(word) == (set(word) == {"1"})

    @given(words)
    def test_even_length_machine(self, word):
        assert even_length_machine().accepts(word) == (len(word) % 2 == 0)

    @given(words)
    def test_contains_zero_machine(self, word):
        assert contains_zero_machine().accepts(word) == ("0" in word)

    @given(words)
    def test_machines_run_in_linear_time(self, word):
        for machine in (all_ones_machine(), even_length_machine(), contains_zero_machine()):
            run = machine.run(word)
            assert run.steps <= len(word) + 3
            assert run.space <= len(word) + 3

    def test_runs_in_polynomial_time_helper(self):
        machine = all_ones_machine()
        assert machine.runs_in_polynomial_time(["1", "11", "1111", "10101"])

    def test_diagram_shape(self):
        run = all_ones_machine().run("111")
        assert run.diagram.steps == run.steps
        assert len(run.diagram.rows) == run.steps + 1
        assert all(len(row) == run.diagram.width for row in run.diagram.rows)

    def test_invalid_input_rejected(self):
        with pytest.raises(ValueError):
            all_ones_machine().run("10a")

    def test_missing_transition_rejects(self):
        machine = ClassicalTuringMachine(
            states=["start", "accept", "reject"],
            transitions={("start", ">"): ("start", ">", 1)},
        )
        assert not machine.accepts("1")

    def test_left_end_marker_protected(self):
        with pytest.raises(ValueError):
            ClassicalTuringMachine(
                states=["start", "accept", "reject"],
                transitions={("start", ">"): ("accept", "0", 0)},
            )

    def test_nonhalting_machine_raises(self):
        machine = ClassicalTuringMachine(
            states=["start", "loop", "accept", "reject"],
            transitions={
                ("start", ">"): ("loop", ">", 0),
                ("loop", ">"): ("loop", ">", 0),
            },
        )
        with pytest.raises(RuntimeError):
            machine.run("1", max_steps=50)


# ----------------------------------------------------------------------
# Tuple addressing
# ----------------------------------------------------------------------
class TestTupleAddressing:
    def test_tuple_degree(self):
        structure = structural_representation(string_graph("111"))  # 4 elements
        assert tuple_degree(structure, 4) == 1
        assert tuple_degree(structure, 5) == 2
        assert tuple_degree(structure, 16) == 2
        assert tuple_degree(structure, 17) == 3

    def test_tuple_degree_single_element(self):
        structure = structural_representation(string_graph("1")).restriction(
            [structural_representation(string_graph("1")).domain[0]]
        )
        with pytest.raises(ValueError):
            tuple_degree(structure, 5)

    def test_index_tuples_are_distinct(self):
        structure = structural_representation(string_graph("11"))  # 3 elements
        order = structure.domain
        tuples = [index_tuple(i, order, 2) for i in range(9)]
        assert len(set(tuples)) == 9

    def test_index_tuple_out_of_range(self):
        structure = structural_representation(string_graph("1"))
        with pytest.raises(ValueError):
            index_tuple(5, structure.domain, 1)


# ----------------------------------------------------------------------
# The Fagin witness and its consistency conditions
# ----------------------------------------------------------------------
class TestFaginWitness:
    def test_accepting_run_yields_accepting_witness(self):
        machine = all_ones_machine()
        word = "111"
        structure = structural_representation(string_graph(word))
        witness = diagram_relations(machine.run(word), structure)
        checks = verify_witness(witness, machine, word)
        assert checks["all"], checks

    def test_rejecting_run_fails_only_acceptance(self):
        machine = all_ones_machine()
        word = "101"
        structure = structural_representation(string_graph(word))
        witness = diagram_relations(machine.run(word), structure)
        assert verify_ground_rules(witness, machine)
        assert verify_initial_configuration(witness, machine, word)
        assert verify_transitions(witness, machine)
        assert not verify_acceptance(witness, machine)

    def test_tampered_witness_is_caught(self):
        machine = all_ones_machine()
        word = "11"
        structure = structural_representation(string_graph(word))
        witness = diagram_relations(machine.run(word), structure)
        # Claim the machine was already accepting at time 0: the transition
        # conditions (and the initial-configuration state) must now fail.
        tampered_states = dict(witness.states)
        first_time = sorted(witness.states[machine.initial_state], key=str)[0]
        tampered_states[machine.initial_state] = frozenset()
        tampered_states[machine.accept_state] = witness.states.get(
            machine.accept_state, frozenset()
        ) | {first_time}
        from dataclasses import replace

        tampered = replace(witness, states=tampered_states)
        checks = verify_witness(tampered, machine, word)
        assert not checks["all"]

    @given(words)
    @settings(max_examples=30, deadline=None)
    def test_fagin_agreement_all_ones(self, word):
        report = fagin_theorem_check(all_ones_machine(), word)
        assert report["agreement"]
        assert report["accepted_by_machine"] == (set(word) == {"1"})

    @given(words)
    @settings(max_examples=30, deadline=None)
    def test_fagin_agreement_even_length(self, word):
        report = fagin_theorem_check(even_length_machine(), word)
        assert report["agreement"]

    @given(words)
    @settings(max_examples=30, deadline=None)
    def test_fagin_agreement_contains_zero(self, word):
        report = fagin_theorem_check(contains_zero_machine(), word)
        assert report["agreement"]

    def test_tuple_degree_reported(self):
        report = fagin_theorem_check(all_ones_machine(), "1111")
        assert report["tuple_degree"] >= 1
        assert report["structure_cardinality"] == 5

    def test_empty_word_is_a_special_case(self):
        with pytest.raises(ValueError):
            fagin_theorem_check(all_ones_machine(), "")
