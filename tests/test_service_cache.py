"""The tiered read path (LRU -> store -> compute) and engine telemetry."""

from __future__ import annotations

from repro.graphs import generators
from repro.graphs.identifiers import sequential_identifier_assignment
from repro.engine.batch import GameInstance
from repro.service.cache import ComputeTier, TieredVerdictCache
from repro.service.resolver import Resolver
from repro.service.protocol import QueryRequest
from repro.sweep.store import MemoryVerdictStore


def _instances(sizes=(4, 5, 6)):
    from repro.hierarchy.arbiters import two_colorability_spec

    spec = two_colorability_spec()
    instances = []
    for n in sizes:
        graph = generators.cycle_graph(n)
        instances.append(
            GameInstance(
                machine=spec.machine,
                graph=graph,
                ids=sequential_identifier_assignment(graph),
                spaces=list(spec.spaces),
                prefix=spec.prefix(),
                name=f"2col|cycle{n}",
            )
        )
    return spec, instances


class TestTieredVerdictCache:
    def test_full_miss_returns_none(self):
        cache = TieredVerdictCache(MemoryVerdictStore())
        assert cache.lookup("nope") is None
        stats = cache.stats()
        assert stats["lru"]["misses"] == 1
        assert stats["store"]["misses"] == 1

    def test_insert_then_lru_hit(self):
        cache = TieredVerdictCache(MemoryVerdictStore())
        cache.insert("k", True, name="x", seconds=0.1)
        assert cache.lookup("k") == (True, "lru")
        assert cache.stats()["lru"]["hits"] == 1

    def test_store_hit_is_promoted_into_lru(self):
        store = MemoryVerdictStore()
        first = TieredVerdictCache(store)
        first.insert("k", False)
        # A fresh process (new LRU) over the same shared store.
        second = TieredVerdictCache(store)
        assert second.lookup("k") == (False, "store")
        assert second.lookup("k") == (False, "lru")
        stats = second.stats()
        assert stats["store"]["hits"] == 1
        assert stats["lru"]["hits"] == 1

    def test_insert_without_persist_skips_store(self):
        store = MemoryVerdictStore()
        cache = TieredVerdictCache(store)
        cache.insert("k", True, persist=False)
        assert store.get("k") is None
        assert cache.lookup("k") == (True, "lru")

    def test_no_store_attached(self):
        cache = TieredVerdictCache(None)
        assert cache.lookup("k") is None
        cache.insert("k", True)
        assert cache.lookup("k") == (True, "lru")
        assert cache.stats()["store"]["attached"] is False


class TestComputeTier:
    def test_verdicts_match_spec_decisions(self):
        spec, instances = _instances()
        tier = ComputeTier()
        verdicts, seconds = tier.evaluate(instances)
        expected = [spec.decide(inst.graph, inst.ids) for inst in instances]
        assert verdicts == expected
        assert len(seconds) == len(instances)
        assert all(s >= 0 for s in seconds)

    def test_engines_persist_across_batches(self):
        _, instances = _instances((5, 6))
        tier = ComputeTier()
        tier.evaluate(instances)
        first = tier.engine_stats()
        # Re-answering the same instances must hit the cached engines'
        # transposition state instead of recompiling.
        tier.evaluate(instances)
        second = tier.engine_stats()
        assert second["compiled_instances"] == first["compiled_instances"]
        assert second["engines"] == first["engines"]
        assert second["transposition"]["hits"] > first["transposition"]["hits"]
        assert second["computed"] == first["computed"] + len(instances)

    def test_engine_stats_shape(self):
        _, instances = _instances((4,))
        tier = ComputeTier()
        tier.evaluate(instances)
        stats = tier.engine_stats()
        for field in ("batches", "computed", "seconds", "compiled_instances", "engines"):
            assert field in stats
        for cache_info in (stats["memo"], stats["transposition"]):
            for field in ("size", "hits", "misses", "evictions", "caches"):
                assert isinstance(cache_info[field], int)
        assert stats["memo"]["caches"] == stats["compiled_instances"]
        assert stats["stale"] is False

    def test_engine_stats_never_blocks_on_a_running_batch(self):
        # A stats request during a cold evaluation must return the last
        # snapshot immediately (marked stale) instead of waiting the batch out.
        _, instances = _instances((4,))
        tier = ComputeTier()
        tier.evaluate(instances)
        with tier._lock:  # a batch is "in flight"
            stats = tier.engine_stats()
        assert stats["stale"] is True
        assert stats["computed"] == len(instances)
        assert tier.engine_stats()["stale"] is False


class TestResolverIdentityStability:
    """Repeated resolutions must reuse objects, or the engine caches never hit."""

    def test_scenario_resolutions_share_instances(self):
        resolver = Resolver()
        first = resolver.resolve(QueryRequest(scenario="smoke", index=0))
        second = resolver.resolve(QueryRequest(scenario="smoke", index=0))
        assert first.instance is second.instance
        assert first.key == second.key

    def test_scenario_name_and_index_agree(self):
        resolver = Resolver()
        by_index = resolver.resolve(QueryRequest(scenario="smoke", index=0))
        by_name = resolver.resolve(
            QueryRequest(scenario="smoke", instance=by_index.instance.name)
        )
        assert by_name.instance is by_index.instance

    def test_inline_specs_are_memoized(self):
        resolver = Resolver()
        spec = {"arbiter": "2-colorable", "family": "cycle", "n": 6, "scheme": "sequential"}
        first = resolver.resolve(QueryRequest(spec=spec))
        second = resolver.resolve(QueryRequest(spec=dict(spec)))
        assert first is second

    def test_inline_key_matches_scenario_style_fingerprint(self):
        from repro.sweep.fingerprint import game_instance_key

        resolver = Resolver()
        resolved = resolver.resolve(
            QueryRequest(spec={"arbiter": "eulerian", "family": "cycle", "n": 6})
        )
        assert resolved.key == game_instance_key(resolved.instance)


class TestBulkStoreLookups:
    """Multi-key reads route through VerdictStore.get_many with promotion."""

    def test_lookup_store_many_promotes_all_hits(self):
        store = MemoryVerdictStore()
        store.put("a", True)
        store.put("b", False)
        cache = TieredVerdictCache(store)
        found = cache.lookup_store_many(["a", "b", "missing"])
        assert found == {"a": True, "b": False}
        stats = cache.stats()
        # Speculative bulk keys count as promotions, not hits or misses;
        # the caller notes the outcome of the one key it actually needed.
        assert stats["store"]["promotions"] == 2
        assert stats["store"]["hits"] == 0 and stats["store"]["misses"] == 0
        cache.note_store_hit()
        cache.note_store_miss()
        stats = cache.stats()
        assert stats["store"]["hits"] == 1 and stats["store"]["misses"] == 1
        # Both hits are now tier-1 answers.
        assert cache.lookup_lru("a") == (True, "lru")
        assert cache.lookup_lru("b") == (False, "lru")

    def test_lookup_store_many_without_store(self):
        cache = TieredVerdictCache(None)
        assert cache.lookup_store_many(["a", "b"]) == {}

    def test_resolver_scenario_keys_match_per_query_resolution(self):
        resolver = Resolver()
        keys = resolver.scenario_keys("smoke")
        assert keys  # one key per instance, in instance order
        for index in (0, len(keys) - 1):
            resolved = resolver.resolve(
                QueryRequest(id=1, scenario="smoke", index=index)
            )
            assert resolved.key == keys[index]

    def test_repeated_resolution_shares_objects_with_scenario_keys(self):
        resolver = Resolver()
        requests = [QueryRequest(id=i, scenario="smoke", index=i) for i in range(3)]
        resolved = [resolver.resolve(request) for request in requests]
        again = [resolver.resolve(request) for request in requests]
        assert [r.key for r in resolved] == [r.key for r in again]
        assert all(a.instance is b.instance for a, b in zip(resolved, again))
        keys = resolver.scenario_keys("smoke")
        assert [r.key for r in resolved] == keys[:3]


class TestCanonicalTier:
    def test_compute_tier_reports_canonical_stats(self):
        _, instances = _instances()
        tier = ComputeTier()
        tier.evaluate(instances)
        stats = tier.engine_stats()
        assert "canonical" in stats
        assert set(stats["canonical"]) >= {"entries", "hits", "misses", "hit_rate"}

    def test_compute_tier_flushes_node_verdicts_to_store(self):
        from repro.machines.local_algorithm import NeighborhoodGatherAlgorithm
        from repro.hierarchy.arbiters import two_colorability_spec

        class _Sim(NeighborhoodGatherAlgorithm):
            """Simulation-forced clone: the canonical-eligible path."""

        spec = two_colorability_spec()
        machine = _Sim(spec.machine.radius, spec.machine.compute, name="two-col-sim")
        graph = generators.cycle_graph(6)
        instance = GameInstance(
            machine=machine,
            graph=graph,
            ids=sequential_identifier_assignment(graph),
            spaces=list(spec.spaces),
            prefix=spec.prefix(),
            name="sim|cycle6",
        )
        store = MemoryVerdictStore()
        tier = ComputeTier(store=store)
        tier.evaluate([instance])
        assert store.node_count() > 0
        stats = tier.engine_stats()["canonical"]
        assert stats["entries"] > 0
