"""The sharded executor: equivalence, sharding policy, store incrementality.

The acceptance bar for the subsystem lives here:

* a registered multi-instance scenario run with ``jobs=4`` returns verdicts
  identical to the sequential executor (including on randomized scenarios),
* a warm re-run against the persistent store completes at least 5x faster
  than the cold run.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.engine.batch import GameInstance
from repro.graphs import generators
from repro.graphs.identifiers import (
    random_identifier_assignment,
    sequential_identifier_assignment,
)
from repro.hierarchy.arbiters import three_colorability_spec, two_colorability_spec
from repro.machines import builtin
from repro.sweep import (
    SQLiteVerdictStore,
    build_instances,
    evaluator_sharing_key,
    register_scenario,
    run_instances,
    run_scenario,
    shard_indices,
)
from repro.properties.coloring import three_colorable, two_colorable


def _random_instances(seed: int) -> list:
    """A deterministic-but-arbitrary mix of graphs, schemes and arbiters."""
    rng = random.Random(seed)
    three_col = three_colorability_spec()
    two_col = two_colorability_spec()
    instances = []
    for index in range(10):
        kind = rng.choice(["cycle", "tree", "regular", "grid"])
        if kind == "cycle":
            graph = generators.cycle_graph(rng.randrange(3, 9))
        elif kind == "tree":
            graph = generators.random_tree(rng.randrange(3, 9), seed=rng.randrange(100))
        elif kind == "regular":
            graph = generators.random_regular_graph(3, rng.choice([4, 6, 8]), seed=rng.randrange(10))
        else:
            graph = generators.grid_graph(2, rng.randrange(2, 4))
        spec = rng.choice([three_col, two_col])
        if rng.random() < 0.5:
            ids = sequential_identifier_assignment(graph)
        else:
            ids = random_identifier_assignment(graph, 1, rng=random.Random(rng.randrange(100)))
        instances.append(
            GameInstance(
                machine=spec.machine,
                graph=graph,
                ids=ids,
                spaces=list(spec.spaces),
                prefix=spec.prefix(),
                name=f"{spec.name}|{kind}|{index}",
            )
        )
    return instances


# Registered at import time so forked pool workers can rebuild them by name.
for _seed in (11, 23):
    register_scenario(f"test-random-{_seed}", "randomized equivalence scenario")(
        lambda seed=_seed: _random_instances(seed)
    )


class TestParallelSequentialEquivalence:
    @pytest.mark.parametrize("seed", [11, 23])
    def test_randomized_scenarios(self, seed):
        name = f"test-random-{seed}"
        sequential = run_scenario(name, jobs=0)
        parallel = run_scenario(name, jobs=4)
        assert sequential.verdicts == parallel.verdicts
        assert [r.name for r in sequential.results] == [r.name for r in parallel.results]

    def test_registered_scenario_jobs4_matches_sequential(self):
        sequential = run_scenario("coloring-cycles", jobs=1)
        parallel = run_scenario("coloring-cycles", jobs=4)
        assert len(sequential.results) > 10
        assert sequential.verdicts == parallel.verdicts

    def test_verdicts_match_ground_truth(self):
        result = run_scenario("test-random-11")
        for instance, verdict in zip(build_instances("test-random-11"), result.verdicts):
            if instance.name.startswith("3-colorable"):
                assert verdict == three_colorable(instance.graph), instance.name
            else:
                assert verdict == two_colorable(instance.graph), instance.name

    def test_mismatched_scenario_name_is_a_loud_error(self):
        """Workers rebuilding a *different* instance list must not be trusted."""
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("parallel path needs fork")
        instances = build_instances("smoke")
        with pytest.raises(RuntimeError, match="rebuilt differently|rebuilt with only"):
            # The claimed scenario exists but builds other instances.
            run_instances(instances, jobs=4, scenario="test-random-11")

    def test_parallel_smoke_runs_in_pool(self):
        result = run_scenario("smoke", jobs=2)
        # On fork-capable platforms this must actually exercise the pool;
        # elsewhere the deterministic fallback answers identically.
        import multiprocessing

        if "fork" in multiprocessing.get_all_start_methods():
            assert result.executed_parallel
        assert result.verdicts == run_scenario("smoke", jobs=0).verdicts


class TestSharding:
    def test_evaluator_groups_stay_together(self):
        instances = build_instances("coloring-cycles")
        shards = shard_indices(instances, 4)
        flat = sorted(index for shard in shards for index in shard)
        assert flat == list(range(len(instances)))
        shard_of = {index: s for s, shard in enumerate(shards) for index in shard}
        for i, first in enumerate(instances):
            for j in range(i + 1, len(instances)):
                if evaluator_sharing_key(first) == evaluator_sharing_key(instances[j]):
                    assert shard_of[i] == shard_of[j], (
                        "instances sharing an evaluator must share a shard"
                    )

    def test_spaces_do_not_split_an_evaluator_group(self):
        """Sigma/Pi games (or many spaces) on one instance shard together."""
        from repro.hierarchy.certificate_spaces import bit_space, color_space

        graph = generators.cycle_graph(6)
        ids = sequential_identifier_assignment(graph)
        machine = builtin.two_colorability_verifier()
        spaced = [
            GameInstance(machine=machine, graph=graph, ids=ids, spaces=[space], prefix=spec.prefix(), name=f"s{i}")
            for spec in [two_colorability_spec()]
            for i, space in enumerate([bit_space(), color_space(2), bit_space()])
        ]
        shards = shard_indices(spaced, 3)
        assert len(shards) == 1, "one evaluator group must stay on one shard"

    def test_sharding_is_deterministic(self):
        instances = build_instances("smoke")
        assert shard_indices(instances, 3) == shard_indices(instances, 3)

    def test_degenerate_shard_counts(self):
        instances = build_instances("smoke")
        assert shard_indices(instances, 1) == [list(range(len(instances)))]
        many = shard_indices(instances, 1000)
        assert sorted(i for s in many for i in s) == list(range(len(instances)))
        with pytest.raises(ValueError):
            shard_indices(instances, 0)


class TestPersistentStore:
    def test_warm_rerun_at_least_5x_faster(self, tmp_path):
        path = str(tmp_path / "verdicts.sqlite")
        start = time.perf_counter()
        cold = run_scenario("coloring-cycles", store=path)
        cold_seconds = time.perf_counter() - start
        assert cold.cached_count == 0

        start = time.perf_counter()
        warm = run_scenario("coloring-cycles", store=path)
        warm_seconds = time.perf_counter() - start
        assert warm.verdicts == cold.verdicts
        assert warm.cold_count == 0
        assert cold_seconds >= 5 * warm_seconds, (
            f"warm re-run must be >= 5x faster: cold {cold_seconds:.3f}s, "
            f"warm {warm_seconds:.3f}s"
        )

    def test_store_shared_between_parallel_and_sequential(self, tmp_path):
        path = str(tmp_path / "verdicts.sqlite")
        cold = run_scenario("smoke", jobs=4, store=path)
        assert cold.cold_count == len(cold.results)
        warm = run_scenario("smoke", jobs=0, store=path)
        assert warm.cold_count == 0
        assert warm.verdicts == cold.verdicts

    def test_changed_machine_invalidates(self, tmp_path):
        """A store warmed by one machine must not answer for a changed one."""
        graph = generators.cycle_graph(5)
        ids = sequential_identifier_assignment(graph)

        def instance_for(machine):
            return GameInstance(
                machine=machine, graph=graph, ids=ids, spaces=[], prefix=[], name="const"
            )

        path = str(tmp_path / "verdicts.sqlite")
        accept = run_instances([instance_for(builtin.constant_algorithm("1"))], store=path)
        assert accept.verdicts == [True] and accept.cold_count == 1
        reject = run_instances([instance_for(builtin.constant_algorithm("0"))], store=path)
        assert reject.cold_count == 1, "changed machine must be a cache miss"
        assert reject.verdicts == [False]
        # Unchanged machine: a hit, with the same verdict.
        again = run_instances([instance_for(builtin.constant_algorithm("1"))], store=path)
        assert again.cold_count == 0
        assert again.verdicts == [True]

    def test_store_object_reuse(self):
        with SQLiteVerdictStore(":memory:") as store:
            first = run_scenario("smoke", store=store)
            second = run_scenario("smoke", store=store)
            assert first.cold_count == len(first.results)
            assert second.cold_count == 0
            assert first.verdicts == second.verdicts
