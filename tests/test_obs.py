"""Telemetry-core semantics: instruments, registry, spans, ring buffers."""

import math
import threading

import pytest

from repro.obs.metrics import (
    Counter,
    EventLog,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import RequestTrace, TraceLog, active, current_trace, span


# ----------------------------------------------------------------------
# Counter / Gauge
# ----------------------------------------------------------------------
class TestCounter:
    def test_starts_at_zero_and_counts(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative_increments(self):
        counter = Counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_concurrent_increments_do_not_lose_updates(self):
        counter = Counter("c")
        threads = [
            threading.Thread(target=lambda: [counter.inc() for _ in range(2500)])
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8 * 2500


class TestGauge:
    def test_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(7)
        gauge.inc(3)
        gauge.dec(5)
        assert gauge.value == 5


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------
class TestHistogram:
    def test_exact_bound_lands_in_its_le_bucket(self):
        # Prometheus buckets are le-inclusive: an observation equal to a
        # bound belongs to that bound's bucket, not the next.
        histogram = Histogram("h", buckets=(1.0, 2.0, 4.0))
        histogram.observe(1.0)
        histogram.observe(1.5)
        histogram.observe(2.0)
        histogram.observe(9.0)
        cumulative = dict(histogram.cumulative_buckets())
        assert cumulative[1.0] == 1
        assert cumulative[2.0] == 3
        assert cumulative[4.0] == 3
        assert cumulative[math.inf] == 4

    def test_rejects_empty_and_duplicate_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))

    def test_tracks_exact_count_sum_min_max(self):
        histogram = Histogram("h", buckets=(10.0,))
        for value in (2.0, 4.0, 6.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(12.0)
        assert snap["min"] == pytest.approx(2.0)
        assert snap["max"] == pytest.approx(6.0)

    def test_percentiles_are_within_one_bucket_of_truth(self):
        histogram = Histogram("h", buckets=tuple(float(b) for b in range(10, 110, 10)))
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.percentile(0.50) == pytest.approx(50.0, abs=10.0)
        assert histogram.percentile(0.95) == pytest.approx(95.0, abs=10.0)
        # Clamped to the observed extremes, never past them.
        assert histogram.percentile(0.0) >= 1.0
        assert histogram.percentile(1.0) <= 100.0

    def test_empty_histogram_percentile_is_zero(self):
        histogram = Histogram("h", buckets=(1.0,))
        assert histogram.percentile(0.99) == 0.0

    def test_percentile_rejects_out_of_range_fraction(self):
        histogram = Histogram("h", buckets=(1.0,))
        with pytest.raises(ValueError):
            histogram.percentile(1.5)

    def test_concurrent_observations_do_not_lose_updates(self):
        histogram = Histogram("h", buckets=(0.5,))
        threads = [
            threading.Thread(target=lambda: [histogram.observe(1.0) for _ in range(2000)])
            for _ in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.count == 12000
        assert histogram.sum == pytest.approx(12000.0)

    def test_snapshot_renders_inf_as_string(self):
        histogram = Histogram("h", buckets=(1.0,))
        histogram.observe(5.0)
        assert histogram.snapshot()["buckets"][-1] == ["+Inf", 1]


# ----------------------------------------------------------------------
# EventLog
# ----------------------------------------------------------------------
class TestEventLog:
    def test_ring_buffer_evicts_oldest(self):
        log = EventLog("e", capacity=3)
        for index in range(5):
            log.append("tick", index=index)
        snapshot = log.snapshot()
        assert [event["index"] for event in snapshot] == [4, 3, 2]  # newest first
        assert log.total == 5
        assert log.dropped == 2
        assert len(log) == 3

    def test_snapshot_limit(self):
        log = EventLog("e", capacity=10)
        for index in range(6):
            log.append("tick", index=index)
        assert [event["index"] for event in log.snapshot(limit=2)] == [5, 4]

    def test_events_carry_kind_and_wall_time(self):
        log = EventLog("e")
        log.append("store-put-failure", error="disk full")
        (event,) = log.snapshot()
        assert event["kind"] == "store-put-failure"
        assert event["error"] == "disk full"
        assert event["time"] > 0


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a", labels={"op": "q"}) is registry.counter(
            "a", labels={"op": "q"}
        )
        assert registry.counter("a") is not registry.counter("a", labels={"op": "q"})

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_snapshot_covers_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        registry.events("e").append("tick")
        dump = registry.snapshot()
        assert dump["c"] == 2
        assert dump["g"] == 1.5
        assert dump["h"]["count"] == 1
        assert dump["e"]["events"] == 1

    def test_prometheus_exposition_shape(self):
        registry = MetricsRegistry()
        registry.counter("req_total", labels={"op": "query"}, help="requests").inc(3)
        registry.gauge("pending").set(2)
        hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        registry.events("svc").append("boot")
        text = registry.render_prometheus()
        assert '# TYPE req_total counter' in text
        assert '# HELP req_total requests' in text
        assert 'req_total{op="query"} 3' in text
        assert '# TYPE lat_seconds histogram' in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert 'lat_seconds_count 2' in text
        assert 'svc_events_total 1' in text

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("c", labels={"k": 'a"b\\c'}).inc()
        text = registry.render_prometheus()
        assert 'c{k="a\\"b\\\\c"} 1' in text


# ----------------------------------------------------------------------
# Traces
# ----------------------------------------------------------------------
class TestTrace:
    def test_span_records_name_duration_and_meta(self):
        trace = RequestTrace(op="query", request_id=7)
        with trace.span("lru", tier=1):
            pass
        trace.add_span("engine", 0.25, deduped=False)
        breakdown = trace.breakdown()
        assert [entry["span"] for entry in breakdown] == ["lru", "engine"]
        assert breakdown[1]["ms"] == pytest.approx(250.0)
        assert breakdown[0]["tier"] == 1

    def test_ambient_span_is_noop_without_active_trace(self):
        assert current_trace() is None
        with span("lru") as trace:
            assert trace is None  # and no exception

    def test_ambient_span_lands_on_the_active_trace(self):
        trace = RequestTrace(op="query")
        with active(trace):
            assert current_trace() is trace
            with span("store", tier=2):
                pass
        assert current_trace() is None
        assert trace.breakdown()[0]["span"] == "store"

    def test_worker_thread_spans_via_explicit_trace_object(self):
        # contextvars do not cross threads; the explicit .span() API must.
        trace = RequestTrace(op="query")

        def worker():
            with trace.span("repair"):
                pass

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert [entry["span"] for entry in trace.breakdown()] == ["repair"]

    def test_as_dict_merges_annotations_and_total(self):
        trace = RequestTrace(op="query", request_id=1, name="pair")
        trace.annotate(source="lru", key="k")
        body = trace.finish().as_dict()
        assert body["op"] == "query"
        assert body["name"] == "pair"
        assert body["source"] == "lru"
        assert body["total_ms"] >= 0


class TestTraceLog:
    def test_ring_eviction_newest_first(self):
        log = TraceLog(capacity=2)
        for index in range(3):
            trace = RequestTrace(op="query", request_id=index)
            log.record(trace)
        snapshot = log.snapshot()
        assert [entry["id"] for entry in snapshot] == [2, 1]
        assert log.stats() == {"capacity": 2, "retained": 2, "recorded": 3}

    def test_snapshot_limit(self):
        log = TraceLog(capacity=8)
        for index in range(4):
            log.record(RequestTrace(op="query", request_id=index))
        assert [entry["id"] for entry in log.snapshot(limit=2)] == [3, 2]
