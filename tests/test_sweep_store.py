"""Verdict stores: round-trips, backend parity, concurrency, key invalidation."""

from __future__ import annotations

import threading

import pytest

from repro.graphs import generators
from repro.graphs.identifiers import sequential_identifier_assignment
from repro.hierarchy.certificate_spaces import bit_space, color_space
from repro.hierarchy.game import pi_prefix, sigma_prefix
from repro.machines import builtin
from repro.machines.local_algorithm import NeighborhoodGatherAlgorithm
from repro.sweep import (
    JsonlVerdictStore,
    MemoryVerdictStore,
    SQLiteVerdictStore,
    instance_key,
    machine_fingerprint,
    open_store,
)


@pytest.fixture(params=["memory", "sqlite", "jsonl"])
def store(request, tmp_path):
    if request.param == "memory":
        yield MemoryVerdictStore()
    elif request.param == "sqlite":
        with SQLiteVerdictStore(str(tmp_path / "verdicts.sqlite")) as opened:
            yield opened
    else:
        with JsonlVerdictStore(str(tmp_path / "verdicts.jsonl")) as opened:
            yield opened


class TestStoreRoundTrip:
    def test_get_put(self, store):
        assert store.get("k1") is None
        store.put("k1", True, name="inst", seconds=0.5)
        store.put("k2", False)
        assert store.get("k1") is True
        assert store.get("k2") is False
        assert len(store) == 2

    def test_put_many_and_items(self, store):
        store.put_many([("a", True, "x", 0.1), ("b", False, "y", 0.2)])
        assert dict(store.items()) == {"a": (True, "x", 0.1), "b": (False, "y", 0.2)}

    def test_overwrite_last_wins(self, store):
        store.put("k", True)
        store.put("k", False)
        assert store.get("k") is False
        assert len(store) == 1


class TestPersistence:
    def test_sqlite_survives_reopen(self, tmp_path):
        path = str(tmp_path / "v.sqlite")
        with SQLiteVerdictStore(path) as first:
            first.put("k", True, name="n", seconds=1.0)
        with SQLiteVerdictStore(path) as second:
            assert second.get("k") is True
            assert len(second) == 1

    def test_jsonl_survives_reopen(self, tmp_path):
        path = str(tmp_path / "v.jsonl")
        with JsonlVerdictStore(path) as first:
            first.put("k", False)
            first.put("k2", True)
        with JsonlVerdictStore(path) as second:
            assert second.get("k") is False
            assert second.get("k2") is True

    def test_open_store_dispatch(self, tmp_path):
        assert isinstance(open_store(None), MemoryVerdictStore)
        with open_store(str(tmp_path / "a.jsonl")) as jsonl:
            assert isinstance(jsonl, JsonlVerdictStore)
        with open_store(str(tmp_path / "a.db")) as sqlite:
            assert isinstance(sqlite, SQLiteVerdictStore)

    def test_open_store_scheme_prefixes_win_over_suffixes(self, tmp_path):
        # The scheme decides, not the extension: daemons can name their
        # store unambiguously.
        with open_store(f"sqlite://{tmp_path}/odd.jsonl") as forced_sqlite:
            assert isinstance(forced_sqlite, SQLiteVerdictStore)
        with open_store(f"jsonl://{tmp_path}/odd.db") as forced_jsonl:
            assert isinstance(forced_jsonl, JsonlVerdictStore)
        assert isinstance(open_store("memory://"), MemoryVerdictStore)
        assert isinstance(open_store("sqlite://:memory:"), SQLiteVerdictStore)

    def test_open_store_rejects_unknown_scheme(self):
        with pytest.raises(ValueError):
            open_store("postgres://x")

    def test_open_store_creates_parent_directories(self, tmp_path):
        deep_sqlite = tmp_path / "a" / "b" / "c" / "verdicts.sqlite"
        with open_store(f"sqlite://{deep_sqlite}") as store:
            store.put("k", True)
        assert deep_sqlite.exists()
        deep_jsonl = tmp_path / "x" / "y" / "verdicts.jsonl"
        with open_store(str(deep_jsonl)) as store:
            store.put("k", False)
        assert deep_jsonl.exists()


class TestBulkLookup:
    def test_get_many_on_every_backend(self, store):
        store.put_many([("a", True, "", 0.0), ("b", False, "", 0.0), ("c", True, "", 0.0)])
        found = store.get_many(["a", "b", "missing", "c"])
        assert found == {"a": True, "b": False, "c": True}

    def test_get_many_empty(self, store):
        assert store.get_many([]) == {}

    def test_sqlite_get_many_spans_chunks(self, tmp_path):
        with SQLiteVerdictStore(str(tmp_path / "big.sqlite")) as store:
            count = 2 * SQLiteVerdictStore.GET_MANY_CHUNK + 17
            store.put_many([(f"k{i}", i % 2 == 0, "", 0.0) for i in range(count)])
            found = store.get_many([f"k{i}" for i in range(count)] + ["absent"])
            assert len(found) == count
            assert found["k0"] is True and found["k1"] is False


class TestServiceConcurrency:
    """The daemon's access pattern: one store shared across threads."""

    def test_sqlite_runs_wal_with_busy_timeout(self, tmp_path):
        with SQLiteVerdictStore(str(tmp_path / "wal.sqlite")) as store:
            assert store.journal_mode() == "wal"
            (timeout,) = store._connection.execute("PRAGMA busy_timeout").fetchone()
            assert timeout >= 1000

    def test_shared_store_concurrent_readers_and_writers(self, tmp_path):
        with SQLiteVerdictStore(str(tmp_path / "shared.sqlite")) as store:
            writers, per_writer = 4, 40
            errors = []

            def writer(slot: int) -> None:
                try:
                    for i in range(per_writer):
                        store.put(f"w{slot}-{i}", (slot + i) % 2 == 0, name=f"t{slot}")
                except Exception as error:  # noqa: BLE001
                    errors.append(error)

            def reader() -> None:
                try:
                    for _ in range(30):
                        keys = [f"w0-{i}" for i in range(per_writer)]
                        found = store.get_many(keys)
                        assert all(isinstance(v, bool) for v in found.values())
                        len(store)
                except Exception as error:  # noqa: BLE001
                    errors.append(error)

            threads = [
                threading.Thread(target=writer, args=(slot,)) for slot in range(writers)
            ] + [threading.Thread(target=reader) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors
            assert len(store) == writers * per_writer
            for slot in range(writers):
                assert store.get(f"w{slot}-0") is (slot % 2 == 0)

    def test_two_connections_reader_sees_writer(self, tmp_path):
        # Separate store objects (separate SQLite connections) on one path:
        # WAL lets the reader observe committed writes without locking errors.
        path = str(tmp_path / "cross.sqlite")
        with SQLiteVerdictStore(path) as writer, SQLiteVerdictStore(path) as reader:
            assert reader.get("k") is None
            writer.put("k", True, name="cross")
            assert reader.get("k") is True
            writer.put_many([(f"m{i}", False, "", 0.0) for i in range(10)])
            assert reader.get_many([f"m{i}" for i in range(10)]) == {
                f"m{i}": False for i in range(10)
            }


class TestKeyScheme:
    """The content-addressed keys: stable under reconstruction, fresh on change."""

    def _key(self, machine, graph=None, ids=None, spaces=None, prefix=None):
        graph = graph if graph is not None else generators.cycle_graph(5)
        ids = ids or sequential_identifier_assignment(graph)
        spaces = spaces if spaces is not None else [color_space(3)]
        prefix = prefix if prefix is not None else sigma_prefix(1)
        return instance_key(machine, graph, ids, spaces, prefix)

    def test_reconstructed_machine_same_key(self):
        # Two independently constructed copies of the same machine must
        # share a key, or cross-session incrementality would never hit.
        first = self._key(builtin.three_colorability_verifier())
        second = self._key(builtin.three_colorability_verifier())
        assert first == second

    def test_changed_machine_is_a_miss(self):
        base = self._key(builtin.three_colorability_verifier())
        assert base != self._key(builtin.two_colorability_verifier())

    def test_changed_captured_constant_is_a_miss(self):
        # The machines differ only in a value captured by the compute
        # function's closure.
        assert machine_fingerprint(builtin.constant_algorithm("1")) != machine_fingerprint(
            builtin.constant_algorithm("0")
        )

    def test_stateless_helper_attribute_is_stable(self):
        # A machine dragging along a stateless helper object must not leak
        # the helper's memory address (default repr) into the key.
        class Helper:
            pass

        def make_machine():
            machine = NeighborhoodGatherAlgorithm(1, lambda view: "1")
            machine.helper = Helper()
            return machine

        assert machine_fingerprint(make_machine()) == machine_fingerprint(make_machine())

    def test_changed_radius_is_a_miss(self):
        accept = lambda view: "1"
        one = self._key(NeighborhoodGatherAlgorithm(1, accept))
        two = self._key(NeighborhoodGatherAlgorithm(2, accept))
        assert one != two

    def test_changed_compute_body_is_a_miss(self):
        one = self._key(NeighborhoodGatherAlgorithm(1, lambda view: "1"))
        two = self._key(NeighborhoodGatherAlgorithm(1, lambda view: "0"))
        assert one != two

    def test_changed_graph_ids_space_prefix_are_misses(self):
        machine = builtin.three_colorability_verifier()
        base = self._key(machine)
        relabeled = generators.cycle_graph(5).relabel({"c0": "1"})
        assert base != self._key(machine, graph=relabeled)
        other_graph = generators.cycle_graph(6)
        assert base != self._key(machine, graph=other_graph)
        graph = generators.cycle_graph(5)
        shuffled = sequential_identifier_assignment(graph)
        nodes = list(graph.nodes)
        swapped = dict(shuffled)
        swapped[nodes[0]], swapped[nodes[1]] = shuffled[nodes[1]], shuffled[nodes[0]]
        assert base != self._key(machine, graph=graph, ids=swapped)
        assert base != self._key(machine, spaces=[bit_space()])
        assert base != self._key(machine, prefix=pi_prefix(1))

    def test_store_round_trip_under_real_keys(self, store):
        machine = builtin.three_colorability_verifier()
        key = self._key(machine)
        store.put(key, True, name="3-colorable|c5")
        assert store.get(self._key(builtin.three_colorability_verifier())) is True
        assert store.get(self._key(builtin.two_colorability_verifier())) is None


class TestNodeVerdicts:
    """The canonical ball cache's persistence tier (node-verdict table)."""

    def test_node_roundtrip(self, store):
        assert store.get_node("ball:x") is None
        store.put_node("ball:x", True)
        store.put_node_many([("ball:y", False), ("ball:z", True)])
        assert store.get_node("ball:x") is True
        assert store.get_node("ball:y") is False
        assert store.get_node_many(["ball:x", "ball:y", "ball:missing"]) == {
            "ball:x": True,
            "ball:y": False,
        }
        assert store.node_count() == 3
        # Node verdicts live beside, not inside, the instance table.
        assert len(store) == 0

    def test_node_overwrite_last_wins(self, store):
        store.put_node("ball:k", True)
        store.put_node("ball:k", False)
        assert store.get_node("ball:k") is False
        assert store.node_count() == 1

    def test_sqlite_node_verdicts_survive_reopen(self, tmp_path):
        path = str(tmp_path / "nodes.sqlite")
        with SQLiteVerdictStore(path) as first:
            first.put("instance-key", True)
            first.put_node_many([("ball:a", True), ("ball:b", False)])
        with SQLiteVerdictStore(path) as second:
            assert second.get("instance-key") is True
            assert second.get_node("ball:a") is True
            assert second.node_count() == 2

    def test_sqlite_pre_node_table_store_migrates_on_open(self, tmp_path):
        import sqlite3
        import time as time_module

        path = str(tmp_path / "legacy.sqlite")
        connection = sqlite3.connect(path)
        connection.execute(
            "CREATE TABLE verdicts (key TEXT PRIMARY KEY, verdict INTEGER NOT NULL,"
            " name TEXT NOT NULL DEFAULT '', seconds REAL NOT NULL DEFAULT 0,"
            " created REAL NOT NULL)"
        )
        connection.execute(
            "INSERT INTO verdicts VALUES ('old', 1, 'legacy', 0.1, ?)",
            (time_module.time(),),
        )
        connection.commit()
        connection.close()
        with SQLiteVerdictStore(path) as store:
            assert store.get("old") is True
            assert store.get_node("ball:new") is None
            store.put_node("ball:new", True)
            assert store.get_node("ball:new") is True

    def test_jsonl_mixes_kinds_in_one_file(self, tmp_path):
        path = str(tmp_path / "mixed.jsonl")
        with JsonlVerdictStore(path) as first:
            first.put("instance-key", True, name="i")
            first.put_node_many([("ball:a", False)])
        with JsonlVerdictStore(path) as second:
            assert second.get("instance-key") is True
            assert second.get_node("ball:a") is False
            assert len(second) == 1 and second.node_count() == 1

    def test_jsonl_legacy_untagged_lines_stay_instance_verdicts(self, tmp_path):
        import json as json_module

        path = tmp_path / "legacy.jsonl"
        path.write_text(
            json_module.dumps({"key": "old", "verdict": True, "name": "i"}) + "\n"
        )
        with JsonlVerdictStore(str(path)) as store:
            assert store.get("old") is True
            assert store.node_count() == 0
