"""Verdict stores: round-trips, backend parity, and key invalidation."""

from __future__ import annotations

import pytest

from repro.graphs import generators
from repro.graphs.identifiers import sequential_identifier_assignment
from repro.hierarchy.certificate_spaces import bit_space, color_space
from repro.hierarchy.game import pi_prefix, sigma_prefix
from repro.machines import builtin
from repro.machines.local_algorithm import NeighborhoodGatherAlgorithm
from repro.sweep import (
    JsonlVerdictStore,
    MemoryVerdictStore,
    SQLiteVerdictStore,
    instance_key,
    machine_fingerprint,
    open_store,
)


@pytest.fixture(params=["memory", "sqlite", "jsonl"])
def store(request, tmp_path):
    if request.param == "memory":
        yield MemoryVerdictStore()
    elif request.param == "sqlite":
        with SQLiteVerdictStore(str(tmp_path / "verdicts.sqlite")) as opened:
            yield opened
    else:
        with JsonlVerdictStore(str(tmp_path / "verdicts.jsonl")) as opened:
            yield opened


class TestStoreRoundTrip:
    def test_get_put(self, store):
        assert store.get("k1") is None
        store.put("k1", True, name="inst", seconds=0.5)
        store.put("k2", False)
        assert store.get("k1") is True
        assert store.get("k2") is False
        assert len(store) == 2

    def test_put_many_and_items(self, store):
        store.put_many([("a", True, "x", 0.1), ("b", False, "y", 0.2)])
        assert dict(store.items()) == {"a": (True, "x", 0.1), "b": (False, "y", 0.2)}

    def test_overwrite_last_wins(self, store):
        store.put("k", True)
        store.put("k", False)
        assert store.get("k") is False
        assert len(store) == 1


class TestPersistence:
    def test_sqlite_survives_reopen(self, tmp_path):
        path = str(tmp_path / "v.sqlite")
        with SQLiteVerdictStore(path) as first:
            first.put("k", True, name="n", seconds=1.0)
        with SQLiteVerdictStore(path) as second:
            assert second.get("k") is True
            assert len(second) == 1

    def test_jsonl_survives_reopen(self, tmp_path):
        path = str(tmp_path / "v.jsonl")
        with JsonlVerdictStore(path) as first:
            first.put("k", False)
            first.put("k2", True)
        with JsonlVerdictStore(path) as second:
            assert second.get("k") is False
            assert second.get("k2") is True

    def test_open_store_dispatch(self, tmp_path):
        assert isinstance(open_store(None), MemoryVerdictStore)
        with open_store(str(tmp_path / "a.jsonl")) as jsonl:
            assert isinstance(jsonl, JsonlVerdictStore)
        with open_store(str(tmp_path / "a.db")) as sqlite:
            assert isinstance(sqlite, SQLiteVerdictStore)


class TestKeyScheme:
    """The content-addressed keys: stable under reconstruction, fresh on change."""

    def _key(self, machine, graph=None, ids=None, spaces=None, prefix=None):
        graph = graph if graph is not None else generators.cycle_graph(5)
        ids = ids or sequential_identifier_assignment(graph)
        spaces = spaces if spaces is not None else [color_space(3)]
        prefix = prefix if prefix is not None else sigma_prefix(1)
        return instance_key(machine, graph, ids, spaces, prefix)

    def test_reconstructed_machine_same_key(self):
        # Two independently constructed copies of the same machine must
        # share a key, or cross-session incrementality would never hit.
        first = self._key(builtin.three_colorability_verifier())
        second = self._key(builtin.three_colorability_verifier())
        assert first == second

    def test_changed_machine_is_a_miss(self):
        base = self._key(builtin.three_colorability_verifier())
        assert base != self._key(builtin.two_colorability_verifier())

    def test_changed_captured_constant_is_a_miss(self):
        # The machines differ only in a value captured by the compute
        # function's closure.
        assert machine_fingerprint(builtin.constant_algorithm("1")) != machine_fingerprint(
            builtin.constant_algorithm("0")
        )

    def test_stateless_helper_attribute_is_stable(self):
        # A machine dragging along a stateless helper object must not leak
        # the helper's memory address (default repr) into the key.
        class Helper:
            pass

        def make_machine():
            machine = NeighborhoodGatherAlgorithm(1, lambda view: "1")
            machine.helper = Helper()
            return machine

        assert machine_fingerprint(make_machine()) == machine_fingerprint(make_machine())

    def test_changed_radius_is_a_miss(self):
        accept = lambda view: "1"
        one = self._key(NeighborhoodGatherAlgorithm(1, accept))
        two = self._key(NeighborhoodGatherAlgorithm(2, accept))
        assert one != two

    def test_changed_compute_body_is_a_miss(self):
        one = self._key(NeighborhoodGatherAlgorithm(1, lambda view: "1"))
        two = self._key(NeighborhoodGatherAlgorithm(1, lambda view: "0"))
        assert one != two

    def test_changed_graph_ids_space_prefix_are_misses(self):
        machine = builtin.three_colorability_verifier()
        base = self._key(machine)
        relabeled = generators.cycle_graph(5).relabel({"c0": "1"})
        assert base != self._key(machine, graph=relabeled)
        other_graph = generators.cycle_graph(6)
        assert base != self._key(machine, graph=other_graph)
        graph = generators.cycle_graph(5)
        shuffled = sequential_identifier_assignment(graph)
        nodes = list(graph.nodes)
        swapped = dict(shuffled)
        swapped[nodes[0]], swapped[nodes[1]] = shuffled[nodes[1]], shuffled[nodes[0]]
        assert base != self._key(machine, graph=graph, ids=swapped)
        assert base != self._key(machine, spaces=[bit_space()])
        assert base != self._key(machine, prefix=pi_prefix(1))

    def test_store_round_trip_under_real_keys(self, store):
        machine = builtin.three_colorability_verifier()
        key = self._key(machine)
        store.put(key, True, name="3-colorable|c5")
        assert store.get(self._key(builtin.three_colorability_verifier())) is True
        assert store.get(self._key(builtin.two_colorability_verifier())) is None
