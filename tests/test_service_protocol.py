"""Wire protocol: round-trips, malformed input, response shapes."""

from __future__ import annotations

import json

import pytest

from repro.service.protocol import (
    MAX_DELTAS,
    PROTOCOL_VERSION,
    MutateRequest,
    PingRequest,
    ProtocolError,
    QueryRequest,
    StatsRequest,
    encode_request,
    encode_response,
    error_response,
    mutate_response,
    parse_request,
    parse_response,
    pong_response,
    query_response,
    stats_response,
    validate_wire_delta,
)


class TestRequestRoundTrip:
    @pytest.mark.parametrize(
        "request_obj",
        [
            QueryRequest(id=7, scenario="separations", index=3),
            QueryRequest(id="abc", scenario="smoke", instance="3-colorable|cycle4|small"),
            QueryRequest(spec={"arbiter": "3-colorable", "family": "cycle", "n": 6}),
            QueryRequest(id=9, session="workbench"),
            MutateRequest(id=1, session="workbench", scenario="smoke", index=0),
            MutateRequest(
                id=2,
                session="workbench",
                deltas=(
                    {"kind": "edge-insert", "u": 0, "v": 2},
                    {"kind": "set-label", "node": 1, "label": "1"},
                    {"kind": "set-id", "node": 3, "id": "101"},
                    {"kind": "edge-delete", "u": 0, "v": 1},
                ),
            ),
            MutateRequest(id=3, session="s", spec={"arbiter": "eulerian"}),
            StatsRequest(id=0),
            StatsRequest(),
            PingRequest(id="p"),
        ],
    )
    def test_encode_parse_identity(self, request_obj):
        line = encode_request(request_obj)
        assert "\n" not in line
        assert parse_request(line) == request_obj

    def test_encoded_request_is_versioned_json(self):
        body = json.loads(encode_request(PingRequest(id=1)))
        assert body["v"] == PROTOCOL_VERSION
        assert body["op"] == "ping"


class TestMalformedRequests:
    def _code(self, line: str) -> str:
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(line)
        return excinfo.value.code

    def test_invalid_json(self):
        assert self._code("{not json") == "bad-json"

    def test_non_object(self):
        assert self._code('["a", "list"]') == "bad-request"

    def test_missing_version(self):
        assert self._code('{"op": "ping"}') == "bad-version"

    def test_future_version(self):
        assert self._code('{"v": 99, "op": "ping"}') == "bad-version"

    def test_unknown_op(self):
        assert self._code('{"v": 1, "op": "solve"}') == "bad-op"

    def test_query_needs_exactly_one_addressing_mode(self):
        assert self._code('{"v": 1, "op": "query"}') == "bad-request"
        both = '{"v": 1, "op": "query", "scenario": "s", "index": 0, "spec": {}}'
        assert self._code(both) == "bad-request"

    def test_scenario_query_needs_instance_xor_index(self):
        assert self._code('{"v": 1, "op": "query", "scenario": "s"}') == "bad-request"
        both = '{"v": 1, "op": "query", "scenario": "s", "instance": "x", "index": 1}'
        assert self._code(both) == "bad-request"

    def test_bad_field_types(self):
        assert self._code('{"v": 1, "op": "query", "scenario": 5, "index": 0}') == "bad-request"
        assert (
            self._code('{"v": 1, "op": "query", "scenario": "s", "index": "zero"}')
            == "bad-request"
        )
        assert (
            self._code('{"v": 1, "op": "query", "scenario": "s", "index": true}')
            == "bad-request"
        )
        assert self._code('{"v": 1, "op": "query", "spec": [1]}') == "bad-spec"
        assert self._code('{"v": 1, "op": "ping", "id": [1]}') == "bad-request"

    def test_error_keeps_request_id_for_addressable_lines(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request('{"v": 1, "op": "warp", "id": 42}')
        assert excinfo.value.request_id == 42

    def test_session_query_rejects_mixed_modes_and_empty_names(self):
        mixed = '{"v": 1, "op": "query", "session": "s", "scenario": "x", "index": 0}'
        assert self._code(mixed) == "bad-request"
        assert self._code('{"v": 1, "op": "query", "session": ""}') == "bad-request"
        assert self._code('{"v": 1, "op": "query", "session": 7}') == "bad-request"


class TestMalformedMutates:
    """The mutations stream: every defect is a typed, addressable error."""

    def _code(self, line: str) -> str:
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(line)
        return excinfo.value.code

    def _mutate(self, **extra) -> str:
        body = {"v": 1, "op": "mutate", "id": 5, "session": "s", "deltas": []}
        body.update(extra)
        return json.dumps(body)

    def test_version_negotiation_is_unchanged_for_mutate(self):
        """The mutate op rides protocol v1: version checks come first."""
        assert self._code('{"v": 99, "op": "mutate", "session": "s"}') == "bad-version"
        assert self._code('{"op": "mutate", "session": "s"}') == "bad-version"

    def test_session_name_required(self):
        assert self._code(self._mutate(session="")) == "bad-request"
        assert self._code(self._mutate(session=3)) == "bad-request"

    def test_deltas_must_be_a_list(self):
        assert self._code(self._mutate(deltas={"kind": "set-label"})) == "bad-request"
        assert self._code(self._mutate(deltas="nope")) == "bad-request"

    def test_delta_batch_is_bounded(self):
        oversize = [{"kind": "set-label", "node": 0, "label": ""}] * (MAX_DELTAS + 1)
        assert self._code(self._mutate(deltas=oversize)) == "bad-request"

    @pytest.mark.parametrize(
        "delta",
        [
            "not-an-object",
            {"kind": "warp"},
            {"u": 0, "v": 1},  # no kind
            {"kind": "edge-insert", "u": 0},  # missing v
            {"kind": "edge-insert", "u": "0", "v": 1},  # str index
            {"kind": "edge-insert", "u": True, "v": 1},  # bool is not an int
            {"kind": "edge-insert", "u": -1, "v": 1},  # negative index
            {"kind": "set-label", "node": 0, "label": 7},  # non-str label
            {"kind": "set-id", "node": 0},  # missing id
        ],
    )
    def test_malformed_deltas_are_bad_delta(self, delta):
        assert self._code(self._mutate(deltas=[delta])) == "bad-delta"
        with pytest.raises(ProtocolError) as excinfo:
            validate_wire_delta(delta, request_id=5)
        assert excinfo.value.code == "bad-delta"
        assert excinfo.value.request_id == 5

    def test_opening_address_validation_mirrors_query(self):
        assert self._code(self._mutate(scenario="s", spec={})) == "bad-request"
        assert self._code(self._mutate(scenario="s")) == "bad-request"  # no instance/index
        assert self._code(self._mutate(scenario="s", instance="x", index=0)) == "bad-request"
        assert self._code(self._mutate(scenario="s", index="zero")) == "bad-request"
        assert self._code(self._mutate(spec=[1])) == "bad-spec"


class TestResponses:
    def test_query_response_round_trip(self):
        response = query_response(3, True, source="lru", key="k" * 64, name="x", seconds=0.25)
        parsed = parse_response(encode_response(response))
        assert parsed == response
        assert parsed["winner"] == "eve"
        assert parsed["ok"] is True

    def test_adam_wins_when_verdict_false(self):
        assert query_response(None, False, "compute", "k")["winner"] == "adam"

    def test_query_response_rejects_unknown_source(self):
        with pytest.raises(ValueError):
            query_response(None, True, source="disk", key="k")

    def test_error_response_round_trip(self):
        response = error_response("id-1", "overloaded", "busy")
        parsed = parse_response(encode_response(response))
        assert parsed["ok"] is False
        assert parsed["error"]["code"] == "overloaded"
        assert parsed["id"] == "id-1"

    def test_error_response_rejects_unknown_code(self):
        with pytest.raises(ValueError):
            error_response(None, "weird", "boom")

    def test_mutate_response_round_trip(self):
        response = mutate_response(
            7, "workbench", applied=3, dirty=11, generation=4, seconds=0.01, opened=True
        )
        parsed = parse_response(encode_response(response))
        assert parsed == response
        assert parsed["ok"] is True
        assert parsed["applied"] == 3
        assert parsed["dirty"] == 11
        assert parsed["opened"] is True

    def test_dynamic_error_codes_are_registered(self):
        for code in ("unknown-session", "bad-delta", "session-limit"):
            response = error_response(None, code, "boom")
            assert parse_response(encode_response(response))["error"]["code"] == code

    def test_stats_and_pong(self):
        assert parse_response(encode_response(stats_response(1, {"a": 1})))["stats"] == {"a": 1}
        assert parse_response(encode_response(pong_response(2)))["pong"] is True

    def test_parse_response_rejects_bad_lines(self):
        with pytest.raises(ProtocolError):
            parse_response("nope")
        with pytest.raises(ProtocolError):
            parse_response('{"v": 2, "ok": true}')
        with pytest.raises(ProtocolError):
            parse_response('{"v": 1}')
