"""End-to-end integration tests tying several subsystems together.

These tests follow the storylines of the paper: a property is expressed as a
formula, compiled into an arbiter, decided through the certificate game,
reduced to another property, and cross-checked against the ground truth --
exercising graphs, logic, machines, the hierarchy game, reductions and the
Fagin/Cook-Levin constructions in one pass.
"""

import pytest

from repro.fagin import compile_sentence, cook_levin_boolean_graph
from repro.graphs import generators
from repro.graphs.identifiers import sequential_identifier_assignment
from repro.hierarchy import three_colorability_spec
from repro.logic import EvaluationOptions, graph_satisfies
from repro.logic.examples import three_colorable_formula
from repro.machines import builtin, execute
from repro.reductions import (
    AllSelectedToHamiltonian,
    LPToAllSelectedReduction,
    SatGraphToThreeSatGraph,
    ThreeSatGraphToThreeColorable,
)
import repro.properties as props

OPTIONS = EvaluationOptions(second_order_locality=1, second_order_node_only=True, candidate_limit=40)


class TestThreeColorabilityStoryline:
    """3-colorability: formula = game = ground truth, on the same graphs."""

    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: generators.cycle_graph(3),
            lambda: generators.path_graph(3),
            lambda: generators.complete_graph(4),
        ],
    )
    def test_formula_game_and_ground_truth_agree(self, graph_factory):
        graph = graph_factory()
        truth = props.three_colorable(graph)
        assert graph_satisfies(graph, three_colorable_formula(), options=OPTIONS) == truth
        assert three_colorability_spec().decide(graph) == truth

    def test_compiled_arbiter_agrees_with_hand_written_one(self):
        graph = generators.cycle_graph(3)
        compiled = compile_sentence(three_colorable_formula()).spec()
        assert compiled.decide(graph) == three_colorability_spec().decide(graph)


class TestCookLevinToColoringPipeline:
    """Sigma^lfo_1 sentence -> sat-graph -> 3-sat-graph -> 3-colorable.

    The full chain is exercised with the all-selected formula, whose per-node
    Boolean formulas stay tiny; the 3-colorability formula's chain is covered
    stage by stage in ``tests/test_fagin.py`` and ``tests/test_reductions.py``
    (chaining it end to end on a non-3-colorable graph would require refuting
    the 3-colorability of a gadget graph with thousands of nodes).
    """

    def test_full_chain_preserves_membership(self):
        from repro.logic.examples import all_selected_formula

        for labels, expected in [(["1", "1"], True), (["1", "0"], False)]:
            graph = generators.path_graph(2, labels=labels)
            boolean_graph = cook_levin_boolean_graph(all_selected_formula(), graph)
            assert props.sat_graph(boolean_graph) == expected
            three_cnf = SatGraphToThreeSatGraph().apply(boolean_graph).output_graph
            assert props.sat_graph(three_cnf) == expected
            colored = ThreeSatGraphToThreeColorable().apply(three_cnf).output_graph
            assert props.three_colorable(colored) == expected

    def test_three_colorability_chain_on_positive_instance(self):
        graph = generators.path_graph(2)
        boolean_graph = cook_levin_boolean_graph(three_colorable_formula(), graph)
        assert props.sat_graph(boolean_graph)
        three_cnf = SatGraphToThreeSatGraph().apply(boolean_graph).output_graph
        assert props.sat_graph(three_cnf)


class TestReductionTransfersDeciders:
    """A decider for the target property yields one for the source (Section 8)."""

    def test_hamiltonian_oracle_decides_all_selected(self):
        reduction = AllSelectedToHamiltonian()
        for labels in (["1", "1", "1"], ["1", "0", "1"]):
            graph = generators.path_graph(3, labels=labels)
            via_reduction = props.hamiltonian(reduction.apply(graph).output_graph)
            assert via_reduction == props.all_selected(graph)

    def test_lp_decider_through_all_selected(self):
        # eulerian -> all-selected via Remark 17, then decided by the all-selected machine.
        reduction = LPToAllSelectedReduction(builtin.eulerian_decider())
        for graph in (generators.cycle_graph(4), generators.star_graph(4)):
            relabeled = reduction.apply(graph).output_graph
            ids = sequential_identifier_assignment(relabeled)
            decision = execute(builtin.all_selected_decider(), relabeled, ids).accepts()
            assert decision == props.eulerian(graph)


class TestIdentifierRobustness:
    """Decisions must not depend on the particular locally unique identifiers."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_eulerian_decider_under_random_identifiers(self, seed):
        from repro.graphs.identifiers import random_identifier_assignment

        graph = generators.cycle_graph(6)
        ids = random_identifier_assignment(graph, radius=1, rng=__import__("random").Random(seed))
        assert execute(builtin.eulerian_decider(), graph, ids).accepts()

    def test_reduction_output_property_invariant_under_identifiers(self):
        from repro.graphs.identifiers import random_identifier_assignment, small_identifier_assignment

        graph = generators.figure3_graph()
        reduction = AllSelectedToHamiltonian()
        results = set()
        for ids in (
            sequential_identifier_assignment(graph),
            small_identifier_assignment(graph, 1),
            random_identifier_assignment(graph, 1),
        ):
            results.add(props.hamiltonian(reduction.apply(graph, ids).output_graph))
        assert results == {False}
