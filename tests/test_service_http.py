"""The HTTP operations console, served next to a live daemon."""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.obs.top import render, run_top
from repro.service.client import ServiceClient
from repro.service.server import ServerThread
from repro.sweep.store import MemoryVerdictStore


@pytest.fixture(scope="module")
def console_server():
    """One daemon + console shared by the module (read-mostly assertions)."""
    with ServerThread(store=MemoryVerdictStore(), http_port=0) as server:
        yield server


def _get(server, path: str):
    host, port = server.http_address
    return urllib.request.urlopen(f"http://{host}:{port}{path}", timeout=10)


def _get_json(server, path: str):
    with _get(server, path) as response:
        return json.loads(response.read().decode("utf-8"))


def _warm_query(server):
    with ServiceClient(server.address) as client:
        cold = client.query_scenario("smoke", index=0)
        warm = client.query_scenario("smoke", index=0)
    return cold, warm


class TestStatsEndpoint:
    def test_stats_page_is_the_wire_stats_payload(self, console_server):
        _warm_query(console_server)
        stats = _get_json(console_server, "/stats")
        assert stats["requests"]["query"] >= 2
        assert "tiers" in stats and "coalescer" in stats
        assert stats["tiers"]["lru"]["hits"] >= 1

    def test_stats_carries_the_monotonic_clock(self, console_server):
        first = _get_json(console_server, "/stats")
        second = _get_json(console_server, "/stats")
        assert second["since_monotonic"] > first["since_monotonic"]

    def test_stats_reports_latency_percentiles(self, console_server):
        _warm_query(console_server)
        stats = _get_json(console_server, "/stats")
        latency = stats["latency"]["query"]
        assert latency["count"] >= 1
        assert latency["p50"] >= 0
        assert latency["buckets"][-1][0] == "+Inf"


class TestStatsSelfCounting:
    def test_first_stats_poll_does_not_count_itself(self):
        with ServerThread(store=MemoryVerdictStore()) as server:
            with ServiceClient(server.address) as client:
                stats = client.stats()
        assert stats["requests"]["stats"] == 0

    def test_later_polls_count_only_earlier_polls(self):
        with ServerThread(store=MemoryVerdictStore()) as server:
            with ServiceClient(server.address) as client:
                client.stats()
                client.stats()
                stats = client.stats()
        assert stats["requests"]["stats"] == 2


class TestMetricsEndpoint:
    def test_metrics_parse_as_prometheus_exposition(self, console_server):
        _warm_query(console_server)
        with _get(console_server, "/metrics") as response:
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode("utf-8")
        samples = {}
        for line in text.strip().splitlines():
            if line.startswith("#"):
                _hash, directive, _rest = line.split(None, 2)
                assert directive in ("HELP", "TYPE")
                continue
            name_and_labels, value = line.rsplit(None, 1)
            float(value)  # every sample value is a number
            samples[name_and_labels] = value
        assert any(key.startswith("repro_requests_total") for key in samples)
        assert any(key.startswith("repro_tier_lru_hits_total") for key in samples)
        assert any('le="+Inf"' in key for key in samples)

    def test_warm_query_moves_the_tier_counters(self, console_server):
        _warm_query(console_server)
        with _get(console_server, "/metrics") as response:
            text = response.read().decode("utf-8")
        for line in text.splitlines():
            if line.startswith("repro_tier_lru_hits_total"):
                assert int(line.rsplit(None, 1)[1]) >= 1
                break
        else:
            pytest.fail("repro_tier_lru_hits_total not exposed")


class TestBrowsePages:
    def test_overview_links_the_surfaces(self, console_server):
        with _get(console_server, "/") as response:
            page = response.read().decode("utf-8")
        for href in ("/stats", "/metrics", "/scenarios", "/verdicts", "/traces"):
            assert href in page

    def test_scenarios_page_lists_the_registry(self, console_server):
        body = _get_json(console_server, "/scenarios?format=json")
        names = [entry["name"] for entry in body["scenarios"]]
        assert "smoke" in names

    def test_scenario_detail_reports_stored_verdicts(self, console_server):
        _warm_query(console_server)
        body = _get_json(console_server, "/scenarios/smoke?format=json")
        assert body["scenario"] == "smoke"
        assert body["instances"] >= 1
        assert body["entries"][0]["verdict"] in (True, False)

    def test_scenario_pagination_windows_the_keys(self, console_server):
        page1 = _get_json(
            console_server, "/scenarios/smoke?format=json&page=1&per_page=2"
        )
        page2 = _get_json(
            console_server, "/scenarios/smoke?format=json&page=2&per_page=2"
        )
        assert len(page1["entries"]) == 2
        assert page1["entries"][0]["index"] == 0
        assert page2["entries"][0]["index"] == 2
        keys1 = {entry["key"] for entry in page1["entries"]}
        keys2 = {entry["key"] for entry in page2["entries"]}
        assert not keys1 & keys2

    def test_verdicts_page_paginates_the_store(self, console_server):
        _warm_query(console_server)
        body = _get_json(console_server, "/verdicts?format=json&per_page=1")
        assert body["total"] >= 1
        assert len(body["entries"]) == 1
        entry = body["entries"][0]
        assert set(entry) == {"key", "verdict", "name", "seconds"}

    def test_sessions_page_lists_open_sessions(self, console_server):
        with ServiceClient(console_server.address) as client:
            client.mutate(
                "http-console-session",
                scenario="separations",
                instance="2-colorable|cycle6|sequential",
            )
            body = _get_json(console_server, "/sessions?format=json")
        assert "http-console-session" in body["sessions"]

    def test_traces_page_shows_recent_spans(self, console_server):
        _warm_query(console_server)
        body = _get_json(console_server, "/traces?format=json")
        assert body["recorded"] >= 1
        query_traces = [t for t in body["traces"] if t["op"] == "query"]
        assert query_traces
        assert any(span["span"] == "lru" for span in query_traces[0]["spans"])

    def test_unknown_page_is_404(self, console_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(console_server, "/nothing-here")
        assert excinfo.value.code == 404

    def test_unknown_scenario_is_404(self, console_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(console_server, "/scenarios/no-such-scenario")
        assert excinfo.value.code == 404

    def test_bad_pagination_is_400(self, console_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(console_server, "/verdicts?page=zero")
        assert excinfo.value.code == 400


class TestHealthz:
    def test_serving_daemon_is_200_with_detail(self, console_server):
        with _get(console_server, "/healthz") as response:
            assert response.status == 200
            body = json.loads(response.read().decode("utf-8"))
        assert body["healthy"] is True
        assert body["draining"] is False
        assert body["breaker"] == "closed"

    def test_draining_daemon_is_503(self):
        with ServerThread(store=MemoryVerdictStore(), http_port=0) as server:
            server.service.draining = True
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server, "/healthz")
            assert excinfo.value.code == 503
            body = json.loads(excinfo.value.read().decode("utf-8"))
            assert body["healthy"] is False and body["draining"] is True

    def test_open_breaker_is_503(self):
        with ServerThread(store=MemoryVerdictStore(), http_port=0) as server:
            breaker = server.service.breaker
            for _ in range(breaker.failure_threshold):
                breaker.record_failure()
            assert breaker.state == "open"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server, "/healthz")
            assert excinfo.value.code == 503


class TestQueryTraceBreakdown:
    def test_warm_query_response_carries_tier_timings(self, console_server):
        cold, warm = _warm_query(console_server)
        cold_spans = [entry["span"] for entry in cold["trace"]]
        warm_spans = [entry["span"] for entry in warm["trace"]]
        assert "lru" in cold_spans
        assert warm_spans[-1] == "lru"  # warm answer came straight from tier 1
        assert all(entry["ms"] >= 0 for entry in warm["trace"])


class TestTop:
    def test_render_is_pure_and_reports_rates(self, console_server):
        _warm_query(console_server)
        first = _get_json(console_server, "/stats")
        _warm_query(console_server)
        second = _get_json(console_server, "/stats")
        frame = render(second, first)
        assert "repro verdict daemon" in frame
        assert "lru" in frame and "coalescer" in frame

    def test_run_top_once_renders_and_exits_zero(self, console_server, capsys):
        host, port = console_server.http_address
        assert run_top(connect=f"{host}:{port}", once=True) == 0
        out = capsys.readouterr().out
        assert "repro verdict daemon" in out

    def test_run_top_unreachable_returns_one(self):
        assert run_top(connect="127.0.0.1:1", once=True) == 1


class TestTopRestartDetection:
    def _snap(self, monotonic, uptime, queries, p99=None):
        return {
            "since_monotonic": monotonic,
            "uptime_seconds": uptime,
            "requests": {"query": queries},
            "queries": queries,
            "query_p99_ms": p99,
        }

    def test_restarted_on_monotonic_going_backwards(self):
        from repro.obs.top import restarted

        prev = self._snap(100.0, 100.0, 50)
        now = self._snap(3.0, 3.0, 2)
        assert restarted(now, prev)

    def test_restarted_on_uptime_reset_even_when_monotonic_advances(self):
        from repro.obs.top import restarted

        # perf_counter is machine-wide on Linux: it keeps climbing across
        # a daemon restart, so uptime is the reliable tell.
        prev = self._snap(100.0, 90.0, 50)
        now = self._snap(105.0, 2.0, 1)
        assert restarted(now, prev)

    def test_not_restarted_on_normal_progress(self):
        from repro.obs.top import restarted

        prev = self._snap(100.0, 90.0, 50)
        now = self._snap(101.0, 91.0, 60)
        assert not restarted(now, prev)
        assert not restarted(now, None)

    def test_rate_resets_to_zero_across_a_restart(self):
        from repro.obs.top import _rate

        prev = self._snap(100.0, 90.0, 5000)
        now = self._snap(105.0, 2.0, 10)  # restarted: counters reset
        assert _rate(now, prev, "requests", "query") == 0.0
        steady = self._snap(106.0, 3.0, 30)
        assert _rate(steady, now, "requests", "query") == 20.0

    def test_render_notes_the_restart_and_shows_no_negative_rates(self):
        from repro.obs.top import render

        prev = self._snap(100.0, 90.0, 5000)
        prev.update({"tiers": {}, "coalescer": {}, "latency": {}, "dynamic": {}})
        now = self._snap(105.0, 2.0, 10)
        now.update({"tiers": {}, "coalescer": {}, "latency": {}, "dynamic": {}})
        frame = render(now, prev)
        assert "daemon restarted" in frame
        assert "-1" not in frame.split("latency")[0]  # no negative rates anywhere

    def test_qps_series_skips_restart_pairs(self):
        from repro.obs.top import qps_series

        samples = [
            self._snap(10.0, 10.0, 100),
            self._snap(11.0, 11.0, 200),  # 100 qps
            self._snap(12.0, 1.0, 5),     # restart: counter went backwards
            self._snap(13.0, 2.0, 55),    # 50 qps
        ]
        assert qps_series(samples) == [100.0, 50.0]


class TestStatsHistoryEndpoint:
    def test_history_accumulates_timestamped_samples(self, console_server):
        _get_json(console_server, "/stats")
        _get_json(console_server, "/stats")
        history = _get_json(console_server, "/stats/history")
        samples = history["samples"]
        assert len(samples) >= 2
        assert history["recorded"] >= len(samples)
        assert history["capacity"] >= len(samples)
        newest = samples[-1]
        assert {"time", "since_monotonic", "uptime_seconds", "queries"} <= set(newest)
        # Oldest first: the server clock climbs along the ring.
        clocks = [sample["since_monotonic"] for sample in samples]
        assert clocks == sorted(clocks)

    def test_history_limit_windows_the_newest(self, console_server):
        for _ in range(3):
            _get_json(console_server, "/stats")
        full = _get_json(console_server, "/stats/history")["samples"]
        tail = _get_json(console_server, "/stats/history?limit=2")["samples"]
        assert len(tail) == 2
        assert tail == full[-2:]

    def test_bad_limit_is_400(self, console_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(console_server, "/stats/history?limit=zero")
        assert excinfo.value.code == 400


class TestTraceExportEndpoint:
    def test_export_is_a_loadable_chrome_trace(self, console_server):
        _warm_query(console_server)
        document = _get_json(console_server, "/traces/export.json")
        events = document["traceEvents"]
        assert events[0]["ph"] == "M"  # process_name metadata
        complete = [event for event in events if event["ph"] == "X"]
        assert complete, "expected span events after a warm query"
        for event in complete:
            assert {"name", "pid", "tid", "ts", "dur"} <= set(event)
        assert document["displayTimeUnit"] == "ms"

    def test_export_respects_the_limit_parameter(self, console_server):
        for _ in range(3):
            _warm_query(console_server)
        document = _get_json(console_server, "/traces/export.json?limit=1")
        tids = {e["tid"] for e in document["traceEvents"] if e["ph"] == "X"}
        assert len(tids) == 1


class TestProfileEndpoint:
    def test_idle_profiler_serves_a_hint(self, console_server):
        with _get(console_server, "/profile") as response:
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode("utf-8")
        if "# profiler not running" in text:
            assert "profile-start" in text

    def test_running_profiler_serves_folded_stacks_and_json(self, console_server):
        from repro.service.client import ServiceClient

        with ServiceClient(console_server.address) as client:
            client.profile_start(hz=397)
            try:
                deadline = time.monotonic() + 5.0
                snapshot = {}
                while time.monotonic() < deadline:
                    _warm_query(console_server)
                    snapshot = _get_json(console_server, "/profile?format=json")
                    if snapshot.get("samples"):
                        break
                assert snapshot.get("samples"), "profiler collected no samples"
                assert snapshot["running"] is True
                assert snapshot["hz"] == 397.0
                with _get(console_server, "/profile") as response:
                    folded = response.read().decode("utf-8")
                assert folded.strip(), "folded output empty while sampling"
                line = folded.strip().splitlines()[0]
                stack, count = line.rsplit(" ", 1)
                assert int(count) >= 1 and ";" in stack or ":" in stack
            finally:
                client.profile_stop()

    def test_profile_top_parameter_bounds_the_rows(self, console_server):
        snapshot = _get_json(console_server, "/profile?format=json&top=1")
        assert len(snapshot["top_self"]) <= 1
        assert len(snapshot["top_cumulative"]) <= 1


class TestBenchEndpoint:
    def test_bench_page_without_history_offers_guidance(
        self, console_server, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("BENCH_OUTPUT_DIR", str(tmp_path))
        with _get(console_server, "/bench") as response:
            text = response.read().decode("utf-8")
        assert "repro bench --collect" in text

    def test_bench_page_renders_history_with_sparklines(
        self, console_server, tmp_path, monkeypatch
    ):
        from repro.obs import history as bench_history

        monkeypatch.setenv("BENCH_OUTPUT_DIR", str(tmp_path))
        path = tmp_path / bench_history.DEFAULT_HISTORY_FILENAME
        for qps in (100.0, 120.0, 90.0):
            bench_history.append_record(
                path,
                {"ts": 1.0, "git_sha": "cafe1234", "metrics": {"service.hot_qps": qps}},
            )
        payload = _get_json(console_server, "/bench?format=json")
        assert len(payload["records"]) == 3
        assert payload["path"].endswith(bench_history.DEFAULT_HISTORY_FILENAME)
        with _get(console_server, "/bench") as response:
            page = response.read().decode("utf-8")
        assert "service.hot_qps" in page
        assert "cafe1234" in page
