"""The HTTP operations console, served next to a live daemon."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.top import render, run_top
from repro.service.client import ServiceClient
from repro.service.server import ServerThread
from repro.sweep.store import MemoryVerdictStore


@pytest.fixture(scope="module")
def console_server():
    """One daemon + console shared by the module (read-mostly assertions)."""
    with ServerThread(store=MemoryVerdictStore(), http_port=0) as server:
        yield server


def _get(server, path: str):
    host, port = server.http_address
    return urllib.request.urlopen(f"http://{host}:{port}{path}", timeout=10)


def _get_json(server, path: str):
    with _get(server, path) as response:
        return json.loads(response.read().decode("utf-8"))


def _warm_query(server):
    with ServiceClient(server.address) as client:
        cold = client.query_scenario("smoke", index=0)
        warm = client.query_scenario("smoke", index=0)
    return cold, warm


class TestStatsEndpoint:
    def test_stats_page_is_the_wire_stats_payload(self, console_server):
        _warm_query(console_server)
        stats = _get_json(console_server, "/stats")
        assert stats["requests"]["query"] >= 2
        assert "tiers" in stats and "coalescer" in stats
        assert stats["tiers"]["lru"]["hits"] >= 1

    def test_stats_carries_the_monotonic_clock(self, console_server):
        first = _get_json(console_server, "/stats")
        second = _get_json(console_server, "/stats")
        assert second["since_monotonic"] > first["since_monotonic"]

    def test_stats_reports_latency_percentiles(self, console_server):
        _warm_query(console_server)
        stats = _get_json(console_server, "/stats")
        latency = stats["latency"]["query"]
        assert latency["count"] >= 1
        assert latency["p50"] >= 0
        assert latency["buckets"][-1][0] == "+Inf"


class TestStatsSelfCounting:
    def test_first_stats_poll_does_not_count_itself(self):
        with ServerThread(store=MemoryVerdictStore()) as server:
            with ServiceClient(server.address) as client:
                stats = client.stats()
        assert stats["requests"]["stats"] == 0

    def test_later_polls_count_only_earlier_polls(self):
        with ServerThread(store=MemoryVerdictStore()) as server:
            with ServiceClient(server.address) as client:
                client.stats()
                client.stats()
                stats = client.stats()
        assert stats["requests"]["stats"] == 2


class TestMetricsEndpoint:
    def test_metrics_parse_as_prometheus_exposition(self, console_server):
        _warm_query(console_server)
        with _get(console_server, "/metrics") as response:
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode("utf-8")
        samples = {}
        for line in text.strip().splitlines():
            if line.startswith("#"):
                _hash, directive, _rest = line.split(None, 2)
                assert directive in ("HELP", "TYPE")
                continue
            name_and_labels, value = line.rsplit(None, 1)
            float(value)  # every sample value is a number
            samples[name_and_labels] = value
        assert any(key.startswith("repro_requests_total") for key in samples)
        assert any(key.startswith("repro_tier_lru_hits_total") for key in samples)
        assert any('le="+Inf"' in key for key in samples)

    def test_warm_query_moves_the_tier_counters(self, console_server):
        _warm_query(console_server)
        with _get(console_server, "/metrics") as response:
            text = response.read().decode("utf-8")
        for line in text.splitlines():
            if line.startswith("repro_tier_lru_hits_total"):
                assert int(line.rsplit(None, 1)[1]) >= 1
                break
        else:
            pytest.fail("repro_tier_lru_hits_total not exposed")


class TestBrowsePages:
    def test_overview_links_the_surfaces(self, console_server):
        with _get(console_server, "/") as response:
            page = response.read().decode("utf-8")
        for href in ("/stats", "/metrics", "/scenarios", "/verdicts", "/traces"):
            assert href in page

    def test_scenarios_page_lists_the_registry(self, console_server):
        body = _get_json(console_server, "/scenarios?format=json")
        names = [entry["name"] for entry in body["scenarios"]]
        assert "smoke" in names

    def test_scenario_detail_reports_stored_verdicts(self, console_server):
        _warm_query(console_server)
        body = _get_json(console_server, "/scenarios/smoke?format=json")
        assert body["scenario"] == "smoke"
        assert body["instances"] >= 1
        assert body["entries"][0]["verdict"] in (True, False)

    def test_scenario_pagination_windows_the_keys(self, console_server):
        page1 = _get_json(
            console_server, "/scenarios/smoke?format=json&page=1&per_page=2"
        )
        page2 = _get_json(
            console_server, "/scenarios/smoke?format=json&page=2&per_page=2"
        )
        assert len(page1["entries"]) == 2
        assert page1["entries"][0]["index"] == 0
        assert page2["entries"][0]["index"] == 2
        keys1 = {entry["key"] for entry in page1["entries"]}
        keys2 = {entry["key"] for entry in page2["entries"]}
        assert not keys1 & keys2

    def test_verdicts_page_paginates_the_store(self, console_server):
        _warm_query(console_server)
        body = _get_json(console_server, "/verdicts?format=json&per_page=1")
        assert body["total"] >= 1
        assert len(body["entries"]) == 1
        entry = body["entries"][0]
        assert set(entry) == {"key", "verdict", "name", "seconds"}

    def test_sessions_page_lists_open_sessions(self, console_server):
        with ServiceClient(console_server.address) as client:
            client.mutate(
                "http-console-session",
                scenario="separations",
                instance="2-colorable|cycle6|sequential",
            )
            body = _get_json(console_server, "/sessions?format=json")
        assert "http-console-session" in body["sessions"]

    def test_traces_page_shows_recent_spans(self, console_server):
        _warm_query(console_server)
        body = _get_json(console_server, "/traces?format=json")
        assert body["recorded"] >= 1
        query_traces = [t for t in body["traces"] if t["op"] == "query"]
        assert query_traces
        assert any(span["span"] == "lru" for span in query_traces[0]["spans"])

    def test_unknown_page_is_404(self, console_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(console_server, "/nothing-here")
        assert excinfo.value.code == 404

    def test_unknown_scenario_is_404(self, console_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(console_server, "/scenarios/no-such-scenario")
        assert excinfo.value.code == 404

    def test_bad_pagination_is_400(self, console_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(console_server, "/verdicts?page=zero")
        assert excinfo.value.code == 400


class TestQueryTraceBreakdown:
    def test_warm_query_response_carries_tier_timings(self, console_server):
        cold, warm = _warm_query(console_server)
        cold_spans = [entry["span"] for entry in cold["trace"]]
        warm_spans = [entry["span"] for entry in warm["trace"]]
        assert "lru" in cold_spans
        assert warm_spans[-1] == "lru"  # warm answer came straight from tier 1
        assert all(entry["ms"] >= 0 for entry in warm["trace"])


class TestTop:
    def test_render_is_pure_and_reports_rates(self, console_server):
        _warm_query(console_server)
        first = _get_json(console_server, "/stats")
        _warm_query(console_server)
        second = _get_json(console_server, "/stats")
        frame = render(second, first)
        assert "repro verdict daemon" in frame
        assert "lru" in frame and "coalescer" in frame

    def test_run_top_once_renders_and_exits_zero(self, console_server, capsys):
        host, port = console_server.http_address
        assert run_top(connect=f"{host}:{port}", once=True) == 0
        out = capsys.readouterr().out
        assert "repro verdict daemon" in out

    def test_run_top_unreachable_returns_one(self):
        assert run_top(connect="127.0.0.1:1", once=True) == 1
