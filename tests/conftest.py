"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graphs import generators
from repro.graphs.identifiers import sequential_identifier_assignment


@pytest.fixture
def triangle():
    """The 3-cycle."""
    return generators.cycle_graph(3)


@pytest.fixture
def square():
    """The 4-cycle."""
    return generators.cycle_graph(4)


@pytest.fixture
def five_cycle():
    """The 5-cycle."""
    return generators.cycle_graph(5)


@pytest.fixture
def path4():
    """A path on four nodes."""
    return generators.path_graph(4)


@pytest.fixture
def k4():
    """The complete graph on four nodes."""
    return generators.complete_graph(4)


@pytest.fixture
def all_ones_path():
    """A path whose nodes are all labeled 1."""
    return generators.path_graph(4, labels=["1", "1", "1", "1"])


@pytest.fixture
def one_zero_path():
    """A path with a single 0-labeled node."""
    return generators.path_graph(4, labels=["1", "0", "1", "1"])


def ids_of(graph):
    """Sequential identifiers for a graph (helper, not a fixture)."""
    return sequential_identifier_assignment(graph)
