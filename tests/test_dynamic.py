"""Differential harness for dynamic graphs with verdict repair.

The contract under test: after ANY valid mutation sequence, the repaired
verdict of :class:`repro.engine.dynamic.MutableInstance` is bitwise-equal
to a full recompute (both engine tiers) and to the exhaustive oracle --
and no cache tier (per-node memo, canonical ball signatures, store-backed
node verdicts, content-addressed instance keys) can ever serve a
pre-mutation answer for a post-mutation state.

The hypothesis suites draw *valid* mutations adaptively from the evolving
state (every generated trace is applicable by construction), so shrinking
produces a minimal delta list whose dataclass reprs read as a replayable
counterexample.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.compiled import CompiledGameEngine, CompiledInstance
from repro.engine.canonical import CanonicalVerdictCache
from repro.engine.dynamic import (
    DeltaError,
    EdgeDelete,
    EdgeInsert,
    MutableInstance,
    SetIdentifier,
    SetLabel,
    _connected_without,
    _insert_id_clash,
    delta_from_wire,
    delta_to_wire,
    random_trace,
    recompute_verdict,
)
from repro.graphs import generators
from repro.graphs.identifiers import (
    cyclic_identifier_assignment,
    sequential_identifier_assignment,
    small_identifier_assignment,
)
from repro.hierarchy.certificate_spaces import bit_space, color_space
from repro.hierarchy.game import eve_wins, pi_prefix, sigma_prefix
from repro.machines import builtin
from repro.machines.local_algorithm import NeighborhoodGatherAlgorithm
from repro.sweep.fingerprint import game_instance_key
from repro.sweep.store import MemoryVerdictStore


def _parity_machine():
    """A rule-less gather machine: exercises the generic simulate path."""

    def compute(view):
        ones = sum(
            cert.count("1") for _, certs in view.certificates for cert in certs
        )
        return "1" if ones % 2 == 0 else "0"

    return NeighborhoodGatherAlgorithm(1, compute, name="cert-parity")


#: (machine factory, spaces factory, prefix) combinations for the
#: differential sweep: rule kernels, the label-sensitive decider and a
#: rule-less machine, over both quantifiers.
_GAME_POOL = [
    (builtin.two_colorability_verifier, lambda: [color_space(2)], sigma_prefix(1)),
    (builtin.three_colorability_verifier, lambda: [color_space(3)], sigma_prefix(1)),
    (builtin.all_selected_decider, lambda: [bit_space()], pi_prefix(1)),
    (_parity_machine, lambda: [bit_space()], pi_prefix(1)),
]

_GRAPH_POOL = [
    lambda: generators.cycle_graph(4),
    lambda: generators.cycle_graph(5),
    lambda: generators.path_graph(4),
    lambda: generators.complete_graph(4),
    lambda: generators.star_graph(4),
    lambda: generators.grid_graph(2, 3),
]

_ID_SCHEMES = [
    sequential_identifier_assignment,
    lambda graph: small_identifier_assignment(graph, 1),
]

_LABELS = ("", "1")

_ID_POOL = tuple(format(value, "b") for value in range(16, 24))


def _valid_moves(mutable: MutableInstance):
    """Every delta applicable to the current state (the generator's menu)."""
    moves = []
    adjacency = mutable._adjacency
    ids = mutable._ids
    nodes = mutable.nodes
    for node in nodes:
        current = mutable.graph.label(node)
        moves.extend(
            SetLabel(node=node, label=label) for label in _LABELS if label != current
        )
    for i, u in enumerate(nodes):
        for v in nodes[i + 1 :]:
            if v in adjacency[u]:
                if _connected_without(adjacency, u, v):
                    moves.append(EdgeDelete(u=u, v=v))
            elif _insert_id_clash(adjacency, ids, u, v) is None:
                moves.append(EdgeInsert(u=u, v=v))
    for node in nodes:
        taken = {ids[w] for w in nodes if w != node}
        moves.extend(
            SetIdentifier(node=node, identifier=candidate)
            for candidate in _ID_POOL[:3]
            if candidate != ids[node] and candidate not in taken
        )
    return moves


def _assert_structurally_fresh(mutable: MutableInstance) -> None:
    """The repaired compiled instance must equal a from-scratch compile."""
    repaired = mutable.compiled
    fresh = CompiledInstance(mutable.machine, mutable.graph, mutable._ids)
    assert repaired.adj_indptr == fresh.adj_indptr
    assert repaired.adj_indices == fresh.adj_indices
    assert repaired.degrees == fresh.degrees
    assert repaired.labels == fresh.labels
    assert repaired.ids_list == fresh.ids_list
    assert repaired.direct == fresh.direct
    assert repaired.radius == fresh.radius
    assert repaired.balls == fresh.balls
    assert repaired.ball_sizes == fresh.ball_sizes
    assert [set(d) for d in repaired.dependents] == [set(d) for d in fresh.dependents]


class TestDifferentialRepair:
    """repair == full recompute == exhaustive oracle, on random traces."""

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_random_trace_differential(self, data):
        game_index = data.draw(
            st.integers(min_value=0, max_value=len(_GAME_POOL) - 1), label="game"
        )
        machine_factory, spaces_factory, prefix = _GAME_POOL[game_index]
        graph = data.draw(st.sampled_from(_GRAPH_POOL), label="graph")()
        ids = dict(data.draw(st.sampled_from(_ID_SCHEMES), label="ids")(graph))
        machine = machine_factory()
        spaces = spaces_factory()
        mutable = MutableInstance(machine, graph, ids, spaces, prefix)
        steps = data.draw(st.integers(min_value=1, max_value=4), label="steps")
        applied = []
        for _ in range(steps):
            moves = _valid_moves(mutable)
            if not moves:
                break
            delta = data.draw(st.sampled_from(moves), label="delta")
            applied.append(delta)
            mutable.apply(delta)

            repaired = mutable.verdict()
            snapshot = mutable.as_game_instance()
            bitset = recompute_verdict(snapshot, use_bitset=True)
            compiled = recompute_verdict(snapshot, use_bitset=False)
            oracle = eve_wins(
                machine, snapshot.graph, snapshot.ids, spaces, prefix
            )
            assert repaired == bitset == compiled == oracle, (
                f"divergence after {applied!r}: repair={repaired} "
                f"bitset={bitset} compiled={compiled} oracle={oracle}"
            )
            _assert_structurally_fresh(mutable)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_random_trace_generator_is_always_valid(self, seed):
        """Traces from random_trace apply cleanly and verify at the end."""
        graph = generators.cycle_graph(6)
        ids = sequential_identifier_assignment(graph)
        trace = random_trace(
            graph,
            seed=seed,
            steps=6,
            kinds=("label", "edge", "id"),
            ids=ids,
            id_pool=_ID_POOL,
        )
        machine = builtin.two_colorability_verifier()
        mutable = MutableInstance(
            machine, graph, ids, [color_space(2)], sigma_prefix(1)
        )
        mutable.apply_all(trace)  # DeltaError here = generator bug
        assert mutable.verdict() == recompute_verdict(mutable.as_game_instance())

    def test_two_level_prefix_differential(self):
        """Repair stays correct for a two-quantifier game."""
        graph = generators.cycle_graph(4)
        ids = sequential_identifier_assignment(graph)
        machine = builtin.two_colorability_verifier()
        spaces = [color_space(2), bit_space()]
        prefix = sigma_prefix(2)
        mutable = MutableInstance(machine, graph, ids, spaces, prefix)
        nodes = graph.nodes
        for delta in (
            SetLabel(node=nodes[0], label="1"),
            EdgeInsert(u=nodes[0], v=nodes[2]),
            EdgeDelete(u=nodes[0], v=nodes[1]),
        ):
            mutable.apply(delta)
            assert mutable.verdict() == recompute_verdict(
                mutable.as_game_instance()
            ), delta


class TestMutationValidation:
    """Invalid deltas are typed errors and never corrupt state."""

    def _mutable(self):
        graph = generators.cycle_graph(6)
        ids = sequential_identifier_assignment(graph)
        return MutableInstance(
            builtin.two_colorability_verifier(),
            graph,
            ids,
            [color_space(2)],
            sigma_prefix(1),
        )

    def test_rejections(self):
        mutable = self._mutable()
        nodes = mutable.nodes
        before_key = mutable.key()
        cases = [
            EdgeInsert(u=nodes[0], v=nodes[1]),  # duplicate edge
            EdgeDelete(u=nodes[0], v=nodes[3]),  # missing edge
            EdgeInsert(u=nodes[0], v=nodes[0]),  # self-loop
            SetLabel(node=nodes[0], label="2x"),  # not a bit string
            SetLabel(node="zz", label="1"),  # unknown node
            SetIdentifier(node=nodes[1], identifier=mutable.ids[nodes[2]]),  # id clash
        ]
        for delta in cases:
            with pytest.raises((DeltaError, ValueError)):
                mutable.apply(delta)
        assert mutable.key() == before_key  # nothing leaked into the state

    def test_bridge_deletion_rejected(self):
        graph = generators.path_graph(3)
        mutable = MutableInstance(
            builtin.two_colorability_verifier(),
            graph,
            sequential_identifier_assignment(graph),
            [color_space(2)],
            sigma_prefix(1),
        )
        with pytest.raises(DeltaError):
            mutable.apply(EdgeDelete(u=graph.nodes[0], v=graph.nodes[1]))

    def test_insert_rejected_on_identifier_clash(self):
        """An edge pulling equal ids within distance 2 breaks the model."""
        graph = generators.cycle_graph(8)
        ids = dict(sequential_identifier_assignment(graph))
        nodes = graph.nodes
        ids[nodes[4]] = ids[nodes[0]]  # duplicate at distance 4: still legal
        mutable = MutableInstance(
            builtin.two_colorability_verifier(),
            graph,
            ids,
            [color_space(2)],
            sigma_prefix(1),
        )
        with pytest.raises(DeltaError):
            mutable.apply(EdgeInsert(u=nodes[0], v=nodes[4]))

    def test_noop_deltas_do_not_invalidate(self):
        mutable = self._mutable()
        node = mutable.nodes[0]
        mutable.verdict()
        key = mutable.key()
        report = mutable.apply(SetLabel(node=node, label=mutable.graph.label(node)))
        assert not report.changed and report.dirty == ()
        assert mutable.key() == key
        assert mutable.info()["noops"] == 1

    def test_apply_batch_is_atomic(self):
        mutable = self._mutable()
        nodes = mutable.nodes
        key = mutable.key()
        labels_before = dict(mutable.graph.labels)
        with pytest.raises(DeltaError):
            mutable.apply_batch(
                [
                    SetLabel(node=nodes[0], label="1"),  # valid
                    EdgeInsert(u=nodes[2], v=nodes[3]),  # duplicate edge
                ]
            )
        assert dict(mutable.graph.labels) == labels_before
        assert mutable.key() == key
        assert mutable.verdict() == recompute_verdict(mutable.as_game_instance())

    def test_full_rebuild_on_direct_flip(self):
        """Identifier churn breaking horizon-uniqueness widens to everything."""
        graph = generators.cycle_graph(12)
        ids = dict(sequential_identifier_assignment(graph))
        nodes = graph.nodes
        ids[nodes[6]] = ids[nodes[0]]  # duplicates at distance 6: direct still ok
        mutable = MutableInstance(
            builtin.two_colorability_verifier(),
            graph,
            ids,
            [color_space(2)],
            sigma_prefix(1),
        )
        assert mutable.compiled.direct
        # The chord pulls the duplicate pair within the gather horizon.
        report = mutable.apply(EdgeInsert(u=nodes[1], v=nodes[7]))
        assert not mutable.compiled.direct
        assert report.full_rebuild
        assert len(report.dirty) == len(nodes)
        assert mutable.verdict() == recompute_verdict(mutable.as_game_instance())


class TestWireDeltas:
    def test_round_trip(self):
        graph = generators.cycle_graph(4)
        nodes = graph.nodes
        deltas = [
            EdgeInsert(u=nodes[0], v=nodes[2]),
            EdgeDelete(u=nodes[0], v=nodes[1]),
            SetLabel(node=nodes[2], label="1"),
            SetIdentifier(node=nodes[3], identifier="10110"),
        ]
        for delta in deltas:
            wire = delta_to_wire(delta, nodes)
            assert delta_from_wire(wire, nodes) == delta

    def test_malformed_wire_bodies(self):
        nodes = generators.cycle_graph(4).nodes
        bad = [
            {"kind": "warp"},
            {"kind": "edge-insert", "u": 0},
            {"kind": "edge-insert", "u": 0, "v": 99},
            {"kind": "edge-insert", "u": True, "v": 1},
            {"kind": "edge-insert", "u": -1, "v": 1},
            {"kind": "set-label", "node": 0, "label": 3},
            {"kind": "set-id", "node": 0},
        ]
        for body in bad:
            with pytest.raises(DeltaError):
                delta_from_wire(body, nodes)


class TestCacheFreshness:
    """No tier may serve a pre-mutation verdict for a post-mutation state."""

    def test_content_addressed_key_tracks_mutations(self):
        """The instance key changes with every effective delta and returns
        on revert -- the invariant shielding the service LRU/store tiers."""
        graph = generators.cycle_graph(6)
        ids = sequential_identifier_assignment(graph)
        mutable = MutableInstance(
            builtin.two_colorability_verifier(),
            graph,
            ids,
            [color_space(2)],
            sigma_prefix(1),
        )
        nodes = graph.nodes
        original = mutable.key()
        assert original == game_instance_key(mutable.as_game_instance())
        mutable.apply(EdgeInsert(u=nodes[0], v=nodes[2]))
        chorded = mutable.key()
        assert chorded != original
        mutable.apply(SetLabel(node=nodes[1], label="1"))
        labeled = mutable.key()
        assert labeled not in (original, chorded)
        mutable.apply(SetLabel(node=nodes[1], label=""))
        mutable.apply(EdgeDelete(u=nodes[0], v=nodes[2]))
        assert mutable.key() == original

    def test_warm_canonical_cache_survives_verdict_flips(self):
        """A chord flips 2-colorability; warm ball verdicts must not leak."""
        graph = generators.cycle_graph(8)
        ids = cyclic_identifier_assignment(graph, period=4)  # simulate path
        cache = CanonicalVerdictCache()
        mutable = MutableInstance(
            builtin.two_colorability_verifier(),
            graph,
            ids,
            [color_space(2)],
            sigma_prefix(1),
            canonical=cache,
        )
        nodes = graph.nodes
        assert mutable.verdict() is True
        assert cache.info()["entries"] > 0  # the cache is actually in play
        mutable.apply(EdgeInsert(u=nodes[0], v=nodes[2]))
        assert mutable.verdict() is False  # stale ball verdicts would flip this
        mutable.apply(EdgeDelete(u=nodes[0], v=nodes[2]))
        assert mutable.verdict() is True

    def test_label_flip_invalidates_intersecting_balls(self):
        """A label-sensitive game under warm caches, flipped back and forth."""
        graph = generators.path_graph(4, labels=["1", "1", "1", "1"])
        ids = small_identifier_assignment(graph, 1)
        cache = CanonicalVerdictCache()
        mutable = MutableInstance(
            builtin.all_selected_decider(),
            graph,
            ids,
            [bit_space()],
            pi_prefix(1),
            canonical=cache,
        )
        node = graph.nodes[1]
        first = mutable.verdict()
        assert first == recompute_verdict(mutable.as_game_instance())
        mutable.apply(SetLabel(node=node, label="0"))
        flipped = mutable.verdict()
        assert flipped == recompute_verdict(mutable.as_game_instance())
        assert flipped != first  # the flip is observable, not masked by a cache
        mutable.apply(SetLabel(node=node, label="1"))
        assert mutable.verdict() == first

    def test_store_backed_node_verdicts_stay_fresh(self):
        """Ball verdicts persisted before a mutation must not answer for a
        mutated ball (signatures embed ball-local labels/ids/edges)."""
        graph = generators.cycle_graph(8)
        ids = cyclic_identifier_assignment(graph, period=4)
        machine = builtin.two_colorability_verifier()
        store = MemoryVerdictStore()

        seed_cache = CanonicalVerdictCache(store=store)
        seeded = MutableInstance(
            machine, graph, ids, [color_space(2)], sigma_prefix(1),
            canonical=seed_cache,
        )
        assert seeded.verdict() is True
        seed_cache.flush()
        assert store.node_count() > 0

        warm_cache = CanonicalVerdictCache(store=store)
        mutable = MutableInstance(
            machine, graph, ids, [color_space(2)], sigma_prefix(1),
            canonical=warm_cache,
        )
        nodes = graph.nodes
        mutable.apply(EdgeInsert(u=nodes[0], v=nodes[2]))
        assert mutable.verdict() is False
        mutable.apply(EdgeDelete(u=nodes[0], v=nodes[2]))
        assert mutable.verdict() is True
        assert warm_cache.info()["store_hits"] > 0  # the store tier was used

    def test_clean_node_memos_survive_repair(self):
        """The point of repair: memoized verdicts outside the dirty set live."""
        graph = generators.cycle_graph(16)
        ids = cyclic_identifier_assignment(graph, period=4)
        mutable = MutableInstance(
            builtin.two_colorability_verifier(),
            graph,
            ids,
            [color_space(2)],
            sigma_prefix(1),
        )
        mutable.verdict()
        compiled = mutable.compiled
        entries_before = compiled.memo_entries
        assert entries_before > 0
        report = mutable.apply(SetLabel(node=graph.nodes[0], label="1"))
        assert 0 < len(report.dirty) < len(graph.nodes)
        assert compiled.memo_invalidations > 0
        assert compiled.memo_entries > 0  # clean nodes kept their memos
        assert compiled.memo_entries < entries_before
        clean = [u for u in range(compiled.n) if u not in report.dirty]
        assert any(compiled.memo_nodes[u] for u in clean)
        assert mutable.verdict() == recompute_verdict(mutable.as_game_instance())


class TestAlphabetCompaction:
    """CodedState rebase under *shrinking* alphabets (the PR-6 fix)."""

    def _instance(self):
        graph = generators.cycle_graph(4)
        ids = sequential_identifier_assignment(graph)
        return CompiledInstance(builtin.two_colorability_verifier(), graph, ids)

    def test_compaction_renumbers_and_snapshots(self):
        instance = self._instance()
        for value in range(6):
            instance.intern(format(value, "03b"))
        keep = {"000", "011"}
        generation = instance.generation
        dropped = instance.compact_alphabet(keep)
        assert dropped == 4
        assert instance.alphabet == ["", "000", "011"]
        assert instance.generation == generation + 1
        assert instance.generation in instance._compaction_alphabets
        # Codes are dense again and the pair table / memo were cleared.
        assert instance.code_of == {"": 0, "000": 1, "011": 2}
        assert instance.memo_entries == 0

    def test_stale_state_reinterns_through_snapshot(self):
        instance = self._instance()
        codes = [instance.intern(s) for s in ("000", "001", "010", "011")]
        state = instance.new_state(1)
        carried = ["011", "001", "010", "000"]
        for v, certificate in enumerate(carried):
            state.set_code(0, v, instance.code_of[certificate])
        stale_keys = list(state.keys)
        instance.compact_alphabet({"001", "011"})  # drops 000 and 010
        state.sync()
        # The *strings* survive: dropped certificates were re-interned.
        decoded = [instance.alphabet[code] for code in state.codes[0]]
        assert decoded == carried
        # The packed keys equal a from-scratch state carrying the same
        # certificates -- stale integers cannot have leaked through.
        fresh = instance.new_state(1)
        for v, certificate in enumerate(carried):
            fresh.set_code(0, v, instance.code_of[certificate])
        assert state.keys == fresh.keys
        assert state.keys != stale_keys or instance.shift == 4

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_shrink_rebase_property(self, data):
        """Hypothesis pin: compaction never corrupts a live CodedState."""
        instance = self._instance()
        universe = ["0", "1", "00", "01", "10", "11", "000", "111"]
        interned = data.draw(
            st.lists(st.sampled_from(universe), min_size=1, max_size=8, unique=True),
            label="interned",
        )
        for certificate in interned:
            instance.intern(certificate)
        carried = data.draw(
            st.lists(
                st.sampled_from([""] + interned),
                min_size=instance.n,
                max_size=instance.n,
            ),
            label="carried",
        )
        state = instance.new_state(1)
        for v, certificate in enumerate(carried):
            state.set_code(0, v, instance.code_of[certificate])
        keep = set(
            data.draw(
                st.lists(st.sampled_from(interned), max_size=len(interned)),
                label="keep",
            )
        )
        instance.compact_alphabet(keep)
        state.sync()
        decoded = [instance.alphabet[code] for code in state.codes[0]]
        assert decoded == carried
        fresh = instance.new_state(1)
        for v, certificate in enumerate(carried):
            fresh.set_code(0, v, instance.code_of[certificate])
        assert state.keys == fresh.keys
        assert state.generation == instance.generation

    def test_mutable_instance_compacts_stranded_codes(self):
        """Once churn strands most codes, the next repair compacts -- and
        the verdict is unchanged (compaction is semantics-preserving)."""
        graph = generators.cycle_graph(6)
        ids = sequential_identifier_assignment(graph)
        mutable = MutableInstance(
            builtin.two_colorability_verifier(),
            graph,
            ids,
            [color_space(2)],
            sigma_prefix(1),
        )
        before = mutable.verdict()
        # Strand a pile of codes, the way an identifier-dependent candidate
        # space does after heavy id churn (its old alphabets stay interned).
        for value in range(64):
            mutable.compiled.intern(format(value, "07b"))
        node = graph.nodes[0]
        mutable.apply(SetLabel(node=node, label="1"))
        after = mutable.verdict()  # repair path: compaction happens here
        assert mutable.info()["compactions"] == 1
        assert len(mutable.compiled.alphabet) <= len(["", "0", "1"])
        assert after == recompute_verdict(mutable.as_game_instance())
        mutable.apply(SetLabel(node=node, label=""))
        assert mutable.verdict() == before
