"""Tests for the tiling-system-to-logic translation (Corollary 33)."""

from __future__ import annotations

import itertools

import pytest

from repro.logic.fragments import classify_local_second_order, is_monadic
from repro.logic.semantics import EvaluationOptions, evaluate
from repro.pictures.automata import all_ones_dfa, parity_dfa
from repro.pictures.mso import (
    formula_agrees_with_system,
    legal_tiling,
    one_state,
    state_variable,
    tiling_sentence,
)
from repro.pictures.picture import Picture, picture_structure
from repro.pictures.tiling import BORDER, TilingSystem
from repro.pictures.word_tilings import nfa_to_tiling_system
from repro.pictures.words import word_to_picture

OPTIONS = EvaluationOptions(candidate_limit=64)


def tiny_single_state_system() -> TilingSystem:
    """Accepts exactly the pictures whose entries are all ``1`` (one state)."""
    cell = ("1", "q")
    tiles = set()
    for window in itertools.product([BORDER, cell], repeat=4):
        if any(entry == cell for entry in window):
            tiles.add(tuple(window))
    return TilingSystem.build(bits=1, states=["q"], tiles=tiles)


def all_word_pictures(max_length: int):
    pictures = []
    for length in range(1, max_length + 1):
        for bits in itertools.product("01", repeat=length):
            pictures.append(word_to_picture("".join(bits)))
    return pictures


class TestSentenceShape:
    def test_sentence_is_existential_monadic_local(self):
        sentence = tiling_sentence(tiny_single_state_system())
        assert is_monadic(sentence)
        logic_class = classify_local_second_order(sentence)
        assert logic_class is not None
        assert "Sigma" in str(logic_class) or getattr(logic_class, "kind", "Sigma") == "Sigma"

    def test_state_variable_is_unary(self):
        assert state_variable("q").arity == 1

    def test_one_state_requires_membership(self):
        # A single pixel, a single state: the pixel must lie in X_q.
        picture = Picture(bits=1, rows=(("1",),))
        structure = picture_structure(picture)
        pixel = structure.domain[0]
        formula = one_state("x", ["q"])
        assert evaluate(structure, formula, {"x": pixel, state_variable("q"): frozenset({(pixel,)})})
        assert not evaluate(structure, formula, {"x": pixel, state_variable("q"): frozenset()})

    def test_one_state_excludes_double_membership(self):
        picture = Picture(bits=1, rows=(("1",),))
        structure = picture_structure(picture)
        pixel = structure.domain[0]
        formula = one_state("x", ["q", "r"])
        both = {
            "x": pixel,
            state_variable("q"): frozenset({(pixel,)}),
            state_variable("r"): frozenset({(pixel,)}),
        }
        assert not evaluate(structure, formula, both)


class TestFormulaAgreesWithRecognizer:
    def test_single_state_all_ones_system(self):
        system = tiny_single_state_system()
        pictures = [
            Picture(bits=1, rows=(("1",),)),
            Picture(bits=1, rows=(("0",),)),
            Picture(bits=1, rows=(("1", "1"),)),
            Picture(bits=1, rows=(("1", "0"),)),
            Picture(bits=1, rows=(("1",), ("1",))),
            Picture(bits=1, rows=(("1", "1"), ("1", "1"))),
            Picture(bits=1, rows=(("1", "1"), ("1", "0"))),
        ]
        agree, disagreements = formula_agrees_with_system(system, pictures, OPTIONS)
        assert agree, f"formula and recognizer disagree on {disagreements}"

    def test_all_ones_word_system(self):
        system = nfa_to_tiling_system(all_ones_dfa().to_nfa())
        pictures = all_word_pictures(2)
        agree, disagreements = formula_agrees_with_system(system, pictures, OPTIONS)
        assert agree, f"formula and recognizer disagree on {disagreements}"

    def test_parity_word_system(self):
        system = nfa_to_tiling_system(parity_dfa().to_nfa())
        pictures = all_word_pictures(2)
        agree, disagreements = formula_agrees_with_system(system, pictures, OPTIONS)
        assert agree, f"formula and recognizer disagree on {disagreements}"


class TestLegalTiling:
    def test_empty_tile_set_rejects_everything(self):
        system = TilingSystem.build(bits=1, states=["q"], tiles=[])
        picture = Picture(bits=1, rows=(("1",),))
        structure = picture_structure(picture)
        pixel = structure.domain[0]
        formula = legal_tiling("x", system)
        assert not evaluate(
            structure, formula, {"x": pixel, state_variable("q"): frozenset({(pixel,)})}
        )
