"""Tests for pictures, tiling systems and the picture-to-graph encoding (Section 9.2)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.pictures import (
    BORDER,
    Picture,
    TilingSystem,
    all_ones_system,
    grid_graph_to_picture,
    has_one_in_top_row,
    is_all_ones_picture,
    is_square_picture,
    picture_structure,
    picture_to_grid_graph,
    square_pictures_system,
    top_row_has_one_system,
)
import repro.properties as props


def all_pictures(height, width):
    """All 1-bit pictures of the given size."""
    for choice in itertools.product("01", repeat=height * width):
        rows = [tuple(choice[r * width : (r + 1) * width]) for r in range(height)]
        yield Picture(bits=1, rows=tuple(rows))


class TestPicture:
    def test_validation(self):
        with pytest.raises(ValueError):
            Picture(bits=1, rows=())
        with pytest.raises(ValueError):
            Picture(bits=1, rows=(("0", "1"), ("0",)))
        with pytest.raises(ValueError):
            Picture(bits=2, rows=(("0",),))

    def test_figure14_structure(self):
        picture = Picture.from_rows([["00", "01", "00", "01"], ["10", "11", "10", "11"], ["00", "01", "00", "01"]])
        structure = picture_structure(picture)
        assert structure.cardinality() == 12
        assert structure.signature == (2, 2)
        # Vertical successor: (0,0) -> (1,0); horizontal: (0,0) -> (0,1).
        assert structure.in_binary(1, (0, 0), (1, 0))
        assert structure.in_binary(2, (0, 0), (0, 1))
        assert not structure.in_binary(1, (0, 0), (0, 1))
        # The second bit of the entry at (0, 1) is 1.
        assert (0, 1) in structure.unary(2)
        assert (0, 0) not in structure.unary(1)

    def test_constant_picture(self):
        picture = Picture.constant(2, 3, "1")
        assert picture.size() == (2, 3)
        assert is_all_ones_picture(picture)


class TestTilingSystems:
    def test_build_validation(self):
        with pytest.raises(ValueError):
            TilingSystem.build(1, ["q"], [(("1", "missing"), BORDER, BORDER, BORDER)])

    def test_all_ones_system_exact(self):
        system = all_ones_system()
        for height in (1, 2, 3):
            for width in (1, 2):
                for picture in all_pictures(height, width):
                    assert system.accepts(picture) == is_all_ones_picture(picture)

    def test_top_row_system_exact(self):
        system = top_row_has_one_system()
        for height in (1, 2):
            for width in (1, 2, 3):
                for picture in all_pictures(height, width):
                    assert system.accepts(picture) == has_one_in_top_row(picture)

    def test_square_system_on_rectangles(self):
        system = square_pictures_system()
        for height in range(1, 5):
            for width in range(1, 5):
                picture = Picture.constant(height, width, "0")
                assert system.accepts(picture) == is_square_picture(picture), (height, width)

    def test_square_system_ignores_entries(self):
        system = square_pictures_system()
        for picture in all_pictures(2, 2):
            assert system.accepts(picture)

    def test_accepting_assignment_is_returned(self):
        system = all_ones_system()
        picture = Picture.constant(2, 2, "1")
        assignment = system.accepting_assignment(picture)
        assert assignment is not None
        assert set(assignment) == set(picture.pixels())

    def test_recognized_sample(self):
        system = all_ones_system()
        accepted = system.recognized_sample(heights=[1, 2], widths=[1], entries=["0", "1"])
        assert len(accepted) == 2  # the 1x1 and 2x1 all-ones pictures


class TestGridEncoding:
    def test_round_trip_figure14(self):
        picture = Picture.from_rows([["00", "01", "00", "01"], ["10", "11", "10", "11"], ["00", "01", "00", "01"]])
        graph = picture_to_grid_graph(picture)
        assert grid_graph_to_picture(graph) == picture

    def test_encoding_has_bounded_structural_degree(self):
        picture = Picture.constant(4, 5, "10")
        graph = picture_to_grid_graph(picture)
        assert props.bounded_structural_degree(graph, 4 + 2 + 2)

    def test_decoding_rejects_non_grids(self):
        from repro.graphs import generators

        with pytest.raises(ValueError):
            grid_graph_to_picture(generators.cycle_graph(5))

    @settings(max_examples=20, deadline=None)
    @given(
        height=st.integers(min_value=1, max_value=3),
        width=st.integers(min_value=1, max_value=3),
        data=st.data(),
    )
    def test_round_trip_property(self, height, width, data):
        rows = []
        for _ in range(height):
            rows.append(
                tuple(data.draw(st.sampled_from(["0", "1"])) for _ in range(width))
            )
        picture = Picture(bits=1, rows=tuple(rows))
        assert grid_graph_to_picture(picture_to_grid_graph(picture)) == picture
