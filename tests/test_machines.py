"""Tests for the distributed Turing machines and the LOCAL simulator (Section 4)."""

import pytest

from repro.graphs import generators
from repro.graphs.identifiers import sequential_identifier_assignment, small_identifier_assignment
from repro.machines import builtin, execute
from repro.machines.interface import NodeInput
from repro.machines.local_algorithm import NeighborhoodGatherAlgorithm, gather_view
from repro.machines.turing import (
    DistributedTuringMachine,
    Tape,
    accept_machine,
    label_is_one_machine,
)


class TestTape:
    def test_left_end_marker_is_protected(self):
        tape = Tape("01")
        tape.write("1")
        assert tape.cells[0] == "⊢"

    def test_content_strips_markers_and_blanks(self):
        tape = Tape("01")
        tape.head = 3
        tape.write("□")
        assert tape.content() == "01"

    def test_move_never_goes_left_of_zero(self):
        tape = Tape("")
        tape.move(-1)
        assert tape.head == 0


class TestTuringMachines:
    def test_accept_machine_accepts_everything(self, path4):
        ids = sequential_identifier_assignment(path4)
        result = execute(accept_machine(), path4, ids)
        assert result.accepts()
        assert all(label == "1" for label in result.outputs.values())

    def test_label_is_one_machine_decides_all_selected(self):
        machine = label_is_one_machine()
        yes = generators.path_graph(4, labels=["1"] * 4)
        no = generators.path_graph(4, labels=["1", "0", "1", "1"])
        long_label = generators.path_graph(2, labels=["11", "1"])
        ids4 = sequential_identifier_assignment(yes)
        assert execute(machine, yes, ids4).accepts()
        assert not execute(machine, no, ids4).accepts()
        ids2 = sequential_identifier_assignment(long_label)
        assert not execute(machine, long_label, ids2).accepts()

    def test_turing_machine_runs_in_constant_rounds(self, five_cycle):
        ids = sequential_identifier_assignment(five_cycle)
        result = execute(label_is_one_machine(), five_cycle.with_uniform_label("1"), ids)
        assert result.rounds_used == 1

    def test_step_limit_guards_against_runaway(self):
        # A machine that never halts: whatever the three heads read, keep
        # moving the internal head right (the table must cover *every*
        # symbol triple -- missing entries mean "halt by convention").
        import itertools

        transitions = {}
        for symbols in itertools.product(("⊢", "□", "#", "0", "1"), repeat=3):
            transitions[("q_start", *symbols)] = (
                "q_start",
                *symbols,
                0,
                1,
                0,
            )
        machine = DistributedTuringMachine(["q_start"], transitions, rounds=1, step_limit=50)
        graph = generators.single_node("")
        ids = sequential_identifier_assignment(graph)
        with pytest.raises(RuntimeError):
            execute(machine, graph, ids)

    def test_invalid_transition_symbols_rejected(self):
        with pytest.raises(ValueError):
            from repro.machines.turing import TuringTransition

            TuringTransition("q_start", ("x", "0", "1"), "q_stop", ("0", "0", "0"), (0, 0, 0))


class TestSimulator:
    def test_acceptance_by_unanimity(self, one_zero_path):
        ids = sequential_identifier_assignment(one_zero_path)
        result = execute(builtin.all_selected_decider(), one_zero_path, ids)
        verdicts = result.verdicts()
        assert sum(1 for accepted in verdicts.values() if not accepted) == 1
        assert result.rejects()

    def test_result_graph_has_same_topology(self, all_ones_path):
        ids = sequential_identifier_assignment(all_ones_path)
        result = execute(builtin.all_selected_decider(), all_ones_path, ids)
        output = result.result_graph()
        assert output.edges == all_ones_path.edges
        assert all(output.label(u) == "1" for u in output.nodes)

    def test_local_uniqueness_check(self):
        graph = generators.cycle_graph(6)
        bad_ids = {u: "0" for u in graph.nodes}
        with pytest.raises(ValueError):
            execute(builtin.all_selected_decider(), graph, bad_ids, check_local_uniqueness_radius=1)

    def test_message_statistics_are_recorded(self, five_cycle):
        ids = sequential_identifier_assignment(five_cycle)
        result = execute(NeighborhoodGatherAlgorithm(1, lambda view: "1"), five_cycle, ids)
        assert result.message_volume > 0
        assert result.max_message_length > 0
        assert len(result.messages_per_round) == result.rounds_used


class TestNeighborhoodGathering:
    def test_gathered_view_matches_oracle(self):
        graph = generators.random_connected_graph(7, seed=3, labels=None)
        graph = graph.relabel({u: format(i, "b") for i, u in enumerate(graph.nodes)})
        ids = sequential_identifier_assignment(graph)
        observed = {}

        def record(view):
            observed[view.center] = view
            return "1"

        execute(NeighborhoodGatherAlgorithm(2, record), graph, ids)
        for node in graph.nodes:
            expected = gather_view(graph, ids, node, 2)
            actual = observed[ids[node]]
            assert actual.nodes == expected.nodes
            assert actual.edges == expected.edges
            assert actual.labels == expected.labels
            assert actual.distances == expected.distances

    def test_radius_zero_view_contains_only_center(self, five_cycle):
        ids = sequential_identifier_assignment(five_cycle)
        sizes = []
        execute(
            NeighborhoodGatherAlgorithm(0, lambda view: sizes.append(view.size()) or "1"),
            five_cycle,
            ids,
        )
        assert sizes == [1] * 5

    def test_certificates_visible_in_view(self, triangle):
        ids = sequential_identifier_assignment(triangle)
        nodes = list(triangle.nodes)
        certificate = {nodes[0]: "11", nodes[1]: "00", nodes[2]: "01"}
        seen = {}

        def record(view):
            seen[view.center] = view.center_certificates()
            return "1"

        execute(NeighborhoodGatherAlgorithm(1, record), triangle, ids, [certificate])
        assert seen[ids[nodes[0]]] == ("11",)


class TestBuiltinMachines:
    def test_eulerian_decider(self):
        ids_cycle = sequential_identifier_assignment(generators.cycle_graph(6))
        assert execute(builtin.eulerian_decider(), generators.cycle_graph(6), ids_cycle).accepts()
        path = generators.path_graph(4)
        assert not execute(
            builtin.eulerian_decider(), path, sequential_identifier_assignment(path)
        ).accepts()

    def test_coloring_label_verifier(self):
        graph = generators.cycle_graph(4, labels=["0", "1", "0", "1"])
        ids = sequential_identifier_assignment(graph)
        assert execute(builtin.coloring_label_verifier(2), graph, ids).accepts()
        bad = generators.cycle_graph(4, labels=["0", "0", "0", "1"])
        assert not execute(builtin.coloring_label_verifier(2), bad, ids).accepts()

    def test_three_colorability_verifier_with_certificates(self, triangle):
        ids = sequential_identifier_assignment(triangle)
        nodes = list(triangle.nodes)
        good = {nodes[0]: "00", nodes[1]: "01", nodes[2]: "10"}
        bad = {u: "00" for u in nodes}
        malformed = {u: "11" for u in nodes}  # 3 is not a color
        assert execute(builtin.three_colorability_verifier(), triangle, ids, [good]).accepts()
        assert not execute(builtin.three_colorability_verifier(), triangle, ids, [bad]).accepts()
        assert not execute(builtin.three_colorability_verifier(), triangle, ids, [malformed]).accepts()

    def test_constant_algorithm(self, path4):
        ids = sequential_identifier_assignment(path4)
        assert execute(builtin.constant_algorithm("1"), path4, ids).accepts()
        assert not execute(builtin.constant_algorithm("0"), path4, ids).accepts()

    def test_node_input_helpers(self):
        node_input = NodeInput(node="u", label="10", identifier="01", certificates=("1", ""), degree=2)
        assert node_input.certificate_list_string() == "1#"
        assert node_input.internal_tape_content() == "10#01#1#"
