"""Tests for the NFA/tiling-system correspondence and tiling-system closure operations."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pictures.automata import (
    all_ones_dfa,
    contains_factor_nfa,
    dfa_from_nfa,
    divisibility_dfa,
    parity_dfa,
)
from repro.pictures.closure import (
    intersection_system,
    project_picture,
    projection_system,
    systems_agree_on,
    transpose_picture,
    transpose_system,
    union_system,
)
from repro.pictures.languages import all_ones_system, is_all_ones_picture
from repro.pictures.picture import Picture
from repro.pictures.word_tilings import (
    agree_on_words,
    nfa_to_tiling_system,
    tiling_system_accepts_word,
    tiling_system_to_nfa,
)

words = st.text(alphabet="01", min_size=1, max_size=6)


def small_pictures(bits: int = 1, max_height: int = 2, max_width: int = 2):
    """All pictures with the given bit width up to the given size."""
    entries = ["".join(choice) for choice in itertools.product("01", repeat=bits)]
    pictures = []
    for height in range(1, max_height + 1):
        for width in range(1, max_width + 1):
            for choice in itertools.product(entries, repeat=height * width):
                rows = tuple(
                    tuple(choice[row * width : (row + 1) * width]) for row in range(height)
                )
                pictures.append(Picture(bits=bits, rows=rows))
    return pictures


# ----------------------------------------------------------------------
# NFA -> tiling system
# ----------------------------------------------------------------------
class TestNfaToTilingSystem:
    @given(words)
    @settings(max_examples=40, deadline=None)
    def test_parity_language(self, word):
        system = nfa_to_tiling_system(parity_dfa().to_nfa())
        assert tiling_system_accepts_word(system, word) == parity_dfa().accepts(word)

    @given(words)
    @settings(max_examples=40, deadline=None)
    def test_all_ones_language(self, word):
        system = nfa_to_tiling_system(all_ones_dfa().to_nfa())
        assert tiling_system_accepts_word(system, word) == all_ones_dfa().accepts(word)

    @given(words)
    @settings(max_examples=25, deadline=None)
    def test_factor_language(self, word):
        nfa = contains_factor_nfa("01")
        system = nfa_to_tiling_system(nfa)
        assert tiling_system_accepts_word(system, word) == nfa.accepts(word)

    def test_rejects_multi_row_pictures_appropriately(self):
        # The constructed system constrains only one-row pictures; it is still
        # a perfectly valid tiling system on taller pictures, but its language
        # restricted to words is what the correspondence is about.
        system = nfa_to_tiling_system(all_ones_dfa().to_nfa())
        assert tiling_system_accepts_word(system, "111")
        assert not tiling_system_accepts_word(system, "101")


# ----------------------------------------------------------------------
# Tiling system -> NFA (round trip)
# ----------------------------------------------------------------------
class TestTilingSystemToNfa:
    @pytest.mark.parametrize(
        "dfa",
        [parity_dfa(), all_ones_dfa(), divisibility_dfa(3)],
        ids=["parity", "all-ones", "div3"],
    )
    def test_round_trip_preserves_word_language(self, dfa):
        system = nfa_to_tiling_system(dfa.to_nfa())
        recovered = tiling_system_to_nfa(system)
        sample = ["0", "1", "01", "10", "11", "000", "111", "0101", "1111", "11011"]
        agree, disagreements = agree_on_words(system, recovered, sample)
        assert agree, f"round trip changed the language on {disagreements}"
        for word in sample:
            assert recovered.accepts(word) == dfa.accepts(word)

    def test_determinization_of_recovered_nfa(self):
        system = nfa_to_tiling_system(parity_dfa().to_nfa())
        recovered = dfa_from_nfa(tiling_system_to_nfa(system))
        for word in ["1", "11", "101", "1001", "10101"]:
            assert recovered.accepts(word) == parity_dfa().accepts(word)


# ----------------------------------------------------------------------
# Closure operations
# ----------------------------------------------------------------------
class TestClosureOperations:
    def test_union_on_word_systems(self):
        parity = nfa_to_tiling_system(parity_dfa().to_nfa())
        ones = nfa_to_tiling_system(all_ones_dfa().to_nfa())
        union = union_system(parity, ones)
        for word in ["1", "10", "11", "101", "110", "000"]:
            expected = parity_dfa().accepts(word) or all_ones_dfa().accepts(word)
            assert tiling_system_accepts_word(union, word) == expected

    def test_intersection_on_word_systems(self):
        parity = nfa_to_tiling_system(parity_dfa().to_nfa())
        ones = nfa_to_tiling_system(all_ones_dfa().to_nfa())
        intersection = intersection_system(parity, ones)
        for word in ["1", "10", "11", "111", "1111", "101"]:
            expected = parity_dfa().accepts(word) and all_ones_dfa().accepts(word)
            assert tiling_system_accepts_word(intersection, word) == expected

    def test_union_requires_matching_bits(self):
        from repro.pictures.tiling import TilingSystem

        two_bit_system = TilingSystem.build(bits=2, states=["q"], tiles=[])
        with pytest.raises(ValueError):
            union_system(two_bit_system, nfa_to_tiling_system(parity_dfa().to_nfa()))

    def test_transpose_picture(self):
        picture = Picture(bits=1, rows=(("0", "1"), ("1", "1")))
        transposed = transpose_picture(picture)
        assert transposed.entry(0, 1) == picture.entry(1, 0)
        assert transpose_picture(transposed) == picture

    def test_transpose_system_recognizes_transposed_pictures(self):
        system = nfa_to_tiling_system(all_ones_dfa().to_nfa())
        transposed = transpose_system(system)
        for picture in small_pictures(max_height=2, max_width=2):
            assert transposed.accepts(picture) == system.accepts(transpose_picture(picture))

    def test_projection_maps_the_language(self):
        # Projecting every entry of the all-ones language to "0" yields exactly
        # the all-zero pictures: a projected picture is accepted iff it is the
        # image of an accepted picture of the same shape.
        system = all_ones_system()
        projected = projection_system(system, lambda entry: "0", target_bits=1)
        for picture in small_pictures(max_height=2, max_width=2):
            expected = all(entry == "0" for row in picture.rows for entry in row)
            assert projected.accepts(picture) == expected

    def test_projection_validates_target(self):
        with pytest.raises(ValueError):
            projection_system(all_ones_system(), lambda entry: "ab", target_bits=2)

    def test_project_picture(self):
        picture = Picture(bits=1, rows=(("0", "1"),))
        flipped = project_picture(picture, lambda entry: "1" if entry == "0" else "0", 1)
        assert flipped.rows == (("1", "0"),)

    def test_systems_agree_on_reports_disagreements(self):
        parity = nfa_to_tiling_system(parity_dfa().to_nfa())
        ones = nfa_to_tiling_system(all_ones_dfa().to_nfa())
        pictures = [Picture(bits=1, rows=(("1",),)), Picture(bits=1, rows=(("1", "0"),))]
        agree, disagreements = systems_agree_on(parity, ones, pictures)
        assert not agree
        assert len(disagreements) == 1

    def test_all_ones_system_still_behaves(self):
        for picture in small_pictures(max_height=2, max_width=2):
            assert all_ones_system().accepts(picture) == is_all_ones_picture(picture)
