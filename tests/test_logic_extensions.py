"""Tests for the monadic translation (Prop. 31), duality, and spanning-tree formulas."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import generators
from repro.graphs.structures import node_element, structural_representation
from repro.logic.duality import (
    complement_class_name,
    dual_class,
    is_in_negation_normal_form,
    negate_sentence,
    negation_normal_form,
)
from repro.logic.examples import (
    CHALLENGE,
    CHARGE,
    PARENT,
    all_selected_formula,
    exists_unselected_node_formula,
    points_to,
    three_colorable_formula,
)
from repro.logic.fragments import classify_local_second_order, classify_second_order, is_monadic
from repro.logic.monadic import (
    encode_relation,
    local_names,
    monadic_matrix,
    name_interpretation,
    name_variable,
    required_name_count,
    to_monadic_sentence,
    unique_name_formula,
)
from repro.logic.semantics import evaluate, graph_satisfies
from repro.logic.shorthands import is_selected
from repro.logic.spanning import (
    CYCLE,
    acyclic_formula,
    acyclic_strategy_verdict,
    adam_refutation_challenge,
    charge_response,
    non_two_colorable_formula,
    non_two_colorable_strategy_verdict,
    odd_cycle_witness,
    odd_formula,
    odd_strategy_verdict,
    spanning_tree_parent_pairs,
    subtree_parity_set,
)
from repro.logic.syntax import Not, RelationAtom, free_relation_variables
from repro.properties.coloring import two_colorable
from repro.properties.cycles import acyclic, odd


# ----------------------------------------------------------------------
# Proposition 31: the monadic translation
# ----------------------------------------------------------------------
class TestMonadicTranslation:
    def test_required_name_count_on_a_path(self):
        graph = generators.path_graph(5)
        structure = structural_representation(graph)
        # Radius 1 means 2-locally unique names; the largest 2-ball on an
        # unlabeled path of five nodes is centered at the middle node and
        # contains all five elements.
        assert required_name_count(structure, 1) == 5

    def test_local_names_are_locally_unique(self):
        graph = generators.cycle_graph(6)
        structure = structural_representation(graph)
        names = local_names(structure, radius=1)
        for element in structure.domain:
            for other in structure.ball(element, 2):
                if other != element:
                    assert names[element] != names[other]

    def test_local_names_raise_when_too_few(self):
        graph = generators.complete_graph(4)
        structure = structural_representation(graph)
        with pytest.raises(ValueError):
            local_names(structure, radius=1, count=2)

    def test_unique_name_formula_accepts_valid_naming(self):
        graph = generators.path_graph(3)
        structure = structural_representation(graph)
        count = required_name_count(structure, 1)
        names = local_names(structure, radius=1, count=count)
        assignment = dict(name_interpretation(structure, names, count))
        formula = unique_name_formula("x", count, radius=1)
        for element in structure.domain:
            assert evaluate(structure, formula, {**assignment, "x": element})

    def test_unique_name_formula_rejects_clash(self):
        graph = generators.path_graph(3)
        structure = structural_representation(graph)
        count = required_name_count(structure, 1)
        # Give every element the same name: adjacent elements now clash.
        clashing = {element: 0 for element in structure.domain}
        assignment = dict(name_interpretation(structure, clashing, count))
        formula = unique_name_formula("x", count, radius=1)
        violations = [
            element
            for element in structure.domain
            if not evaluate(structure, formula, {**assignment, "x": element})
        ]
        assert violations

    def test_monadic_matrix_preserves_binary_relation_semantics(self):
        # The BF matrix of Example 6 (PointsTo) evaluated under a concrete
        # interpretation of the binary parent relation must agree with its
        # monadic translation under the encoded unary interpretations.
        graph = generators.path_graph(3)
        structure = structural_representation(graph)
        count = required_name_count(structure, 2)
        names = local_names(structure, radius=2, count=count)
        name_assignment = name_interpretation(structure, names, count)

        theta = lambda v: Not(is_selected(v))  # noqa: E731 -- tiny schema
        matrix = points_to("x", theta)

        nodes = [node_element(u) for u in graph.nodes]
        # A valid forest: 1 -> 0 <- 0 (node 0 is its own parent/root).
        parent_interpretation = frozenset(
            {(nodes[0], nodes[0]), (nodes[1], nodes[0]), (nodes[2], nodes[1])}
        )
        encoded = encode_relation(structure, PARENT, parent_interpretation, names, count, radius=2)
        translated = monadic_matrix(matrix, count)

        for challenge in [frozenset(), frozenset({nodes[1]})]:
            for charge in [frozenset(nodes), frozenset({nodes[0]})]:
                base = {
                    CHALLENGE: frozenset((u,) for u in challenge),
                    CHARGE: frozenset((u,) for u in charge),
                }
                for element in nodes:
                    original = evaluate(
                        structure,
                        matrix,
                        {**base, PARENT: parent_interpretation, "x": element},
                    )
                    monadic = evaluate(
                        structure,
                        translated,
                        {**base, **encoded, **name_assignment, "x": element},
                    )
                    assert original == monadic

    def test_to_monadic_sentence_is_monadic_and_level_preserving(self):
        sentence = exists_unselected_node_formula()
        original_class = classify_local_second_order(sentence)
        translated = to_monadic_sentence(sentence, radius=2, count=3)
        assert is_monadic(translated)
        translated_class = classify_local_second_order(translated)
        assert translated_class is not None
        assert translated_class.level == original_class.level
        assert translated_class.kind == original_class.kind

    def test_already_monadic_sentences_pass_through(self):
        sentence = three_colorable_formula()
        translated = to_monadic_sentence(sentence, radius=1, count=2)
        assert is_monadic(translated)
        assert classify_local_second_order(translated).level == 1

    def test_name_variable_arity(self):
        assert name_variable(3).arity == 1


# ----------------------------------------------------------------------
# Duality and the complement hierarchy
# ----------------------------------------------------------------------
class TestDuality:
    def test_negate_sentence_swaps_quantifiers(self):
        sentence = exists_unselected_node_formula()  # Sigma^lfo_3
        negated = negate_sentence(sentence)
        negated_class = classify_second_order(negated)
        assert negated_class is not None
        assert negated_class.kind == "Pi"
        assert negated_class.level == 3

    def test_negation_is_semantically_correct(self):
        sentence = all_selected_formula()
        negated = negate_sentence(sentence)
        for graph in [
            generators.path_graph(3, labels=["1", "1", "1"]),
            generators.path_graph(3, labels=["1", "0", "1"]),
            generators.cycle_graph(4, labels=["1", "1", "1", "1"]),
        ]:
            assert graph_satisfies(graph, negated) == (not graph_satisfies(graph, sentence))

    def test_negation_normal_form_is_nnf_and_equivalent(self):
        graph = generators.path_graph(3, labels=["1", "0", "1"])
        structure = structural_representation(graph)
        formula = Not(is_selected("x"))
        nnf = negation_normal_form(formula)
        assert is_in_negation_normal_form(nnf)
        for element in structure.domain:
            assert evaluate(structure, formula, {"x": element}) == evaluate(
                structure, nnf, {"x": element}
            )

    def test_double_negation(self):
        formula = Not(Not(is_selected("x")))
        nnf = negation_normal_form(formula)
        assert is_in_negation_normal_form(nnf)

    def test_dual_class(self):
        sigma3 = classify_local_second_order(exists_unselected_node_formula())
        pi3 = dual_class(sigma3)
        assert pi3.kind == "Pi"
        assert pi3.level == 3
        assert not pi3.local

    def test_complement_class_name_involution(self):
        for name in ["LP", "NLP", "Sigma^lp_2", "coPi^lp_3"]:
            assert complement_class_name(complement_class_name(name)) == name
        assert complement_class_name("NLP") == "coNLP"


# ----------------------------------------------------------------------
# The spanning-tree formulas: acyclic, odd, non-2-colorable
# ----------------------------------------------------------------------
class TestSpanningFormulas:
    def test_syntactic_classes(self):
        for sentence in [acyclic_formula(), odd_formula(3), non_two_colorable_formula()]:
            logic_class = classify_local_second_order(sentence)
            assert logic_class is not None, str(sentence)[:80]
            assert logic_class.kind == "Sigma"
            assert logic_class.level == 3

    def test_formulas_are_sentences(self):
        for sentence in [acyclic_formula(), odd_formula(2), non_two_colorable_formula()]:
            assert not free_relation_variables(sentence)

    @pytest.mark.parametrize(
        "maker",
        [
            lambda: generators.path_graph(4),
            lambda: generators.star_graph(3),
            lambda: generators.random_tree(5, seed=1),
        ],
        ids=["path4", "star3", "tree5"],
    )
    def test_acyclic_strategy_wins_on_trees(self, maker):
        graph = maker()
        assert acyclic(graph)
        assert acyclic_strategy_verdict(graph)

    @pytest.mark.parametrize(
        "maker",
        [lambda: generators.cycle_graph(4), lambda: generators.complete_graph(4)],
        ids=["cycle4", "k4"],
    )
    def test_acyclic_strategy_loses_on_cyclic_graphs(self, maker):
        graph = maker()
        assert not acyclic(graph)
        assert not acyclic_strategy_verdict(graph)

    def test_odd_strategy_matches_ground_truth(self):
        for size in range(3, 7):
            path = generators.path_graph(size)
            assert odd_strategy_verdict(path) == odd(path)
            star = generators.star_graph(size - 1)
            assert odd_strategy_verdict(star) == odd(star)

    def test_non_two_colorable_strategy_matches_ground_truth(self):
        cases = [
            generators.cycle_graph(5),
            generators.cycle_graph(4),
            generators.complete_graph(3),
            generators.path_graph(4),
            generators.star_graph(3),
        ]
        for graph in cases:
            assert non_two_colorable_strategy_verdict(graph) == (not two_colorable(graph))


# ----------------------------------------------------------------------
# The strategies themselves (Eve's and Adam's moves from Examples 6 and 8)
# ----------------------------------------------------------------------
class TestStrategies:
    def test_spanning_tree_is_a_tree(self):
        graph = generators.random_connected_graph(7, 10, seed=3)
        pairs = spanning_tree_parent_pairs(graph)
        roots = [child for child, parent in pairs if child == parent]
        assert len(roots) == 1
        assert len(pairs) == graph.cardinality()
        # Every non-root edge of the relation is a graph edge.
        for child, parent in pairs:
            if child != parent:
                assert graph.has_edge(child, parent)

    def test_charge_response_flips_exactly_in_challenge(self):
        graph = generators.path_graph(5)
        pairs = spanning_tree_parent_pairs(graph)
        challenge = frozenset({graph.nodes[2]})
        charges = charge_response(graph, pairs, challenge)
        parent_of = {child: parent for child, parent in pairs}
        for child, parent in pairs:
            if child == parent:
                assert child in charges
            elif child in challenge:
                assert (child in charges) == (parent not in charges)
            else:
                assert (child in charges) == (parent in charges)

    def test_subtree_parity(self):
        graph = generators.path_graph(5)
        pairs = spanning_tree_parent_pairs(graph, tree_root=graph.nodes[0])
        parity = subtree_parity_set(pairs)
        # Rooted at an endpoint of a path of 5: subtree sizes are 5,4,3,2,1.
        sizes = {graph.nodes[i]: 5 - i for i in range(5)}
        for node, size in sizes.items():
            assert (node in parity) == (size % 2 == 1)

    def test_odd_cycle_witness_on_bipartite_graph_is_none(self):
        assert odd_cycle_witness(generators.cycle_graph(6)) is None
        assert odd_cycle_witness(generators.path_graph(4)) is None

    def test_odd_cycle_witness_finds_an_odd_cycle(self):
        graph = generators.complete_graph(4)
        witness = odd_cycle_witness(graph)
        assert witness is not None
        oriented, counter, cycle_root = witness
        assert len(oriented) % 2 == 1
        successors = {a: b for a, b in oriented}
        assert cycle_root in successors
        # The oriented edges really are graph edges and form a closed walk.
        for a, b in oriented:
            assert graph.has_edge(a, b)

    def test_adam_refutes_a_cyclic_parent_relation(self):
        graph = generators.cycle_graph(4)
        nodes = list(graph.nodes)
        # A "parent" relation that is one big directed cycle: no root at all.
        cyclic_pairs = frozenset(
            (nodes[i], nodes[(i + 1) % len(nodes)]) for i in range(len(nodes))
        )
        challenge = adam_refutation_challenge(graph, cyclic_pairs)
        assert challenge is not None
        assert len(challenge) == 1

    def test_adam_accepts_a_genuine_forest(self):
        graph = generators.path_graph(4)
        pairs = spanning_tree_parent_pairs(graph)
        assert adam_refutation_challenge(graph, pairs) is None
