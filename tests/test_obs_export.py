"""Chrome trace-event export: shape, units, ordering, fallbacks."""

import json
import time

from repro.obs.export import chrome_trace, render_chrome_trace, trace_events
from repro.obs.trace import RequestTrace, TraceLog


def _finished_trace(op="query", request_id=7, sleep=0.002):
    trace = RequestTrace(op=op, request_id=request_id)
    with trace.span("lru", hit=False):
        time.sleep(sleep)
    with trace.span("engine", batch=3):
        time.sleep(sleep)
    trace.annotate(scenario="smoke")
    return trace.finish().as_dict()


class TestTraceEvents:
    def test_complete_events_carry_ph_pid_tid(self):
        events = trace_events(_finished_trace(), pid=42)
        assert all(event["ph"] == "X" for event in events)
        assert all(event["pid"] == 42 for event in events)
        tids = {event["tid"] for event in events}
        assert len(tids) == 1  # one trace -> one track

    def test_ts_and_dur_are_microseconds(self):
        entry = _finished_trace(sleep=0.004)
        events = trace_events(entry)
        top = events[0]
        assert top["ts"] == entry["started"] * 1e6
        assert top["dur"] == entry["total_ms"] * 1000.0
        span = events[1]
        span_entry = entry["spans"][0]
        assert span["dur"] == span_entry["ms"] * 1000.0
        assert span["ts"] == entry["started"] * 1e6 + span_entry["offset_ms"] * 1000.0

    def test_spans_nest_inside_the_request_window(self):
        entry = _finished_trace(sleep=0.003)
        events = trace_events(entry)
        top = events[0]
        for span in events[1:]:
            assert span["ts"] >= top["ts"]
            # A span ends within the request, give or take rounding.
            assert span["ts"] + span["dur"] <= top["ts"] + top["dur"] + 100

    def test_span_offsets_order_the_timeline(self):
        entry = _finished_trace()
        events = trace_events(entry)
        lru = next(e for e in events if e["name"] == "lru")
        engine = next(e for e in events if e["name"] == "engine")
        assert lru["ts"] < engine["ts"]

    def test_annotations_become_args(self):
        entry = _finished_trace()
        events = trace_events(entry)
        assert events[0]["args"]["scenario"] == "smoke"
        assert events[0]["args"]["request_id"] == 7
        engine = next(e for e in events if e["name"] == "engine")
        assert engine["args"] == {"batch": 3}

    def test_event_name_is_op_and_title(self):
        entry = _finished_trace(op="mutate", request_id=12)
        events = trace_events(entry)
        assert events[0]["name"] == "mutate:12"
        assert events[0]["cat"] == "mutate"

    def test_offsetless_spans_fall_back_to_sequential_layout(self):
        # Hand-built dict, as an old TraceLog entry (pre-offset) would be.
        entry = {
            "trace_id": 9,
            "op": "query",
            "id": 1,
            "started": 100.0,
            "total_ms": 5.0,
            "spans": [{"span": "a", "ms": 2.0}, {"span": "b", "ms": 3.0}],
        }
        events = trace_events(entry)
        a, b = events[1], events[2]
        assert a["ts"] == 100.0 * 1e6
        assert b["ts"] == 100.0 * 1e6 + 2000.0  # laid end-to-end after a


class TestChromeTrace:
    def test_document_shape_and_metadata_event(self):
        doc = chrome_trace([_finished_trace()], process_name="test daemon")
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        meta = doc["traceEvents"][0]
        assert meta["ph"] == "M"
        assert meta["name"] == "process_name"
        assert meta["args"] == {"name": "test daemon"}

    def test_traces_are_emitted_oldest_first(self):
        older = _finished_trace(request_id=1)
        newer = _finished_trace(request_id=2)
        assert newer["started"] > older["started"]
        # TraceLog.snapshot() hands traces newest first.
        doc = chrome_trace([newer, older])
        tops = [e for e in doc["traceEvents"] if e["ph"] == "X" and ":" in e["name"]]
        starts = [e["ts"] for e in tops if e["name"].startswith("query:")]
        assert starts == sorted(starts)

    def test_round_trips_through_json(self):
        log = TraceLog(capacity=8)
        trace = RequestTrace(op="query", request_id=3)
        with trace.span("lru"):
            pass
        log.record(trace.finish())
        text = render_chrome_trace(log.snapshot())
        doc = json.loads(text)
        assert doc["traceEvents"][0]["ph"] == "M"
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert spans and all(
            isinstance(e["ts"], (int, float)) and isinstance(e["dur"], (int, float))
            for e in spans
        )

    def test_empty_batch_still_loads(self):
        doc = json.loads(render_chrome_trace([]))
        assert doc["traceEvents"][0]["name"] == "process_name"
        assert len(doc["traceEvents"]) == 1
