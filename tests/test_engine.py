"""Engine/oracle equivalence: the fast game engine vs the exhaustive solver.

The engine (``repro.engine``) must be observationally equivalent to the
reference solver ``repro.hierarchy.game.eve_wins`` -- same game values, same
winning first moves -- on every machine kind (direct gather path, generic
simulation path), every quantifier prefix and every certificate space.
These tests assert that equivalence on randomized small instances, plus the
engine-specific behaviors (memoization, batching, sharing).
"""

import random

import pytest

from repro.engine import (
    GameEngine,
    GameInstance,
    LeafEvaluator,
    evaluate_batch,
    shared_evaluator,
)
from repro.graphs import generators
from repro.graphs.identifiers import (
    random_identifier_assignment,
    sequential_identifier_assignment,
)
from repro.hierarchy.certificate_spaces import (
    bit_space,
    color_space,
    empty_space,
    enumerated_space,
)
from repro.hierarchy.game import (
    Quantifier,
    eve_wins,
    pi_prefix,
    sigma_prefix,
    winning_first_move,
)
from repro.machines import builtin
from repro.machines.local_algorithm import NeighborhoodGatherAlgorithm
from repro.machines.simulator import execute
from repro.machines.turing import label_is_one_machine


class _SubclassedGather(NeighborhoodGatherAlgorithm):
    """Behaviorally identical subclass: forces the engine's simulation path.

    The direct path is taken only for plain ``NeighborhoodGatherAlgorithm``
    instances, so running the same compute function through a subclass pits
    the two strategies against each other.
    """


def _graph_pool():
    return [
        generators.cycle_graph(3),
        generators.cycle_graph(5),
        generators.path_graph(2, labels=["1", "1"]),
        generators.path_graph(4, labels=["1", "0", "1", "1"]),
        generators.star_graph(4),
        generators.complete_graph(4),
        generators.random_tree(5, seed=7),
    ]


def _certificate_parity_machine():
    """Accept at a node iff the parity of 1-bits in view certificates is even."""

    def compute(view):
        ones = sum(
            cert.count("1")
            for _, certs in view.certificates
            for cert in certs
        )
        return "1" if ones % 2 == 0 else "0"

    return NeighborhoodGatherAlgorithm(1, compute, name="cert-parity")


def _machine_pool():
    return [
        builtin.three_colorability_verifier(),
        builtin.two_colorability_verifier(),
        builtin.eulerian_decider(),
        builtin.all_selected_decider(),
        _certificate_parity_machine(),
    ]


def _space_pool():
    return [
        bit_space(),
        color_space(2),
        color_space(3),
        empty_space(),
        enumerated_space(("", "1"), name="maybe-one"),
    ]


class TestLeafEquivalence:
    """The leaf evaluator must agree with a full simulator execution."""

    @pytest.mark.parametrize("seed", range(4))
    def test_direct_path_matches_simulator(self, seed):
        rng = random.Random(seed)
        for graph in _graph_pool():
            ids = sequential_identifier_assignment(graph)
            machine = _certificate_parity_machine()
            evaluator = LeafEvaluator(machine, graph, ids)
            assert evaluator.direct
            certificates = {u: rng.choice(["", "0", "1", "11"]) for u in graph.nodes}
            expected = execute(machine, graph, ids, [certificates]).accepts()
            assert evaluator.accepts([certificates]) == expected

    @pytest.mark.parametrize("seed", range(4))
    def test_simulation_path_matches_simulator(self, seed):
        rng = random.Random(100 + seed)
        machine = _SubclassedGather(
            1, _certificate_parity_machine().compute, name="cert-parity-sub"
        )
        for graph in _graph_pool():
            ids = sequential_identifier_assignment(graph)
            evaluator = LeafEvaluator(machine, graph, ids)
            assert not evaluator.direct
            certificates = {u: rng.choice(["", "0", "1"]) for u in graph.nodes}
            expected = execute(machine, graph, ids, [certificates]).accepts()
            assert evaluator.accepts([certificates]) == expected

    def test_turing_machine_path(self):
        machine = label_is_one_machine()
        for graph in (
            generators.path_graph(3, labels=["1", "1", "1"]),
            generators.path_graph(3, labels=["1", "0", "1"]),
            generators.cycle_graph(4),
        ):
            ids = sequential_identifier_assignment(graph)
            evaluator = LeafEvaluator(machine, graph, ids)
            assert evaluator.accepts([]) == execute(machine, graph, ids).accepts()

    def test_memoization_hits_on_repeated_leaves(self):
        graph = generators.cycle_graph(4)
        ids = sequential_identifier_assignment(graph)
        evaluator = LeafEvaluator(builtin.three_colorability_verifier(), graph, ids)
        certificates = {u: "00" for u in graph.nodes}
        evaluator.accepts([certificates])
        misses = evaluator.stats.node_misses
        evaluator.accepts([certificates])
        assert evaluator.stats.node_misses == misses
        assert evaluator.stats.node_hits > 0

    def test_id_collision_at_gather_horizon_forces_fallback(self):
        # Regression: two nodes sharing an identifier at distance radius + 1
        # plant phantom entries in the *simulated* gather (an out-of-view
        # name-sharer reports an edge between two in-view identifiers), so
        # the direct path must not be taken -- the evaluator has to fall
        # back to simulation and reproduce the simulator's answer exactly.
        def compute(view):
            neighbors = sorted(view.neighbors_of(view.center))
            for i in range(len(neighbors)):
                for j in range(i + 1, len(neighbors)):
                    if frozenset({neighbors[i], neighbors[j]}) in view.edges:
                        return "1"
            return "0"

        machine = NeighborhoodGatherAlgorithm(1, compute, name="triangle-corner")
        graph = generators.path_graph(5)
        nodes = list(graph.nodes)
        ids = dict(zip(nodes, ["0", "1", "2", "3", "1"]))  # collision at distance 3
        evaluator = LeafEvaluator(machine, graph, ids)
        assert not evaluator.direct
        assert evaluator.verdicts([]) == execute(machine, graph, ids).verdicts()

    def test_ball_subgraph_preserves_influential_degrees(self):
        # Regression guard for the simulation path's truncation argument: a
        # machine whose round-1 messages carry node degrees must see the
        # same degrees on the induced ball subgraph as on the full graph
        # (nodes at distance max_rounds cannot influence the center).
        class DegreeEcho:
            def initial_state(self, node_input):
                return {"deg": node_input.degree, "got": None}

            def round(self, state, received, round_index):
                if round_index == 1:
                    return state, [str(state["deg"])] * state["deg"], False
                state["got"] = list(received)
                return state, [""] * state["deg"], True

            def output(self, state):
                if state["got"] is None:
                    return "0"
                return "1" if all(m and int(m) >= 2 for m in state["got"]) else "0"

            def max_rounds(self):
                return 2

        machine = DegreeEcho()
        for graph in (
            generators.path_graph(7),
            generators.cycle_graph(6),
            generators.star_graph(5),
            generators.random_tree(8, seed=3),
        ):
            ids = sequential_identifier_assignment(graph)
            evaluator = LeafEvaluator(machine, graph, ids)
            assert evaluator.verdicts([]) == execute(machine, graph, ids).verdicts()

    def test_restriction_localizes_certificate_changes(self):
        # Changing one node's certificate must not invalidate nodes whose
        # ball does not contain it.
        graph = generators.path_graph(4)
        ids = sequential_identifier_assignment(graph)
        evaluator = LeafEvaluator(builtin.eulerian_decider(), graph, ids)
        nodes = list(graph.nodes)
        first = {u: "0" for u in nodes}
        evaluator.verdicts([first])
        misses = evaluator.stats.node_misses
        changed = dict(first)
        changed[nodes[-1]] = "1"  # outside the balls of nodes[0] and nodes[1]
        evaluator.verdicts([changed])
        assert evaluator.stats.node_misses - misses <= 2


class TestGameEquivalence:
    """Engine game values vs the exhaustive reference solver."""

    @pytest.mark.parametrize("level", [0, 1])
    def test_randomized_equivalence(self, level):
        rng = random.Random(level)
        for trial in range(12):
            graph = rng.choice(_graph_pool())
            machine = rng.choice(_machine_pool())
            spaces = [rng.choice(_space_pool()) for _ in range(level)]
            ids = sequential_identifier_assignment(graph)
            for prefix in (sigma_prefix(level), pi_prefix(level)):
                expected = eve_wins(machine, graph, ids, spaces, prefix)
                engine = GameEngine(machine, graph, ids, spaces)
                assert engine.eve_wins(prefix) == expected, (
                    trial,
                    machine,
                    graph,
                    [space.name for space in spaces],
                    prefix,
                )

    @pytest.mark.slow
    def test_randomized_equivalence_level_two(self):
        rng = random.Random(2)
        small_graphs = [
            generators.path_graph(2, labels=["1", "1"]),
            generators.cycle_graph(3),
            generators.path_graph(3, labels=["1", "0", "1"]),
        ]
        small_spaces = [bit_space(), enumerated_space(("", "1"), name="maybe-one")]
        for trial in range(8):
            graph = rng.choice(small_graphs)
            machine = rng.choice(_machine_pool())
            spaces = [rng.choice(small_spaces) for _ in range(2)]
            ids = sequential_identifier_assignment(graph)
            for prefix in (sigma_prefix(2), pi_prefix(2)):
                expected = eve_wins(machine, graph, ids, spaces, prefix)
                engine = GameEngine(machine, graph, ids, spaces)
                assert engine.eve_wins(prefix) == expected, (trial, prefix)

    @pytest.mark.slow
    def test_equivalence_under_random_identifiers(self):
        rng = random.Random(3)
        machine = builtin.three_colorability_verifier()
        for seed in range(3):
            graph = generators.cycle_graph(5)
            ids = random_identifier_assignment(graph, 1, rng=random.Random(seed))
            expected = eve_wins(machine, graph, ids, [color_space(3)], sigma_prefix(1))
            engine = GameEngine(machine, graph, ids, [color_space(3)])
            assert engine.eve_wins(sigma_prefix(1)) == expected

    def test_simulation_and_direct_paths_agree_in_games(self):
        compute = _certificate_parity_machine().compute
        direct_machine = NeighborhoodGatherAlgorithm(1, compute, name="p")
        generic_machine = _SubclassedGather(1, compute, name="p-sub")
        graph = generators.cycle_graph(4)
        ids = sequential_identifier_assignment(graph)
        for prefix_fn in (sigma_prefix, pi_prefix):
            direct = GameEngine(direct_machine, graph, ids, [bit_space()])
            generic = GameEngine(generic_machine, graph, ids, [bit_space()])
            assert direct.eve_wins(prefix_fn(1)) == generic.eve_wins(prefix_fn(1))

    def test_fixed_prefix_equivalence(self):
        machine = builtin.three_colorability_verifier()
        graph = generators.cycle_graph(3)
        ids = sequential_identifier_assignment(graph)
        fixed = [{u: "00" for u in graph.nodes}]
        expected = eve_wins(machine, graph, ids, [color_space(3)], sigma_prefix(1), fixed)
        engine = GameEngine(machine, graph, ids, [color_space(3)])
        assert engine.eve_wins(sigma_prefix(1), fixed) == expected

    def test_prefix_length_validation(self):
        graph = generators.cycle_graph(3)
        ids = sequential_identifier_assignment(graph)
        engine = GameEngine(builtin.constant_algorithm(), graph, ids, [bit_space()])
        with pytest.raises(ValueError):
            engine.eve_wins([])

    def test_transposition_cache_reuse(self):
        machine = builtin.three_colorability_verifier()
        graph = generators.cycle_graph(5)
        ids = sequential_identifier_assignment(graph)
        engine = GameEngine(machine, graph, ids, [color_space(3)])
        engine.eve_wins(sigma_prefix(1))
        leaves = engine.evaluator.stats.leaves
        misses = engine.evaluator.stats.node_misses
        engine.eve_wins(sigma_prefix(1))
        # The repeated query is answered from the transposition cache.
        assert engine.evaluator.stats.leaves == leaves
        assert engine.evaluator.stats.node_misses == misses


class TestWinningMoves:
    def test_move_parity_with_reference(self):
        machine = builtin.three_colorability_verifier()
        for graph in (generators.cycle_graph(3), generators.complete_graph(4)):
            ids = sequential_identifier_assignment(graph)
            expected = winning_first_move(
                machine, graph, ids, [color_space(3)], sigma_prefix(1)
            )
            engine = GameEngine(machine, graph, ids, [color_space(3)])
            assert engine.winning_first_move(sigma_prefix(1)) == expected

    def test_adam_refutation_on_pi_game(self):
        machine = builtin.three_colorability_verifier()
        graph = generators.cycle_graph(3)
        ids = sequential_identifier_assignment(graph)
        engine = GameEngine(machine, graph, ids, [color_space(3)])
        move = engine.winning_first_move(pi_prefix(1))
        # Adam can always refute: e.g. a monochromatic assignment.
        assert move is not None
        assert not engine.eve_wins(pi_prefix(1), [move])


class TestBatchAPI:
    def test_batch_matches_individual_decisions(self):
        from repro.hierarchy.arbiters import three_colorability_spec

        spec = three_colorability_spec()
        graphs = [
            generators.cycle_graph(3),
            generators.complete_graph(4),
            generators.cycle_graph(5),
        ]
        from repro.engine import decide_batch

        values = decide_batch(spec, graphs)
        assert values == [spec.decide(graph) for graph in graphs]

    def test_batch_shares_engines_across_prefixes(self):
        machine = builtin.three_colorability_verifier()
        graph = generators.cycle_graph(4)
        ids = sequential_identifier_assignment(graph)
        instances = [
            GameInstance(machine, graph, ids, [color_space(3)], sigma_prefix(1)),
            GameInstance(machine, graph, ids, [color_space(3)], pi_prefix(1)),
            GameInstance(machine, graph, ids, [color_space(3)], sigma_prefix(1)),
        ]
        sigma_value, pi_value, sigma_again = evaluate_batch(instances)
        assert sigma_value is True
        assert pi_value is False
        assert sigma_again is True

    def test_shared_evaluator_is_reused(self):
        machine = builtin.eulerian_decider()
        graph = generators.cycle_graph(4)
        ids = sequential_identifier_assignment(graph)
        assert shared_evaluator(machine, graph, ids) is shared_evaluator(machine, graph, ids)


class TestSpecIntegration:
    def test_spec_decide_matches_naive(self):
        from repro.hierarchy.arbiters import (
            all_selected_spec,
            eulerian_spec,
            three_colorability_spec,
            two_colorability_spec,
        )

        graphs = [
            generators.cycle_graph(3),
            generators.cycle_graph(4),
            generators.star_graph(4),
            generators.path_graph(3, labels=["1", "1", "1"]),
        ]
        for spec in (
            all_selected_spec(),
            eulerian_spec(),
            three_colorability_spec(),
            two_colorability_spec(),
        ):
            for graph in graphs:
                assert spec.decide(graph) == spec.decide_naive(graph), (spec, graph)
