"""The benchmark history record and its noise-tolerant regression gate."""

import json

import pytest

from repro.obs import history as bh


def _record(**metrics):
    return {"ts": 1.0, "git_sha": "cafe", "metrics": metrics}


def _history(values, name="service.hot_qps"):
    return [_record(**{name: value}) for value in values]


class TestCheckDrift:
    def test_two_x_slowdown_trips_higher_is_better(self):
        records = _history([100.0, 102.0, 98.0, 101.0, 50.0])
        result = bh.check(records)
        (failure,) = result.failures
        assert failure["metric"] == "service.hot_qps"
        assert "regressed" in failure["reason"]
        assert failure["baseline"] == pytest.approx(100.5)

    def test_ten_percent_noise_passes_higher_is_better(self):
        records = _history([100.0, 102.0, 98.0, 101.0, 90.0])
        assert bh.check(records).ok

    def test_two_x_slowdown_trips_lower_is_better(self):
        records = _history([10.0, 11.0, 9.0, 10.0, 21.0], name="service.hot_p99_ms")
        result = bh.check(records)
        (failure,) = result.failures
        assert failure["metric"] == "service.hot_p99_ms"
        assert "regressed" in failure["reason"]

    def test_ten_percent_noise_passes_lower_is_better(self):
        records = _history([10.0, 11.0, 9.0, 10.0, 11.0], name="service.hot_p99_ms")
        assert bh.check(records).ok

    def test_improvement_never_trips(self):
        faster = _history([100.0, 100.0, 400.0])  # higher-is-better got 4x better
        assert bh.check(faster).ok
        quicker = _history([10.0, 10.0, 1.0], name="service.hot_p99_ms")
        assert bh.check(quicker).ok

    def test_median_baseline_shrugs_off_one_outlier(self):
        # One historic glitch at 5 qps must not drag the baseline down.
        records = _history([100.0, 5.0, 101.0, 99.0, 95.0])
        assert bh.check(records).ok

    def test_window_limits_how_far_back_the_baseline_looks(self):
        # Ancient fast records fall outside window=2; recent slow ones rule.
        records = _history([400.0, 400.0, 100.0, 100.0, 95.0])
        assert bh.check(records, window=2).ok
        assert not bh.check(records, window=5).ok

    def test_first_record_skips_drift(self):
        assert bh.check(_history([100.0])).ok

    def test_threshold_factor_must_exceed_one(self):
        with pytest.raises(ValueError):
            bh.check(_history([1.0]), threshold=1.0)


class TestCheckBounds:
    def test_floor_violation_fails_even_with_no_history(self):
        records = [_record(**{"fig02.compiled_vs_engine": 2.0})]  # floor is 5.0
        result = bh.check(records)
        (failure,) = result.failures
        assert "below floor" in failure["reason"]

    def test_ceiling_violation_fails(self):
        records = [_record(**{"dynamic.full_rebuilds": 3.0})]  # ceiling is 0
        result = bh.check(records)
        (failure,) = result.failures
        assert "above ceiling" in failure["reason"]

    def test_empty_history_fails_loudly(self):
        result = bh.check([])
        assert not result.ok
        assert result.failures[0]["reason"] == "no records in history"

    def test_record_with_no_known_metrics_fails(self):
        result = bh.check([_record(mystery=1.0)])
        assert not result.ok
        assert "no known metrics" in result.failures[0]["reason"]

    def test_as_dict_mirrors_rows(self):
        result = bh.check(_history([100.0, 100.0]))
        payload = result.as_dict()
        assert payload["ok"] is True
        assert payload["rows"] == result.rows


class TestPersistence:
    def test_append_and_read_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        bh.append_record(path, _record(**{"service.hot_qps": 10.0}))
        bh.append_record(path, _record(**{"service.hot_qps": 11.0}))
        records = bh.read_history(path)
        assert [r["metrics"]["service.hot_qps"] for r in records] == [10.0, 11.0]

    def test_malformed_and_foreign_lines_are_skipped(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        path.write_text(
            "not json\n"
            + json.dumps(["a", "list"]) + "\n"
            + json.dumps({"metrics": "not-a-dict"}) + "\n"
            + json.dumps(_record(**{"service.hot_qps": 5.0})) + "\n"
        )
        records = bh.read_history(path)
        assert len(records) == 1

    def test_missing_file_reads_as_empty(self, tmp_path):
        assert bh.read_history(tmp_path / "absent.jsonl") == []


class TestCollect:
    def test_collect_digs_tracked_paths_out_of_snapshots(self, tmp_path):
        (tmp_path / "BENCH_fig02.json").write_text(
            json.dumps(
                {
                    "compiled_vs_engine": {"speedup_median": 12.5},
                    "engine_vs_naive": {"speedup_median": 40.0},
                }
            )
        )
        (tmp_path / "BENCH_service.json").write_text(
            json.dumps({"hot_cache": {"requests_per_second": 999.0}})
        )
        metrics = bh.collect_metrics(tmp_path)
        assert metrics["fig02.compiled_vs_engine"] == 12.5
        assert metrics["fig02.engine_vs_naive"] == 40.0
        assert metrics["service.hot_qps"] == 999.0
        # Sources with no snapshot are simply absent.
        assert "dynamic.full_rebuilds" not in metrics

    def test_collect_survives_broken_snapshots(self, tmp_path):
        (tmp_path / "BENCH_fig02.json").write_text("{broken")
        assert bh.collect_metrics(tmp_path) == {}

    def test_build_record_stamps_provenance(self, tmp_path):
        record = bh.build_record({"service.hot_qps": 1.0})
        assert record["metrics"] == {"service.hot_qps": 1.0}
        assert isinstance(record["git_sha"], str) and record["git_sha"]
        assert record["python_version"].count(".") == 2
        assert record["cpu_count"] >= 1

    def test_git_sha_unknown_outside_a_repo(self, tmp_path):
        assert bh.git_sha(tmp_path) == "unknown"


class TestRendering:
    def test_sparkline_spans_the_block_range(self):
        line = bh.sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 8

    def test_sparkline_flat_series_and_width(self):
        assert bh.sparkline([5, 5, 5]) == "▁▁▁"
        assert bh.sparkline([], width=10) == ""
        assert len(bh.sparkline(range(100), width=12)) == 12

    def test_metric_series_extracts_one_trajectory(self):
        records = _history([1.0, 2.0, 3.0]) + [_record(other=9.0)]
        assert bh.metric_series(records, "service.hot_qps") == [1.0, 2.0, 3.0]
        assert bh.metric_series(records, "service.hot_qps", limit=2) == [2.0, 3.0]


class TestMetricSpec:
    def test_direction_is_validated(self):
        with pytest.raises(ValueError):
            bh.MetricSpec("x", "fig02", ("a",), direction="sideways")

    def test_tracked_metrics_have_unique_names(self):
        names = [spec.name for spec in bh.TRACKED_METRICS]
        assert len(names) == len(set(names))
